"""Online (single-pass) statistics.

The simulator records hundreds of thousands of observations per run; the
Welford update lets it keep running means and variances without storing all
samples and without catastrophic cancellation.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = ["RunningStatistics", "RunningCovariance", "ExponentialMovingAverage"]


class RunningStatistics:
    """Numerically stable running mean / variance / extrema (Welford).

    Example
    -------
    >>> stats = RunningStatistics()
    >>> for x in [1.0, 2.0, 3.0, 4.0]:
    ...     stats.push(x)
    >>> stats.mean
    2.5
    >>> round(stats.variance, 6)
    1.666667
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max", "_total")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total = 0.0

    def push(self, value: float) -> None:
        """Incorporate one observation."""
        value = float(value)
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def push_many(self, values: Iterable[float]) -> None:
        """Incorporate many observations."""
        for value in values:
            self.push(value)

    # -- accessors ------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self._n else math.nan

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._total

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN with fewer than two observations)."""
        if self._n < 2:
            return math.nan
        return self._m2 / (self._n - 1)

    @property
    def population_variance(self) -> float:
        """Population (biased) variance."""
        if self._n < 1:
            return math.nan
        return self._m2 / self._n

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation (NaN when empty)."""
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation (NaN when empty)."""
        return self._max if self._n else math.nan

    @property
    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self._n < 2:
            return math.nan
        return self.std / math.sqrt(self._n)

    def merge(self, other: "RunningStatistics") -> "RunningStatistics":
        """Return a new accumulator equivalent to seeing both sample sets."""
        if not isinstance(other, RunningStatistics):
            raise TypeError("can only merge with another RunningStatistics")
        merged = RunningStatistics()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = (self._n * self._mean + other._n * other._mean) / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        merged._total = self._total + other._total
        return merged

    def __repr__(self) -> str:
        return f"<RunningStatistics n={self._n} mean={self.mean:.6g} std={self.std:.6g}>"


class RunningCovariance:
    """Single-pass covariance / correlation of a paired sample."""

    __slots__ = ("_n", "_mean_x", "_mean_y", "_c", "_m2x", "_m2y")

    def __init__(self) -> None:
        self._n = 0
        self._mean_x = 0.0
        self._mean_y = 0.0
        self._c = 0.0
        self._m2x = 0.0
        self._m2y = 0.0

    def push(self, x: float, y: float) -> None:
        """Incorporate one paired observation ``(x, y)``."""
        x = float(x)
        y = float(y)
        self._n += 1
        dx = x - self._mean_x
        dy = y - self._mean_y
        self._mean_x += dx / self._n
        self._mean_y += dy / self._n
        self._c += dx * (y - self._mean_y)
        self._m2x += dx * (x - self._mean_x)
        self._m2y += dy * (y - self._mean_y)

    @property
    def count(self) -> int:
        """Number of paired observations."""
        return self._n

    @property
    def covariance(self) -> float:
        """Unbiased sample covariance."""
        if self._n < 2:
            return math.nan
        return self._c / (self._n - 1)

    @property
    def correlation(self) -> float:
        """Pearson correlation coefficient."""
        if self._n < 2 or self._m2x == 0.0 or self._m2y == 0.0:
            return math.nan
        return self._c / math.sqrt(self._m2x * self._m2y)


class ExponentialMovingAverage:
    """Exponentially weighted moving average, used for convergence checks.

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``; larger values weight recent
        observations more heavily.
    """

    __slots__ = ("_alpha", "_value")

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        self._alpha = float(alpha)
        self._value: Optional[float] = None

    def push(self, value: float) -> float:
        """Incorporate ``value`` and return the updated average."""
        value = float(value)
        if self._value is None:
            self._value = value
        else:
            self._value = self._alpha * value + (1.0 - self._alpha) * self._value
        return self._value

    @property
    def value(self) -> float:
        """Current average (NaN before the first observation)."""
        return self._value if self._value is not None else math.nan
