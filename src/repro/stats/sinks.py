"""Pluggable statistics sinks: the streaming observation layer.

Every consumer of per-observation statistics in the simulation path — the
DES monitors, :class:`~repro.simulation.components.LatencySink`, the
simulator's result assembly and the experiment pipeline's collectors —
talks to a :class:`StatsSink`, not to a concrete storage strategy.  Two
interchangeable implementations exist:

* :class:`~repro.des.monitor.Monitor` — the historical array-backed sink.
  It retains every ``(time, value)`` pair, so warm-up re-cuts, exact
  percentiles and per-message traces stay available, at O(n) memory.
  This is the default (``stats_mode="array"``) and is bit-identical to
  every earlier release (pinned by the golden-trace fixtures).
* :class:`OnlineMonitor` — the bounded-memory streaming sink built on
  :class:`~repro.stats.online.RunningStatistics` (Welford mean/variance/
  extrema), a :class:`~repro.stats.histogram.Histogram` for quantiles at a
  documented resolution, and per-batch Welford accumulators for the
  batch-means confidence interval.  Memory is O(bins + batches) no matter
  how many observations stream through, so simulation length is bounded
  by CPU, not RAM (``stats_mode="online"``).

Exactness contract of the online sink relative to the array sink, for the
same observation stream:

* ``count``, ``minimum``, ``maximum`` and ``total`` are **exact**;
* ``mean``/``std``/``variance`` and the batch-means confidence interval
  agree to within ~1e-12 relative (Welford vs NumPy pairwise summation —
  the test suite pins 1e-9);
* percentiles are approximate: the histogram auto-calibrates its range on
  the first ``calibration_samples`` observations (quantiles are *exact*
  until then) and afterwards resolves quantiles to one bin width —
  ``range / quantile_bins`` — with values outside the calibrated range
  clamped to its edges.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, List, Optional, Tuple

import numpy as np

from .histogram import Histogram
from .intervals import ConfidenceInterval, mean_confidence_interval
from .online import RunningStatistics

__all__ = [
    "STATS_MODES",
    "StatsSink",
    "OnlineMonitor",
    "validate_stats_mode",
    "validate_histogram_range",
]

#: Valid values of the ``stats_mode`` knob threaded through
#: :class:`~repro.simulation.simulator.SimulationConfig`,
#: :class:`~repro.experiments.pipeline.ExperimentSpec` and the CLI.
STATS_MODES = ("array", "online")


def validate_stats_mode(mode: str) -> str:
    """Validate a ``stats_mode`` value and return it."""
    if mode not in STATS_MODES:
        raise ValueError(f"stats_mode must be one of {STATS_MODES}, got {mode!r}")
    return mode


def validate_histogram_range(value) -> Tuple[float, float]:
    """Validate an explicit ``(low, high)`` histogram range; return a float pair.

    The range fixes :class:`OnlineMonitor`'s quantile histogram up front,
    which is what makes online-mode histograms mergeable across backend
    shards (auto-calibrated ranges are data-dependent).  Raises
    :class:`ValueError` on anything that is not a finite, increasing pair.
    """
    try:
        low, high = value
        low, high = float(low), float(high)
    except (TypeError, ValueError):
        raise ValueError(
            f"histogram_range must be a (low, high) pair of numbers, got {value!r}"
        ) from None
    if not (math.isfinite(low) and math.isfinite(high)):
        raise ValueError(
            f"histogram_range bounds must be finite, got ({low!r}, {high!r})"
        )
    if not high > low:
        raise ValueError(
            f"histogram_range needs high > low, got ({low!r}, {high!r})"
        )
    return (low, high)


try:  # pragma: no cover - typing affordance only
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - pre-3.8 fallback, never hit in CI
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class StatsSink(Protocol):
    """Structural interface every observation sink implements.

    :class:`~repro.des.monitor.Monitor` (array-backed) and
    :class:`OnlineMonitor` (streaming) both satisfy it; simulation
    components and result assembly depend only on these members, so the
    two are interchangeable behind the ``stats_mode`` knob.
    """

    name: str

    def record(self, time: float, value: float) -> None: ...

    @property
    def count(self) -> int: ...

    def mean(self) -> float: ...

    def variance(self) -> float: ...

    def std(self) -> float: ...

    def minimum(self) -> float: ...

    def maximum(self) -> float: ...

    def percentile(self, q: float) -> float: ...

    def summary(self) -> Dict[str, float]: ...

    def batch_means_interval(
        self, num_batches: int, confidence: float = 0.95
    ) -> ConfidenceInterval: ...


class OnlineMonitor:
    """Bounded-memory streaming sink: Welford + histogram + batch means.

    Parameters
    ----------
    name:
        Sink name used in reports (mirrors :class:`~repro.des.monitor.Monitor`).
    batch_count, expected_count:
        When both are given, the sink maintains ``batch_count`` per-batch
        Welford accumulators sized for ``expected_count`` observations —
        batch ``i`` covers observations ``[i*bs, (i+1)*bs)`` with
        ``bs = expected_count // batch_count`` and the final batch absorbs
        the remainder, exactly the layout of
        :func:`repro.stats.intervals.batch_means` when the stream length
        matches ``expected_count`` (simulation runs know both up front).
    quantile_bins:
        Regular bins of the quantile histogram; the quantile resolution is
        ``calibrated range / quantile_bins``.
    calibration_samples:
        Observations buffered before the histogram range is frozen (the
        range becomes ``[min(0, observed min), 4 * observed max]``).
        Quantiles are exact while calibrating.  Ignored when
        ``histogram_range`` fixes the range up front.
    histogram_range:
        Optional explicit ``(low, high)`` histogram range.  Required for
        :meth:`merge`, since auto-calibrated ranges are data-dependent.
    track_quantiles:
        ``False`` drops the histogram entirely (percentiles become NaN) —
        used for the local/remote split sinks that only report means.
    """

    __slots__ = (
        "name",
        "_stats",
        "_histogram",
        "_pending",
        "_calibration_samples",
        "_quantile_bins",
        "_fixed_range",
        "_track_quantiles",
        "_batch_count",
        "_batch_size",
        "_expected_count",
        "_batches",
    )

    def __init__(
        self,
        name: str = "monitor",
        *,
        batch_count: Optional[int] = None,
        expected_count: Optional[int] = None,
        quantile_bins: int = 4096,
        calibration_samples: int = 1024,
        histogram_range: Optional[Tuple[float, float]] = None,
        track_quantiles: bool = True,
    ) -> None:
        if quantile_bins < 1:
            raise ValueError(f"quantile_bins must be >= 1, got {quantile_bins!r}")
        if calibration_samples < 1:
            raise ValueError(
                f"calibration_samples must be >= 1, got {calibration_samples!r}"
            )
        self.name = name
        self._stats = RunningStatistics()
        self._track_quantiles = bool(track_quantiles)
        self._quantile_bins = int(quantile_bins)
        self._calibration_samples = int(calibration_samples)
        self._fixed_range = histogram_range
        self._histogram: Optional[Histogram] = None
        self._pending: Optional[array] = None
        if self._track_quantiles:
            if histogram_range is not None:
                low, high = histogram_range
                self._histogram = Histogram(low, high, self._quantile_bins)
            else:
                self._pending = array("d")

        self._batch_count: Optional[int] = None
        self._batch_size: Optional[int] = None
        self._expected_count: Optional[int] = None
        self._batches: List[RunningStatistics] = []
        if batch_count is not None or expected_count is not None:
            if batch_count is None or expected_count is None:
                raise ValueError(
                    "batch_count and expected_count must be given together"
                )
            if batch_count < 2:
                raise ValueError(f"batch_count must be >= 2, got {batch_count!r}")
            if expected_count < 1:
                raise ValueError(
                    f"expected_count must be >= 1, got {expected_count!r}"
                )
            self._batch_count = int(batch_count)
            self._expected_count = int(expected_count)
            self._batch_size = max(self._expected_count // self._batch_count, 1)
            self._batches = [RunningStatistics() for _ in range(self._batch_count)]

    # -- recording ------------------------------------------------------------

    def record(self, time: float, value: float) -> None:
        """Incorporate one observation (the ``time`` is not retained)."""
        value = float(value)
        if self._batch_size is not None:
            # Observation index before the push selects the batch; the final
            # batch absorbs everything past the nominal layout, mirroring
            # repro.stats.intervals.batch_means.
            idx = self._stats.count // self._batch_size
            if idx >= self._batch_count:
                idx = self._batch_count - 1
            self._batches[idx].push(value)
        self._stats.push(value)
        if self._histogram is not None:
            self._histogram.add(value)
        elif self._pending is not None:
            self._pending.append(value)
            if len(self._pending) >= self._calibration_samples:
                self._freeze_histogram()

    def extend(self, times, values) -> None:
        """Record many observations (times are ignored, like :meth:`record`)."""
        values = list(values)
        times = list(times)
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        for time, value in zip(times, values):
            self.record(time, value)

    def _freeze_histogram(self) -> None:
        """Fix the histogram range from the calibration buffer and replay it."""
        low = min(0.0, self._stats.minimum)
        high = self._stats.maximum * 4.0
        if not high > low:
            high = low + max(abs(low), 1.0)
        self._histogram = Histogram(low, high, self._quantile_bins)
        self._histogram.add_many(self._pending)
        self._pending = None

    # -- accessors ------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of recorded observations (exact)."""
        return self._stats.count

    @property
    def total(self) -> float:
        """Sum of all observations (exact)."""
        return self._stats.total

    def mean(self) -> float:
        """Streaming sample mean (NaN when empty)."""
        return self._stats.mean

    def variance(self) -> float:
        """Unbiased sample variance (NaN below two observations)."""
        return self._stats.variance

    def std(self) -> float:
        """Sample standard deviation."""
        return self._stats.std

    def minimum(self) -> float:
        """Smallest observation (exact; NaN when empty)."""
        return self._stats.minimum

    def maximum(self) -> float:
        """Largest observation (exact; NaN when empty)."""
        return self._stats.maximum

    @property
    def quantile_resolution(self) -> float:
        """Width of one histogram bin (NaN before the range is frozen)."""
        if self._histogram is None:
            return math.nan
        return (self._histogram.high - self._histogram.low) / self._histogram.bins

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100), histogram-resolved.

        Exact while the calibration buffer is still live; afterwards
        resolved to one bin width and clamped to the exact ``[min, max]``.
        NaN when quantile tracking is disabled or no data arrived.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must lie in [0, 100], got {q!r}")
        if self._stats.count == 0 or not self._track_quantiles:
            return math.nan
        if self._pending is not None:
            return float(np.percentile(np.frombuffer(self._pending, dtype=np.float64), q))
        estimate = self._histogram.quantile(q / 100.0)
        # The histogram answers with bin centres (or range edges for
        # clamped mass); the exact running extrema bound the true value.
        return float(min(max(estimate, self._stats.minimum), self._stats.maximum))

    def summary(self) -> Dict[str, float]:
        """Summary dictionary with the same keys as ``Monitor.summary``."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "std": self.std(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # -- batch means ----------------------------------------------------------

    def batch_means_interval(
        self, num_batches: int, confidence: float = 0.95
    ) -> ConfidenceInterval:
        """Batch-means confidence interval from the streaming accumulators.

        ``num_batches`` must match the configured ``batch_count`` (the
        layout was fixed when the sink was built).  Matches the array
        path's :func:`~repro.stats.intervals.batch_means` exactly in batch
        layout whenever the stream length equals ``expected_count``; the
        batch means themselves are Welford-accumulated, so the interval
        agrees with the array path to ~1e-12 relative.
        """
        if self._batch_count is None:
            raise ValueError(
                f"sink {self.name!r} was built without batch-means accumulators "
                "(pass batch_count and expected_count)"
            )
        if num_batches != self._batch_count:
            raise ValueError(
                f"sink {self.name!r} accumulates {self._batch_count} batches, "
                f"cannot produce a {num_batches}-batch interval"
            )
        if self.count < self._batch_count:
            raise ValueError(
                f"need at least {self._batch_count} observations for "
                f"{self._batch_count} batches, got {self.count}"
            )
        means = np.array([b.mean for b in self._batches if b.count], dtype=float)
        return mean_confidence_interval(means, confidence)

    # -- merging --------------------------------------------------------------

    def merge(self, other: "OnlineMonitor") -> "OnlineMonitor":
        """Combine two partial streams into one sink (``self`` then ``other``).

        Scalar statistics merge exactly for any split
        (:meth:`RunningStatistics.merge`).  Histograms merge only when both
        sinks were built with the same explicit ``histogram_range`` — the
        auto-calibrated range is data-dependent, so two shards would bin
        differently.  Per-batch accumulators merge index-wise, which is
        exact when the split lies on batch boundaries (how a sharded
        backend partitions a run).
        """
        if not isinstance(other, OnlineMonitor):
            raise TypeError("can only merge with another OnlineMonitor")
        if self._track_quantiles != other._track_quantiles:
            raise ValueError("cannot merge sinks with different quantile tracking")
        if self._track_quantiles:
            if self._fixed_range is None or self._fixed_range != other._fixed_range:
                raise ValueError(
                    "merging quantile-tracking sinks requires both to share an "
                    "explicit histogram_range (auto-calibrated ranges are "
                    "data-dependent)"
                )
        if (self._batch_count, self._batch_size) != (other._batch_count, other._batch_size):
            raise ValueError("cannot merge sinks with different batch layouts")
        merged = OnlineMonitor(
            self.name,
            batch_count=self._batch_count,
            expected_count=self._expected_count,
            quantile_bins=self._quantile_bins,
            calibration_samples=self._calibration_samples,
            histogram_range=self._fixed_range,
            track_quantiles=self._track_quantiles,
        )
        merged._stats = self._stats.merge(other._stats)
        if merged._histogram is not None:
            merged._histogram = self._histogram.merge(other._histogram)
        if self._batch_count is not None:
            merged._batches = [
                a.merge(b) for a, b in zip(self._batches, other._batches)
            ]
        return merged

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"<OnlineMonitor {self.name!r} n={self.count} mean={self.mean():.6g}>"
