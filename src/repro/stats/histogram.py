"""Fixed-bin and streaming histograms for latency distributions."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["Histogram", "LogHistogram"]


class Histogram:
    """A fixed-range, fixed-width histogram with under/overflow buckets.

    Parameters
    ----------
    low, high:
        Range covered by the regular bins.
    bins:
        Number of regular bins.
    """

    def __init__(self, low: float, high: float, bins: int = 50) -> None:
        if high <= low:
            raise ValueError(f"high (={high!r}) must exceed low (={low!r})")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins!r}")
        self.low = float(low)
        self.high = float(high)
        self.bins = int(bins)
        self._counts = np.zeros(bins, dtype=np.int64)
        self._underflow = 0
        self._overflow = 0
        self._width = (self.high - self.low) / bins

    def add(self, value: float) -> None:
        """Record one observation (NaN is rejected, not silently binned)."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a histogram")
        if value < self.low:
            self._underflow += 1
        elif value >= self.high:
            self._overflow += 1
        else:
            idx = int((value - self.low) / self._width)
            # Guard against floating point landing exactly on ``high``.
            self._counts[min(idx, self.bins - 1)] += 1

    def add_many(self, values: Sequence[float]) -> None:
        """Record many observations (vectorised); same NaN rule as ``add``."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError("cannot add NaN to a histogram")
        self._underflow += int(np.count_nonzero(arr < self.low))
        self._overflow += int(np.count_nonzero(arr >= self.high))
        in_range = arr[(arr >= self.low) & (arr < self.high)]
        if in_range.size:
            idx = np.clip(((in_range - self.low) / self._width).astype(int), 0, self.bins - 1)
            np.add.at(self._counts, idx, 1)

    # -- accessors ------------------------------------------------------------

    @property
    def counts(self) -> np.ndarray:
        """Counts per regular bin."""
        return self._counts.copy()

    @property
    def underflow(self) -> int:
        """Observations below ``low``."""
        return self._underflow

    @property
    def overflow(self) -> int:
        """Observations at or above ``high``."""
        return self._overflow

    @property
    def total(self) -> int:
        """Total number of recorded observations."""
        return int(self._counts.sum()) + self._underflow + self._overflow

    def bin_edges(self) -> np.ndarray:
        """Edges of the regular bins (length ``bins + 1``)."""
        return np.linspace(self.low, self.high, self.bins + 1)

    def bin_centers(self) -> np.ndarray:
        """Centres of the regular bins."""
        edges = self.bin_edges()
        return (edges[:-1] + edges[1:]) / 2.0

    def normalized(self) -> np.ndarray:
        """Counts normalised to a probability mass function over regular bins."""
        total = self._counts.sum()
        if total == 0:
            return np.zeros_like(self._counts, dtype=float)
        return self._counts / total

    def quantile(self, q: float) -> float:
        """Approximate quantile (0..1) from the binned data."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must lie in [0, 1], got {q!r}")
        total = self.total
        if total == 0:
            return math.nan
        target = q * total
        running = self._underflow
        # Only mass that is actually present may satisfy the target:
        # with q=0 (target 0) an empty underflow bucket must not win over
        # the first occupied bin.
        if self._underflow > 0 and running >= target:
            return self.low
        centers = self.bin_centers()
        for idx in range(self.bins):
            count = int(self._counts[idx])
            running += count
            if count > 0 and running >= target:
                return float(centers[idx])
        return self.high

    def merge(self, other: "Histogram") -> "Histogram":
        """Merge two histograms with identical binning."""
        if (self.low, self.high, self.bins) != (other.low, other.high, other.bins):
            raise ValueError("histograms must have identical binning to merge")
        merged = Histogram(self.low, self.high, self.bins)
        merged._counts = self._counts + other._counts
        merged._underflow = self._underflow + other._underflow
        merged._overflow = self._overflow + other._overflow
        return merged

    def __repr__(self) -> str:
        return f"<Histogram [{self.low}, {self.high}) bins={self.bins} total={self.total}>"


class LogHistogram:
    """Histogram with logarithmically spaced bins (latency tails)."""

    def __init__(self, low: float, high: float, bins_per_decade: int = 10) -> None:
        if low <= 0:
            raise ValueError(f"low must be positive for a log histogram, got {low!r}")
        if high <= low:
            raise ValueError(f"high (={high!r}) must exceed low (={low!r})")
        if bins_per_decade < 1:
            raise ValueError(f"bins_per_decade must be >= 1, got {bins_per_decade!r}")
        self.low = float(low)
        self.high = float(high)
        self.bins_per_decade = int(bins_per_decade)
        decades = math.log10(self.high / self.low)
        self.bins = max(1, int(math.ceil(decades * bins_per_decade)))
        self._edges = np.logspace(math.log10(self.low), math.log10(self.high), self.bins + 1)
        self._counts = np.zeros(self.bins, dtype=np.int64)
        self._underflow = 0
        self._overflow = 0

    def add(self, value: float) -> None:
        """Record one observation (NaN is rejected, not silently binned)."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a histogram")
        if value < self.low:
            self._underflow += 1
        elif value >= self.high:
            self._overflow += 1
        else:
            idx = int(np.searchsorted(self._edges, value, side="right")) - 1
            self._counts[min(max(idx, 0), self.bins - 1)] += 1

    def add_many(self, values: Sequence[float]) -> None:
        """Record many observations (vectorised); same NaN rule as ``add``."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise ValueError("cannot add NaN to a histogram")
        self._underflow += int(np.count_nonzero(arr < self.low))
        self._overflow += int(np.count_nonzero(arr >= self.high))
        in_range = arr[(arr >= self.low) & (arr < self.high)]
        if in_range.size:
            idx = np.searchsorted(self._edges, in_range, side="right") - 1
            idx = np.clip(idx, 0, self.bins - 1)
            np.add.at(self._counts, idx, 1)

    @property
    def counts(self) -> np.ndarray:
        """Counts per bin."""
        return self._counts.copy()

    @property
    def underflow(self) -> int:
        """Observations below ``low``."""
        return self._underflow

    @property
    def overflow(self) -> int:
        """Observations at or above ``high``."""
        return self._overflow

    @property
    def total(self) -> int:
        """Total number of recorded observations."""
        return int(self._counts.sum()) + self._underflow + self._overflow

    def bin_edges(self) -> np.ndarray:
        """Logarithmic bin edges."""
        return self._edges.copy()

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Merge two log histograms with identical binning."""
        if (self.low, self.high, self.bins_per_decade) != (
            other.low,
            other.high,
            other.bins_per_decade,
        ):
            raise ValueError("histograms must have identical binning to merge")
        merged = LogHistogram(self.low, self.high, self.bins_per_decade)
        merged._counts = self._counts + other._counts
        merged._underflow = self._underflow + other._underflow
        merged._overflow = self._overflow + other._overflow
        return merged

    def __repr__(self) -> str:
        return f"<LogHistogram [{self.low}, {self.high}) bins={self.bins} total={self.total}>"
