"""Metrics for comparing analytical predictions against simulation results.

The paper's validation claim ("the analytical model can predict the average
message latency with good degree of accuracy") is qualitative; we quantify
it with the metrics below and report them in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = [
    "relative_error",
    "absolute_error",
    "mean_absolute_percentage_error",
    "root_mean_square_error",
    "max_relative_error",
    "ComparisonSummary",
    "compare_series",
]


def relative_error(predicted: float, observed: float) -> float:
    """``|predicted - observed| / |observed|`` (NaN when observed == 0)."""
    if observed == 0:
        return math.nan
    return abs(predicted - observed) / abs(observed)


def absolute_error(predicted: float, observed: float) -> float:
    """``|predicted - observed|``."""
    return abs(predicted - observed)


def mean_absolute_percentage_error(
    predicted: Sequence[float], observed: Sequence[float]
) -> float:
    """MAPE (in percent) between two aligned series."""
    p = np.asarray(list(predicted), dtype=float)
    o = np.asarray(list(observed), dtype=float)
    if p.shape != o.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {o.shape}")
    if p.size == 0:
        raise ValueError("cannot compute MAPE of empty series")
    mask = o != 0
    if not np.any(mask):
        return math.nan
    return float(np.mean(np.abs((p[mask] - o[mask]) / o[mask])) * 100.0)


def root_mean_square_error(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """RMSE between two aligned series."""
    p = np.asarray(list(predicted), dtype=float)
    o = np.asarray(list(observed), dtype=float)
    if p.shape != o.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {o.shape}")
    if p.size == 0:
        raise ValueError("cannot compute RMSE of empty series")
    return float(np.sqrt(np.mean((p - o) ** 2)))


def max_relative_error(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """Largest pointwise relative error between two aligned series."""
    p = np.asarray(list(predicted), dtype=float)
    o = np.asarray(list(observed), dtype=float)
    if p.shape != o.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {o.shape}")
    mask = o != 0
    if not np.any(mask):
        return math.nan
    return float(np.max(np.abs((p[mask] - o[mask]) / o[mask])))


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate agreement metrics between a model and a reference series."""

    mape_percent: float
    rmse: float
    max_relative_error: float
    n_points: int

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dictionary (for reports/CSV)."""
        return {
            "mape_percent": self.mape_percent,
            "rmse": self.rmse,
            "max_relative_error": self.max_relative_error,
            "n_points": float(self.n_points),
        }

    def __str__(self) -> str:
        return (
            f"MAPE={self.mape_percent:.2f}%  RMSE={self.rmse:.4g}  "
            f"max rel. err={self.max_relative_error * 100:.2f}%  (n={self.n_points})"
        )


def compare_series(predicted: Sequence[float], observed: Sequence[float]) -> ComparisonSummary:
    """Build a :class:`ComparisonSummary` for two aligned series."""
    p = list(predicted)
    o = list(observed)
    return ComparisonSummary(
        mape_percent=mean_absolute_percentage_error(p, o),
        rmse=root_mean_square_error(p, o),
        max_relative_error=max_relative_error(p, o),
        n_points=len(p),
    )
