"""Statistics toolkit: online accumulators, output analysis and comparison metrics."""

from .compare import (
    ComparisonSummary,
    absolute_error,
    compare_series,
    max_relative_error,
    mean_absolute_percentage_error,
    relative_error,
    root_mean_square_error,
)
from .histogram import Histogram, LogHistogram
from .intervals import ConfidenceInterval, batch_means, mean_confidence_interval, t_quantile
from .online import ExponentialMovingAverage, RunningCovariance, RunningStatistics
from .sinks import STATS_MODES, OnlineMonitor, StatsSink, validate_stats_mode
from .warmup import moving_average_crossing, mser5_truncation, truncate_warmup

__all__ = [
    "STATS_MODES",
    "StatsSink",
    "OnlineMonitor",
    "validate_stats_mode",
    "RunningStatistics",
    "RunningCovariance",
    "ExponentialMovingAverage",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "batch_means",
    "t_quantile",
    "Histogram",
    "LogHistogram",
    "mser5_truncation",
    "moving_average_crossing",
    "truncate_warmup",
    "relative_error",
    "absolute_error",
    "mean_absolute_percentage_error",
    "root_mean_square_error",
    "max_relative_error",
    "ComparisonSummary",
    "compare_series",
]
