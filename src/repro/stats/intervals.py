"""Confidence intervals and batch-means output analysis.

Simulation output is autocorrelated, so a naive confidence interval on raw
per-message latencies underestimates variance.  The standard remedy used by
the paper's methodology (steady-state output analysis) is the *batch means*
method: split the (post-warm-up) output sequence into ``k`` batches, treat
the batch averages as approximately i.i.d. and build a Student-t interval on
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ConfidenceInterval", "t_quantile", "mean_confidence_interval", "batch_means"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a point estimate."""

    mean: float
    half_width: float
    confidence: float
    sample_size: int

    @property
    def lower(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half width divided by the mean (NaN for a zero mean)."""
        if self.mean == 0:
            return math.nan
        return abs(self.half_width / self.mean)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower <= value <= self.upper

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence * 100:.0f}% CI, n={self.sample_size})"
        )


def t_quantile(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value for ``confidence`` and ``dof``.

    Uses :mod:`scipy.stats` when available and falls back to the
    Cornish–Fisher style approximation otherwise (accurate to ~1e-3 for
    dof >= 3, adequate for simulation output analysis).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence!r}")
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof!r}")
    alpha = 1.0 - confidence
    try:  # pragma: no cover - exercised when scipy is present
        from scipy import stats as _st

        return float(_st.t.ppf(1.0 - alpha / 2.0, dof))
    except Exception:  # pragma: no cover - fallback path
        z = _normal_quantile(1.0 - alpha / 2.0)
        g1 = (z**3 + z) / 4.0
        g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
        g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
        return float(z + g1 / dof + g2 / dof**2 + g3 / dof**3)


def _normal_quantile(p: float) -> float:
    """Acklam's approximation of the standard normal quantile function."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must lie in (0, 1), got {p!r}")
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    plow, phigh = 0.02425, 1 - 0.02425
    if p < plow:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p > phigh:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )


def mean_confidence_interval(
    sample: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of an i.i.d. sample."""
    data = np.asarray(list(sample), dtype=float)
    n = data.size
    if n == 0:
        raise ValueError("cannot build a confidence interval from an empty sample")
    mean = float(np.mean(data))
    if n == 1:
        return ConfidenceInterval(mean, math.inf, confidence, 1)
    sem = float(np.std(data, ddof=1)) / math.sqrt(n)
    half = t_quantile(confidence, n - 1) * sem
    return ConfidenceInterval(mean, half, confidence, n)


def batch_means(
    observations: Sequence[float],
    num_batches: int = 20,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Batch-means confidence interval for a steady-state mean.

    Parameters
    ----------
    observations:
        Post-warm-up output sequence (e.g. per-message latencies).
    num_batches:
        Number of batches ``k``; 10–30 is the classical recommendation.
    confidence:
        Confidence level of the interval.

    Raises
    ------
    ValueError
        If there are fewer observations than batches.

    Notes
    -----
    When ``len(observations)`` is not a multiple of ``num_batches``, the
    remainder is folded into the final batch (which is then up to
    ``batch_size + num_batches - 1`` observations long) so that **no
    observation is discarded** — dropping the tail would bias the estimate
    towards older output whenever the run length is not batch-aligned.
    """
    data = np.asarray(list(observations), dtype=float)
    if num_batches < 2:
        raise ValueError(f"num_batches must be >= 2, got {num_batches!r}")
    if data.size < num_batches:
        raise ValueError(
            f"need at least {num_batches} observations for {num_batches} batches, got {data.size}"
        )
    batch_size = data.size // num_batches
    head = batch_size * (num_batches - 1)
    means = np.empty(num_batches, dtype=float)
    means[:-1] = data[:head].reshape(num_batches - 1, batch_size).mean(axis=1)
    means[-1] = data[head:].mean()  # final batch absorbs the remainder
    return mean_confidence_interval(means, confidence)
