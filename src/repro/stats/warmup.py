"""Warm-up (initial-transient) detection for steady-state simulations.

The paper gathers statistics over 10 000 messages per run; because the
system starts empty, early messages see shorter queues than the steady
state.  This module implements the MSER-5 rule (Marginal Standard Error
Rule) and a simple moving-average crossing heuristic to choose how many
initial observations to discard.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["mser5_truncation", "moving_average_crossing", "truncate_warmup"]


def mser5_truncation(observations: Sequence[float], batch_size: int = 5) -> int:
    """Return the number of observations to delete according to MSER-5.

    The rule batches the sequence into means of ``batch_size`` observations,
    then chooses the truncation point ``d`` (in batches) minimising the
    marginal standard error ``std(Y[d:]) / sqrt(n - d)`` over the first half
    of the run.  The returned value is in *observations*, not batches.
    """
    data = np.asarray(list(observations), dtype=float)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
    if data.size < 2 * batch_size:
        return 0

    n_batches = data.size // batch_size
    batched = data[: n_batches * batch_size].reshape(n_batches, batch_size).mean(axis=1)

    best_d = 0
    best_score = np.inf
    # Only consider truncating up to half the run (standard MSER safeguard).
    max_d = n_batches // 2
    for d in range(0, max_d + 1):
        tail = batched[d:]
        if tail.size < 2:
            break
        score = tail.std(ddof=0) / np.sqrt(tail.size)
        if score < best_score:
            best_score = score
            best_d = d
    return best_d * batch_size


def moving_average_crossing(observations: Sequence[float], window: int = 50) -> int:
    """Welch-style heuristic: first index where the moving average crosses
    the overall (second-half) mean.

    Returns 0 for short sequences where the heuristic is meaningless.
    """
    data = np.asarray(list(observations), dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window!r}")
    if data.size < 4 * window:
        return 0
    steady_mean = data[data.size // 2 :].mean()
    kernel = np.ones(window) / window
    smoothed = np.convolve(data, kernel, mode="valid")
    initial_gap = smoothed[0] - steady_mean
    if initial_gap == 0.0:
        return 0
    # First index where the moving average reaches (or crosses) the
    # steady-state mean from its initial side.
    for idx in range(1, smoothed.size):
        if (smoothed[idx] - steady_mean) * initial_gap <= 0.0:
            return idx
    return 0


def truncate_warmup(
    observations: Sequence[float], method: str = "mser5", **kwargs
) -> Tuple[np.ndarray, int]:
    """Remove the warm-up prefix from ``observations``.

    Parameters
    ----------
    observations:
        The raw output sequence.
    method:
        ``"mser5"``, ``"welch"`` (moving-average crossing) or ``"none"``.

    Returns
    -------
    (steady, cutoff):
        The truncated array and the number of deleted observations.
    """
    data = np.asarray(list(observations), dtype=float)
    if method == "none":
        cutoff = 0
    elif method == "mser5":
        cutoff = mser5_truncation(data, **kwargs)
    elif method == "welch":
        cutoff = moving_average_crossing(data, **kwargs)
    else:
        raise ValueError(f"unknown warm-up method {method!r}")
    # Never delete so much that fewer than 10 observations remain.
    if data.size - cutoff < 10:
        cutoff = max(0, data.size - 10)
    return data[cutoff:], cutoff
