"""Abstract interface for interconnect topologies.

A topology in this library answers the structural questions the paper's
network models need:

* how many switch stages a message traverses (→ switch latency term),
* how many switches the topology needs (→ cost, Eq. 13/17),
* its bisection width (→ whether it has full bisection bandwidth, §5.1),
* the average switch distance between two nodes (→ blocking model, Eq. 19).

Concrete subclasses: :class:`~repro.topology.fattree.FatTreeTopology`,
:class:`~repro.topology.linear_array.LinearArrayTopology` (the two used by
the paper), plus mesh/torus/hypercube/k-ary-n-cube/star/tree used by the
extension studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

__all__ = ["Topology", "TopologyStats"]


@dataclass(frozen=True)
class TopologyStats:
    """Summary of the structural metrics of a topology instance."""

    name: str
    num_nodes: int
    num_switches: int
    num_stages: int
    bisection_width: int
    full_bisection: bool
    average_switch_hops: float
    diameter_switch_hops: int

    def as_dict(self) -> dict:
        """Return the stats as a plain dictionary (for tables and CSV)."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_switches": self.num_switches,
            "num_stages": self.num_stages,
            "bisection_width": self.bisection_width,
            "full_bisection": self.full_bisection,
            "average_switch_hops": self.average_switch_hops,
            "diameter_switch_hops": self.diameter_switch_hops,
        }


class Topology:
    """Base class for switch-based interconnect topologies.

    Parameters
    ----------
    num_nodes:
        Number of end nodes (processors) attached to the network.
    switch_ports:
        Port count ``Pr`` of the switch building block.
    """

    #: Human-readable topology family name, overridden by subclasses.
    family: str = "abstract"

    def __init__(self, num_nodes: int, switch_ports: int) -> None:
        if num_nodes < 1:
            raise TopologyError(f"num_nodes must be >= 1, got {num_nodes!r}")
        if switch_ports < 2:
            raise TopologyError(f"switch_ports must be >= 2, got {switch_ports!r}")
        self._num_nodes = int(num_nodes)
        self._switch_ports = int(switch_ports)

    # -- basic attributes ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of attached end nodes."""
        return self._num_nodes

    @property
    def switch_ports(self) -> int:
        """Ports per switch (Pr)."""
        return self._switch_ports

    # -- structural metrics (abstract) ----------------------------------------------

    @property
    def num_stages(self) -> int:
        """Number of switch stages a worst-case path climbs (paper's ``d``)."""
        raise NotImplementedError

    @property
    def num_switches(self) -> int:
        """Total number of switches (paper's ``k``)."""
        raise NotImplementedError

    @property
    def bisection_width(self) -> int:
        """Minimum number of links cut to split the network in half (§5.1)."""
        raise NotImplementedError

    @property
    def full_bisection(self) -> bool:
        """Definition 1 of the paper: bisection width >= N/2."""
        return self.bisection_width >= (self._num_nodes + 1) // 2

    @property
    def average_switch_hops(self) -> float:
        """Average number of switches traversed by a uniformly random message."""
        raise NotImplementedError

    @property
    def diameter_switch_hops(self) -> int:
        """Largest number of switches traversed by any node pair."""
        raise NotImplementedError

    # -- derived helpers -------------------------------------------------------------

    def stats(self) -> TopologyStats:
        """Collect all structural metrics into a :class:`TopologyStats`."""
        return TopologyStats(
            name=self.family,
            num_nodes=self.num_nodes,
            num_switches=self.num_switches,
            num_stages=self.num_stages,
            bisection_width=self.bisection_width,
            full_bisection=self.full_bisection,
            average_switch_hops=self.average_switch_hops,
            diameter_switch_hops=self.diameter_switch_hops,
        )

    def to_graph(self) -> "nx.Graph":
        """Return the topology as a :class:`networkx.Graph`.

        Node identifiers are ``("node", i)`` for processors and
        ``("switch", s)`` for switches.  Subclasses that have an explicit
        wiring override this; the default raises.
        """
        raise TopologyError(f"{self.family} does not provide an explicit graph construction")

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} nodes={self.num_nodes} ports={self.switch_ports} "
            f"switches={self.num_switches}>"
        )
