"""Graph-based structural metrics (cross-checks for the closed-form results).

The closed-form bisection widths and distances in the topology classes are
what the analytical model uses; these graph algorithms recompute the same
quantities from the explicit wiring so tests can verify the formulas (e.g.
Theorem 1 of the paper on the fat-tree's full bisection bandwidth).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

import numpy as np

from ..errors import TopologyError

__all__ = [
    "node_count",
    "switch_count",
    "average_node_distance",
    "graph_diameter",
    "bisection_width_exact",
    "bisection_width_estimate",
]


def _require_networkx():
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - networkx is installed in CI
        raise TopologyError("networkx is required for graph-based metrics") from exc
    return nx


def node_count(graph) -> int:
    """Number of end nodes (vertices tagged ``kind='node'``) in the graph."""
    return sum(1 for _, data in graph.nodes(data=True) if data.get("kind") == "node")


def switch_count(graph) -> int:
    """Number of switches (vertices tagged ``kind='switch'``) in the graph."""
    return sum(1 for _, data in graph.nodes(data=True) if data.get("kind") == "switch")


def average_node_distance(graph) -> float:
    """Average shortest-path distance between distinct end nodes."""
    nx = _require_networkx()
    nodes = [n for n, data in graph.nodes(data=True) if data.get("kind") == "node"]
    if len(nodes) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    for src, dst in itertools.combinations(nodes, 2):
        total += lengths[src][dst]
        pairs += 1
    return total / pairs


def graph_diameter(graph) -> int:
    """Largest shortest-path distance between end nodes."""
    nx = _require_networkx()
    nodes = [n for n, data in graph.nodes(data=True) if data.get("kind") == "node"]
    if len(nodes) < 2:
        return 0
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    return max(lengths[src][dst] for src, dst in itertools.combinations(nodes, 2))


def bisection_width_exact(graph, max_nodes: int = 16) -> int:
    """Exact bisection width by enumerating balanced node partitions.

    Exponential in the number of end nodes; only usable for small graphs
    (guarded by ``max_nodes``).  Switches are assigned to whichever side
    minimises the cut via a min-cut between the two node halves.
    """
    nx = _require_networkx()
    nodes = sorted(
        (n for n, data in graph.nodes(data=True) if data.get("kind") == "node"),
        key=repr,
    )
    n = len(nodes)
    if n < 2:
        return 0
    if n > max_nodes:
        raise TopologyError(
            f"exact bisection is limited to {max_nodes} end nodes, got {n}"
        )
    half = n // 2
    best = None
    # Fix the first node on side A to halve the enumeration.
    rest = nodes[1:]
    for combo in itertools.combinations(rest, half - 1):
        side_a = set(combo) | {nodes[0]}
        side_b = [x for x in nodes if x not in side_a]
        cut = _min_cut_between(nx, graph, sorted(side_a, key=repr), side_b)
        if best is None or cut < best:
            best = cut
    return int(best if best is not None else 0)


def _min_cut_between(nx, graph, side_a: List, side_b: List) -> int:
    """Minimum edge cut separating two node sets (via a super-source/sink)."""
    flow_graph = nx.Graph()
    for u, v in graph.edges():
        flow_graph.add_edge(u, v, capacity=1)
    super_a = ("super", "a")
    super_b = ("super", "b")
    for a in side_a:
        flow_graph.add_edge(super_a, a, capacity=float("inf"))
    for b in side_b:
        flow_graph.add_edge(super_b, b, capacity=float("inf"))
    cut_value, _ = nx.minimum_cut(flow_graph, super_a, super_b)
    return int(cut_value)


def bisection_width_estimate(graph, trials: int = 200, seed: int = 0) -> int:
    """Randomised upper-bound estimate of the bisection width for larger graphs.

    Repeatedly samples balanced node partitions and computes the min cut,
    returning the smallest value found.  This is an upper bound on the true
    bisection width; for the structured topologies in this package it hits
    the exact value with high probability.
    """
    nx = _require_networkx()
    nodes = [n for n, data in graph.nodes(data=True) if data.get("kind") == "node"]
    n = len(nodes)
    if n < 2:
        return 0
    rng = np.random.default_rng(seed)
    half = n // 2
    # Start from the "contiguous" split in node insertion order: for the
    # structured topologies in this package (chains, trees, fat-trees) that
    # split is usually the optimal one, so the estimate starts tight.
    best: Optional[int] = _min_cut_between(nx, graph, nodes[:half], nodes[half:])
    for _ in range(trials):
        perm = rng.permutation(n)
        side_a = [nodes[i] for i in perm[:half]]
        side_b = [nodes[i] for i in perm[half:]]
        cut = _min_cut_between(nx, graph, side_a, side_b)
        if best is None or cut < best:
            best = cut
    return int(best if best is not None else 0)
