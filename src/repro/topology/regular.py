"""Regular direct topologies used by the extension / ablation studies.

The paper's related work (e.g. Sarbazi-Azad et al. on k-ary n-cubes, ref
[20]) analyses direct networks; these classes let the same latency model be
exercised on meshes, tori, hypercubes, k-ary n-cubes, stars and trees so
that the fat-tree / linear-array comparison of the paper can be put in a
wider design-space context.

For direct topologies every node has its own router/switch, so the number
of "switches" equals the number of nodes, and the switch-traversal count of
a message is ``hops + 1`` (it enters its source router and exits at the
destination router).
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..errors import TopologyError
from .base import Topology

__all__ = [
    "MeshTopology",
    "TorusTopology",
    "HypercubeTopology",
    "KAryNCubeTopology",
    "StarTopology",
    "BinaryTreeTopology",
]


class _DirectTopology(Topology):
    """Common behaviour for direct (router-per-node) topologies."""

    @property
    def num_stages(self) -> int:
        """Direct networks are single-stage from the model's point of view."""
        return 1

    @property
    def num_switches(self) -> int:
        """One router per node."""
        return self.num_nodes


class KAryNCubeTopology(_DirectTopology):
    """k-ary n-cube: n dimensions of k nodes each with wrap-around links."""

    family = "k-ary-n-cube"

    def __init__(self, arity: int, dimensions: int, switch_ports: int = 8) -> None:
        if arity < 2:
            raise TopologyError(f"arity must be >= 2, got {arity!r}")
        if dimensions < 1:
            raise TopologyError(f"dimensions must be >= 1, got {dimensions!r}")
        super().__init__(arity**dimensions, switch_ports)
        self.arity = int(arity)
        self.dimensions = int(dimensions)

    @property
    def bisection_width(self) -> int:
        """``2·k^(n−1)`` wrap-around channels cross the bisection (k even)."""
        if self.arity == 2:
            # Degenerate into a hypercube: bisection N/2, no doubled wrap links.
            return self.num_nodes // 2
        return 2 * self.arity ** (self.dimensions - 1)

    @property
    def average_hop_distance(self) -> float:
        """Average routing distance under uniform traffic (``n·k/4`` for even k)."""
        k = self.arity
        per_dim = (k / 4.0) if k % 2 == 0 else (k * k - 1) / (4.0 * k)
        return self.dimensions * per_dim

    @property
    def average_switch_hops(self) -> float:
        """Routers traversed = hop distance + 1."""
        return self.average_hop_distance + 1.0

    @property
    def diameter_switch_hops(self) -> int:
        """Diameter in routers: ``n·floor(k/2) + 1``."""
        return self.dimensions * (self.arity // 2) + 1

    def to_graph(self):
        """Explicit k-ary n-cube graph (nodes identified by coordinate tuples)."""
        import networkx as nx

        graph = nx.Graph()
        coords = self._coordinates()
        for c in coords:
            graph.add_node(("node", c), kind="node")
        for c in coords:
            for dim in range(self.dimensions):
                neighbour = list(c)
                neighbour[dim] = (neighbour[dim] + 1) % self.arity
                graph.add_edge(("node", c), ("node", tuple(neighbour)))
        return graph

    def _coordinates(self) -> List[Tuple[int, ...]]:
        coords: List[Tuple[int, ...]] = [()]
        for _ in range(self.dimensions):
            coords = [c + (v,) for c in coords for v in range(self.arity)]
        return coords


class TorusTopology(KAryNCubeTopology):
    """2-D torus (k-ary 2-cube) convenience wrapper."""

    family = "torus"

    def __init__(self, side: int, switch_ports: int = 8) -> None:
        super().__init__(arity=side, dimensions=2, switch_ports=switch_ports)
        self.side = int(side)


class MeshTopology(_DirectTopology):
    """2-D mesh without wrap-around links."""

    family = "mesh"

    def __init__(self, rows: int, cols: int, switch_ports: int = 8) -> None:
        if rows < 1 or cols < 1:
            raise TopologyError(f"mesh dimensions must be >= 1, got {rows}x{cols}")
        super().__init__(rows * cols, switch_ports)
        self.rows = int(rows)
        self.cols = int(cols)

    @property
    def bisection_width(self) -> int:
        """Cutting the longer dimension in half severs ``min(rows, cols)`` links."""
        return min(self.rows, self.cols)

    @property
    def average_hop_distance(self) -> float:
        """Average Manhattan distance between two uniformly random nodes."""
        # E|x1-x2| for uniform ints in [0, n) is (n^2 - 1) / (3n).
        def avg_abs_diff(n: int) -> float:
            return (n * n - 1) / (3.0 * n)

        return avg_abs_diff(self.rows) + avg_abs_diff(self.cols)

    @property
    def average_switch_hops(self) -> float:
        """Routers traversed = Manhattan distance + 1."""
        return self.average_hop_distance + 1.0

    @property
    def diameter_switch_hops(self) -> int:
        """Corner-to-corner path in routers."""
        return (self.rows - 1) + (self.cols - 1) + 1

    def to_graph(self):
        """Explicit grid graph."""
        import networkx as nx

        graph = nx.Graph()
        for r in range(self.rows):
            for c in range(self.cols):
                graph.add_node(("node", (r, c)), kind="node")
        for r in range(self.rows):
            for c in range(self.cols):
                if r + 1 < self.rows:
                    graph.add_edge(("node", (r, c)), ("node", (r + 1, c)))
                if c + 1 < self.cols:
                    graph.add_edge(("node", (r, c)), ("node", (r, c + 1)))
        return graph


class HypercubeTopology(_DirectTopology):
    """n-dimensional binary hypercube."""

    family = "hypercube"

    def __init__(self, dimensions: int, switch_ports: int = 8) -> None:
        if dimensions < 1:
            raise TopologyError(f"dimensions must be >= 1, got {dimensions!r}")
        super().__init__(2**dimensions, switch_ports)
        self.dimensions = int(dimensions)

    @property
    def bisection_width(self) -> int:
        """``N/2`` — hypercubes have full bisection bandwidth."""
        return self.num_nodes // 2

    @property
    def average_hop_distance(self) -> float:
        """Average Hamming distance = n/2."""
        return self.dimensions / 2.0

    @property
    def average_switch_hops(self) -> float:
        """Routers traversed = Hamming distance + 1."""
        return self.average_hop_distance + 1.0

    @property
    def diameter_switch_hops(self) -> int:
        """``n + 1`` routers corner to corner."""
        return self.dimensions + 1

    def to_graph(self):
        """Explicit hypercube graph over integer node labels."""
        import networkx as nx

        graph = nx.Graph()
        for node in range(self.num_nodes):
            graph.add_node(("node", node), kind="node")
        for node in range(self.num_nodes):
            for bit in range(self.dimensions):
                neighbour = node ^ (1 << bit)
                graph.add_edge(("node", node), ("node", neighbour))
        return graph


class StarTopology(Topology):
    """All nodes attached to one central switch (crossbar)."""

    family = "star"

    def __init__(self, num_nodes: int, switch_ports: int) -> None:
        super().__init__(num_nodes, switch_ports)
        if num_nodes > switch_ports:
            raise TopologyError(
                f"a star of {num_nodes} nodes needs a switch with >= {num_nodes} ports"
            )

    @property
    def num_stages(self) -> int:
        return 1

    @property
    def num_switches(self) -> int:
        return 1

    @property
    def bisection_width(self) -> int:
        """Half the nodes' links cross any balanced bisection."""
        return self.num_nodes // 2

    @property
    def average_switch_hops(self) -> float:
        """Every message crosses exactly the central switch."""
        return 1.0

    @property
    def diameter_switch_hops(self) -> int:
        return 1

    def to_graph(self):
        """Explicit star graph."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(("switch", 0), kind="switch", stage=0)
        for node in range(self.num_nodes):
            graph.add_node(("node", node), kind="node")
            graph.add_edge(("node", node), ("switch", 0))
        return graph


class BinaryTreeTopology(Topology):
    """Complete binary tree of switches with nodes at the leaves.

    The classic example of a bisection width of 1 (used in §5.1 of the
    paper to motivate the definition).
    """

    family = "binary-tree"

    def __init__(self, num_nodes: int, switch_ports: int = 3) -> None:
        super().__init__(num_nodes, switch_ports)
        if num_nodes < 2:
            raise TopologyError("a tree needs at least 2 nodes")
        self._levels = math.ceil(math.log2(num_nodes))

    @property
    def levels(self) -> int:
        """Number of switch levels above the leaves."""
        return self._levels

    @property
    def num_stages(self) -> int:
        return self._levels

    @property
    def num_switches(self) -> int:
        """A complete binary tree with ``2^levels`` leaves has ``2^levels − 1`` internal switches."""
        return 2**self._levels - 1

    @property
    def bisection_width(self) -> int:
        """Removing one of the root's links splits the tree: bisection width 1."""
        return 1

    @property
    def average_switch_hops(self) -> float:
        """Conservative estimate: most random pairs meet at or near the root."""
        return float(2 * self._levels - 1)

    @property
    def diameter_switch_hops(self) -> int:
        return 2 * self._levels - 1

    def to_graph(self):
        """Explicit complete binary tree with nodes attached to leaf switches."""
        import networkx as nx

        graph = nx.Graph()
        total_switches = self.num_switches
        for idx in range(total_switches):
            graph.add_node(("switch", idx), kind="switch")
            if idx > 0:
                graph.add_edge(("switch", (idx - 1) // 2), ("switch", idx))
        leaves = [idx for idx in range(total_switches) if 2 * idx + 1 >= total_switches]
        for node in range(self.num_nodes):
            leaf = leaves[node % len(leaves)]
            graph.add_node(("node", node), kind="node")
            graph.add_edge(("node", node), ("switch", leaf))
        return graph
