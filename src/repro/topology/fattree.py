"""Multi-stage fat-tree topology (the paper's non-blocking interconnect).

Section 5.2 of the paper builds the non-blocking network as a multi-stage
fat-tree of Pr-port switches: in every stage but the last, each switch uses
``Pr/2`` down-links and ``Pr/2`` up-links; last-stage (root) switches use
all ``Pr`` ports as down-links.  The key structural results reproduced here:

* Eq. (12): number of stages ``d`` needed to connect ``N`` nodes,
* Eq. (13) / Proposition 1: total switch count
  ``k = (d−1)·ceil(2N/Pr) + ceil(N/Pr)``,
* Theorem 1: the topology has *full bisection bandwidth*
  (bisection width = ceil(N/2)), hence zero blocking time,
* Eq. (11): a message traverses ``2d−1`` switches end-to-end.

The worked example of Figure 3 (N=16, Pr=8) gives d=2, k=6, bisection 8,
which the unit tests assert.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..errors import TopologyError
from .base import Topology

__all__ = ["FatTreeTopology", "fat_tree_stages", "fat_tree_switch_count"]


def fat_tree_stages(num_nodes: int, switch_ports: int) -> int:
    """Number of switch stages ``d`` of a fat-tree (paper Eq. 12).

    A single Pr-port switch connects up to Pr nodes (d = 1).  Every extra
    stage multiplies the supported node count by ``Pr/2`` because half the
    ports of the lower stage are used as up-links:

    ``capacity(d) = Pr · (Pr/2)^(d−1)``.

    The smallest ``d`` whose capacity reaches ``num_nodes`` matches the
    paper's ceiling expression on its examples (N=16, Pr=8 → d=2; and for
    the evaluation platform N=256, Pr=24 → d=2, while N0=16 or C=16 → d=1,
    which is exactly the C=16 "different behaviour" the paper discusses).
    """
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes!r}")
    if switch_ports < 2:
        raise TopologyError(f"switch_ports must be >= 2, got {switch_ports!r}")
    if num_nodes <= switch_ports:
        return 1
    half = switch_ports / 2.0
    if half <= 1.0:
        raise TopologyError(
            f"switch_ports={switch_ports} cannot build a multi-stage fat-tree (Pr/2 <= 1)"
        )
    # Solve Pr * (Pr/2)^(d-1) >= N for the smallest integer d.
    d = 1 + math.ceil(math.log(num_nodes / switch_ports) / math.log(half) - 1e-12)
    return max(1, int(d))


def fat_tree_switch_count(num_nodes: int, switch_ports: int) -> int:
    """Total number of switches ``k`` of a fat-tree (paper Eq. 13).

    ``k = (d−1)·ceil(N/(Pr/2)) + ceil(N/Pr)``: every stage except the last
    needs ``ceil(N/DL)`` switches with ``DL = Pr/2`` down-links, and the last
    stage needs ``ceil(N/Pr)`` switches using all ports as down-links.
    """
    d = fat_tree_stages(num_nodes, switch_ports)
    if d == 1:
        return math.ceil(num_nodes / switch_ports)
    down_links = switch_ports // 2
    if down_links < 1:
        raise TopologyError(f"switch_ports={switch_ports} leaves no down-links")
    return (d - 1) * math.ceil(num_nodes / down_links) + math.ceil(num_nodes / switch_ports)


class FatTreeTopology(Topology):
    """A multi-stage fat-tree built from ``switch_ports``-port switches."""

    family = "fat-tree"

    def __init__(self, num_nodes: int, switch_ports: int) -> None:
        super().__init__(num_nodes, switch_ports)
        self._stages = fat_tree_stages(num_nodes, switch_ports)
        self._switches = fat_tree_switch_count(num_nodes, switch_ports)

    # -- structural metrics -------------------------------------------------------

    @property
    def num_stages(self) -> int:
        """Paper Eq. (12)."""
        return self._stages

    @property
    def num_switches(self) -> int:
        """Paper Eq. (13)."""
        return self._switches

    @property
    def bisection_width(self) -> int:
        """Theorem 1: ``ceil(N/2)`` — full bisection bandwidth."""
        return math.ceil(self._num_nodes / 2)

    @property
    def switches_per_stage(self) -> List[int]:
        """Number of switches in each stage, bottom (node-facing) first."""
        if self._stages == 1:
            return [math.ceil(self._num_nodes / self._switch_ports)]
        down_links = self._switch_ports // 2
        lower = [math.ceil(self._num_nodes / down_links)] * (self._stages - 1)
        return lower + [math.ceil(self._num_nodes / self._switch_ports)]

    @property
    def switch_traversals(self) -> int:
        """Switches on an end-to-end path that climbs to the top stage: ``2d − 1``.

        This is the multiplier of the switch latency in Eq. (11).
        """
        return 2 * self._stages - 1

    @property
    def average_switch_hops(self) -> float:
        """The model charges every message the worst-case ``2d−1`` traversals.

        The paper's Eq. (11) uses ``2d−1`` for all pairs (a conservative
        simplification since some pairs share a low-stage switch), so the
        average equals the worst case here.
        """
        return float(self.switch_traversals)

    @property
    def diameter_switch_hops(self) -> int:
        """Worst-case number of switches traversed (``2d − 1``)."""
        return self.switch_traversals

    @property
    def up_links_per_switch(self) -> int:
        """Up-link ports per non-root switch (``Pr/2``; 0 when single stage)."""
        return 0 if self._stages == 1 else self._switch_ports // 2

    @property
    def down_links_per_switch(self) -> int:
        """Down-link ports per non-root switch (``Pr/2``; Pr when single stage)."""
        return self._switch_ports if self._stages == 1 else self._switch_ports // 2

    # -- explicit wiring ------------------------------------------------------------

    def to_graph(self):
        """Explicit two-level wiring as a :class:`networkx.Graph`.

        The construction attaches nodes evenly to stage-1 switches and wires
        each stage-``s`` switch to every stage-``s+1`` switch reachable given
        its up-link budget (round-robin), which preserves the stage/switch
        counts and bisection properties the model relies on.
        """
        import networkx as nx

        graph = nx.Graph()
        for node in range(self._num_nodes):
            graph.add_node(("node", node), kind="node")

        per_stage = self.switches_per_stage
        switch_ids: List[List[Tuple[str, Tuple[int, int]]]] = []
        for stage, count in enumerate(per_stage):
            ids = []
            for idx in range(count):
                name = ("switch", (stage, idx))
                graph.add_node(name, kind="switch", stage=stage)
                ids.append(name)
            switch_ids.append(ids)

        # Attach nodes to stage-0 switches round-robin over down-link capacity.
        down = self.down_links_per_switch if self._stages > 1 else self._switch_ports
        for node in range(self._num_nodes):
            sw = switch_ids[0][min(node // down, len(switch_ids[0]) - 1)]
            graph.add_edge(("node", node), sw)

        # Wire consecutive stages: every lower switch connects to upper
        # switches round-robin using its up-link budget.
        for stage in range(len(per_stage) - 1):
            uppers = switch_ids[stage + 1]
            up_links = self.up_links_per_switch or 1
            for idx, lower in enumerate(switch_ids[stage]):
                for port in range(up_links):
                    upper = uppers[(idx + port) % len(uppers)]
                    graph.add_edge(lower, upper)
        return graph

    def __repr__(self) -> str:
        return (
            f"<FatTreeTopology N={self.num_nodes} Pr={self.switch_ports} "
            f"d={self.num_stages} k={self.num_switches}>"
        )
