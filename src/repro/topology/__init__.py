"""Interconnect topologies: the paper's fat-tree and linear array plus extensions."""

from .base import Topology, TopologyStats
from .fattree import FatTreeTopology, fat_tree_stages, fat_tree_switch_count
from .linear_array import (
    LinearArrayTopology,
    average_traversed_switches,
    linear_array_switch_count,
)
from .metrics import (
    average_node_distance,
    bisection_width_estimate,
    bisection_width_exact,
    graph_diameter,
    node_count,
    switch_count,
)
from .regular import (
    BinaryTreeTopology,
    HypercubeTopology,
    KAryNCubeTopology,
    MeshTopology,
    StarTopology,
    TorusTopology,
)

__all__ = [
    "Topology",
    "TopologyStats",
    "FatTreeTopology",
    "fat_tree_stages",
    "fat_tree_switch_count",
    "LinearArrayTopology",
    "linear_array_switch_count",
    "average_traversed_switches",
    "MeshTopology",
    "TorusTopology",
    "HypercubeTopology",
    "KAryNCubeTopology",
    "StarTopology",
    "BinaryTreeTopology",
    "node_count",
    "switch_count",
    "average_node_distance",
    "graph_diameter",
    "bisection_width_exact",
    "bisection_width_estimate",
]
