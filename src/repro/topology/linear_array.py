"""Linear array of cascaded switches (the paper's blocking interconnect).

Section 5.3 models the blocking network as a chain of ``k = ceil(N/Pr)``
switches (Eq. 17).  A message from node ``i`` to node ``j`` traverses a
number of switches ``φ`` between 1 and ``k``; the paper replaces ``φ`` with
the average traversed distance ``(k+1)/3`` (Eq. 19).  Because the bisection
width of a chain is 1, the topology does *not* have full bisection bandwidth
and the blocking time of Eq. (20), ``T_B = (N/2 − 1)·M·β``, is added to the
transmission time (Eq. 21).
"""

from __future__ import annotations

import math

from ..errors import TopologyError
from .base import Topology

__all__ = ["LinearArrayTopology", "linear_array_switch_count", "average_traversed_switches"]


def linear_array_switch_count(num_nodes: int, switch_ports: int) -> int:
    """Number of cascaded switches ``k = ceil(N/Pr)`` (paper Eq. 17)."""
    if num_nodes < 1:
        raise TopologyError(f"num_nodes must be >= 1, got {num_nodes!r}")
    if switch_ports < 2:
        raise TopologyError(f"switch_ports must be >= 2, got {switch_ports!r}")
    return math.ceil(num_nodes / switch_ports)


def average_traversed_switches(num_switches: int, exact: bool = False) -> float:
    """Average number of switches a random message traverses.

    The paper's approximation (Eq. 19) is ``(k + 1)/3``.  With ``exact=True``
    the function instead returns the exact expectation of ``|i − j| + 1`` for
    source/destination switches drawn uniformly (allowing the same switch),
    which is ``(k² − 1)/(3k) + 1``; for large ``k`` both are ≈ ``k/3``.
    """
    if num_switches < 1:
        raise TopologyError(f"num_switches must be >= 1, got {num_switches!r}")
    k = num_switches
    if exact:
        return (k * k - 1.0) / (3.0 * k) + 1.0
    return (k + 1.0) / 3.0


class LinearArrayTopology(Topology):
    """A chain of ``ceil(N/Pr)`` switches with nodes distributed across them."""

    family = "linear-array"

    def __init__(self, num_nodes: int, switch_ports: int) -> None:
        super().__init__(num_nodes, switch_ports)
        self._switches = linear_array_switch_count(num_nodes, switch_ports)

    # -- structural metrics -------------------------------------------------------

    @property
    def num_stages(self) -> int:
        """A linear array is a single-level topology (d = 1)."""
        return 1

    @property
    def num_switches(self) -> int:
        """Paper Eq. (17): ``ceil(N/Pr)``."""
        return self._switches

    @property
    def bisection_width(self) -> int:
        """A chain is split by cutting a single inter-switch link.

        With only one switch there is no inter-switch link and the bisection
        happens inside the switch backplane; we still report 1 so that the
        full-bisection predicate is False exactly when the paper treats the
        network as blocking (N > 2).
        """
        return 1

    @property
    def average_switch_hops(self) -> float:
        """The paper's average traversed distance ``(k + 1)/3`` (Eq. 19)."""
        return average_traversed_switches(self._switches, exact=False)

    @property
    def exact_average_switch_hops(self) -> float:
        """Exact expectation of the traversed switch count under uniform traffic."""
        return average_traversed_switches(self._switches, exact=True)

    @property
    def diameter_switch_hops(self) -> int:
        """Worst case: a message crosses the whole chain (``k`` switches)."""
        return self._switches

    @property
    def blocked_node_factor(self) -> float:
        """The paper's contention multiplier ``N/2`` (Eqs. 20–21).

        ``(N/2 − 1)`` nodes are blocked while one transmits across the
        bisection, so the effective per-message transmission term becomes
        ``(N/2)·M·β``.
        """
        return self._num_nodes / 2.0

    def to_graph(self):
        """Explicit chain wiring as a :class:`networkx.Graph`."""
        import networkx as nx

        graph = nx.Graph()
        switches = []
        for idx in range(self._switches):
            name = ("switch", idx)
            graph.add_node(name, kind="switch", stage=0)
            switches.append(name)
            if idx > 0:
                graph.add_edge(switches[idx - 1], name)
        for node in range(self._num_nodes):
            sw = switches[min(node // self._switch_ports, self._switches - 1)]
            graph.add_node(("node", node), kind="node")
            graph.add_edge(("node", node), sw)
        return graph

    def __repr__(self) -> str:
        return (
            f"<LinearArrayTopology N={self.num_nodes} Pr={self.switch_ports} "
            f"k={self.num_switches}>"
        )
