"""Queueing-theory substrate: distributions, single queues, Jackson networks, MVA."""

from .approximate_mva import approximate_mva
from .distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    HyperExponential,
    UniformDistribution,
)
from .finite_source import MachineRepairmanQueue, effective_rate_correction
from .jackson import JacksonNetwork, JacksonSolution, ServiceCenter
from .littles_law import (
    arrival_rate_from,
    number_in_system,
    require_stable,
    saturation_arrival_rate,
    sojourn_time,
    utilization,
)
from .mg1 import MG1Queue
from .mm1 import MM1KQueue, MM1Queue
from .mmc import MMCQueue, erlang_b, erlang_c
from .mva import MVAResult, MVAStation, mean_value_analysis

__all__ = [
    "Distribution",
    "Exponential",
    "Deterministic",
    "Erlang",
    "HyperExponential",
    "UniformDistribution",
    "MM1Queue",
    "MM1KQueue",
    "MMCQueue",
    "erlang_b",
    "erlang_c",
    "MG1Queue",
    "MachineRepairmanQueue",
    "effective_rate_correction",
    "JacksonNetwork",
    "JacksonSolution",
    "ServiceCenter",
    "MVAStation",
    "MVAResult",
    "mean_value_analysis",
    "approximate_mva",
    "number_in_system",
    "sojourn_time",
    "arrival_rate_from",
    "utilization",
    "require_stable",
    "saturation_arrival_rate",
]
