"""M/G/1 queue via the Pollaczek–Khinchine formula.

The blocking-network model adds a deterministic-looking contention term to
the transmission time; modelling the resulting service time as *general*
rather than exponential is one of the ablations we run (the paper itself
assumes exponential service throughout, Sec. 5.3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StabilityError
from .distributions import Distribution

__all__ = ["MG1Queue"]


@dataclass(frozen=True)
class MG1Queue:
    """M/G/1 queue: Poisson arrivals, general service distribution.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate λ.
    service:
        Service-time :class:`~repro.queueing.distributions.Distribution`
        providing mean and SCV.
    """

    arrival_rate: float
    service: Distribution

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate!r}")
        if self.service.mean <= 0:
            raise ValueError("service time mean must be positive")

    @property
    def utilization(self) -> float:
        """``ρ = λ·E[S]``."""
        return self.arrival_rate * self.service.mean

    @property
    def is_stable(self) -> bool:
        """Whether the queue is stable (ρ < 1)."""
        return self.utilization < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise StabilityError(
                f"M/G/1 queue unstable: ρ = {self.utilization} >= 1"
            )

    @property
    def mean_waiting_time(self) -> float:
        """Pollaczek–Khinchine mean waiting time in queue.

        ``Wq = λ·E[S²] / (2(1−ρ)) = ρ·E[S]·(1+c²)/(2(1−ρ))``.
        """
        self._require_stable()
        rho = self.utilization
        es = self.service.mean
        cs2 = self.service.scv
        if math.isnan(cs2):
            raise ValueError("service distribution has undefined SCV")
        return rho * es * (1.0 + cs2) / (2.0 * (1.0 - rho))

    @property
    def mean_sojourn_time(self) -> float:
        """Mean total time in system ``W = Wq + E[S]``."""
        return self.mean_waiting_time + self.service.mean

    @property
    def mean_number_in_queue(self) -> float:
        """``Lq = λ·Wq`` (Little's law)."""
        return self.arrival_rate * self.mean_waiting_time

    @property
    def mean_number_in_system(self) -> float:
        """``L = λ·W`` (Little's law)."""
        return self.arrival_rate * self.mean_sojourn_time
