"""Approximate (Schweitzer/Bard) MVA for large closed networks.

Exact MVA is linear in the population N, which is fine for the paper's
N = 256 but becomes slow for what-if studies with tens of thousands of
processors.  The Schweitzer approximation replaces the recursion over
populations with a fixed point on the queue-length vector:

    Q_k(N−1) ≈ (N−1)/N · Q_k(N)

iterated until convergence.  The result is typically within a few percent of
exact MVA; :func:`approximate_mva` reports both the solution and the number
of iterations used so callers can judge convergence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, ConvergenceError
from .mva import MVAResult, MVAStation

__all__ = ["approximate_mva"]


def approximate_mva(
    stations: Sequence[MVAStation],
    population: int,
    tolerance: float = 1e-8,
    max_iterations: int = 100_000,
) -> MVAResult:
    """Solve a closed single-class network with Schweitzer's approximation.

    Parameters
    ----------
    stations:
        Station descriptions (same objects as exact MVA).
    population:
        Number of circulating jobs N.
    tolerance:
        Convergence threshold on the largest queue-length change.
    max_iterations:
        Iteration budget; exceeded budgets raise :class:`ConvergenceError`.
    """
    if population < 0:
        raise ConfigurationError(f"population must be non-negative, got {population!r}")
    if not stations:
        raise ConfigurationError("need at least one station")
    if population == 0:
        zeros = np.zeros(len(stations))
        return MVAResult(
            population=0,
            throughput=0.0,
            station_names=[s.name for s in stations],
            queue_lengths=zeros,
            residence_times=zeros.copy(),
            utilizations=zeros.copy(),
        )

    names = [s.name for s in stations]
    demands = np.array([s.visit_ratio * s.service_time for s in stations], dtype=float)
    is_delay = np.array([s.is_delay for s in stations], dtype=bool)
    queueing = ~is_delay

    # Initial guess: jobs spread evenly over the queueing stations.
    queue = np.zeros(len(stations), dtype=float)
    if queueing.any():
        queue[queueing] = population / queueing.sum()

    throughput = 0.0
    residence = np.zeros(len(stations), dtype=float)
    for iteration in range(1, max_iterations + 1):
        # Schweitzer estimate of the queue seen at arrival.
        seen = (population - 1) / population * queue
        residence = np.where(is_delay, demands, demands * (1.0 + seen))
        total = residence.sum()
        throughput = population / total if total > 0 else 0.0
        new_queue = throughput * residence
        delta = float(np.max(np.abs(new_queue - queue)))
        queue = new_queue
        if delta <= tolerance:
            break
    else:
        raise ConvergenceError(
            f"approximate MVA did not converge within {max_iterations} iterations"
        )

    utilizations = np.where(is_delay, 0.0, throughput * demands)
    return MVAResult(
        population=population,
        throughput=float(throughput),
        station_names=names,
        queue_lengths=queue,
        residence_times=residence,
        utilizations=utilizations,
    )
