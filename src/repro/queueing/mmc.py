"""M/M/c (Erlang-C) and M/M/c/c (Erlang-B) queue formulas.

Multi-port non-blocking switch fabrics can be approximated as multi-server
stations; these formulas back the extension/ablation studies that compare a
single fat M/M/1 pipe against c parallel thinner servers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StabilityError

__all__ = ["MMCQueue", "erlang_b", "erlang_c"]


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability for ``servers`` servers and ``offered_load`` Erlangs.

    Uses the numerically stable recurrence
    ``B(0, a) = 1``, ``B(c, a) = a·B(c-1, a) / (c + a·B(c-1, a))``.
    """
    if servers < 0:
        raise ValueError(f"servers must be non-negative, got {servers!r}")
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load!r}")
    b = 1.0
    for c in range(1, servers + 1):
        b = offered_load * b / (c + offered_load * b)
    return b


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/c).

    Derived from Erlang-B via ``C = c·B / (c − a(1−B))``; requires a < c for
    a finite answer.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers!r}")
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load!r}")
    if offered_load >= servers:
        return 1.0
    b = erlang_b(servers, offered_load)
    return servers * b / (servers - offered_load * (1.0 - b))


@dataclass(frozen=True)
class MMCQueue:
    """M/M/c queue with ``servers`` identical exponential servers."""

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate!r}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate!r}")
        if self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers!r}")

    @property
    def offered_load(self) -> float:
        """``a = λ/µ`` in Erlangs."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """Per-server utilisation ``ρ = λ/(cµ)``."""
        return self.offered_load / self.servers

    @property
    def is_stable(self) -> bool:
        """Whether the queue is stable (ρ < 1)."""
        return self.utilization < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise StabilityError(
                f"M/M/c queue unstable: offered load {self.offered_load} >= c={self.servers}"
            )

    @property
    def probability_wait(self) -> float:
        """Erlang-C probability that an arriving customer has to queue."""
        self._require_stable()
        return erlang_c(self.servers, self.offered_load)

    @property
    def mean_number_in_queue(self) -> float:
        """Expected number of waiting customers ``Lq``."""
        self._require_stable()
        rho = self.utilization
        return self.probability_wait * rho / (1.0 - rho)

    @property
    def mean_number_in_system(self) -> float:
        """Expected number in the system ``L = Lq + a``."""
        return self.mean_number_in_queue + self.offered_load

    @property
    def mean_waiting_time(self) -> float:
        """Expected time in queue ``Wq = Lq / λ`` (0 if λ = 0)."""
        if self.arrival_rate == 0:
            return 0.0
        return self.mean_number_in_queue / self.arrival_rate

    @property
    def mean_sojourn_time(self) -> float:
        """Expected total time in system ``W = Wq + 1/µ``."""
        return self.mean_waiting_time + 1.0 / self.service_rate

    def probability_n_in_system(self, n: int) -> float:
        """Steady-state probability of exactly ``n`` customers in the system."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        self._require_stable()
        a = self.offered_load
        c = self.servers
        # p0 from the standard M/M/c balance equations.
        summation = sum(a**k / math.factorial(k) for k in range(c))
        summation += a**c / (math.factorial(c) * (1.0 - self.utilization))
        p0 = 1.0 / summation
        if n < c:
            return p0 * a**n / math.factorial(n)
        return p0 * a**n / (math.factorial(c) * c ** (n - c))
