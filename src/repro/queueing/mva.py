"""Exact Mean Value Analysis (MVA) for closed product-form networks.

The finite-source behaviour of the paper's processors (assumption 4) can be
modelled exactly as a *closed* network: N customers circulate between a
"think" (delay) station representing the processors and the communication
service centres.  The paper approximates this with the Eq. (7) fixed point;
the exact MVA solution provided here is used by the
``fixed_point_vs_exact`` ablation to quantify the approximation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["MVAStation", "MVAResult", "mean_value_analysis"]


@dataclass(frozen=True)
class MVAStation:
    """One station of a closed queueing network.

    Parameters
    ----------
    name:
        Identifier for reports.
    visit_ratio:
        Mean number of visits a job makes to this station per cycle.
    service_time:
        Mean service demand per visit.
    is_delay:
        ``True`` for an infinite-server (delay / think-time) station.
    """

    name: str
    visit_ratio: float
    service_time: float
    is_delay: bool = False

    def __post_init__(self) -> None:
        if self.visit_ratio < 0:
            raise ConfigurationError(f"visit ratio must be non-negative, got {self.visit_ratio!r}")
        if self.service_time < 0:
            raise ConfigurationError(f"service time must be non-negative, got {self.service_time!r}")


@dataclass(frozen=True)
class MVAResult:
    """Output of exact MVA for one population size."""

    population: int
    throughput: float
    station_names: Sequence[str]
    queue_lengths: np.ndarray
    residence_times: np.ndarray
    utilizations: np.ndarray

    @property
    def cycle_time(self) -> float:
        """Mean time for one complete cycle of a job (N / X)."""
        if self.throughput == 0:
            return float("inf")
        return self.population / self.throughput

    def queue_length(self, name: str) -> float:
        """Mean queue length at station ``name``."""
        return float(self.queue_lengths[list(self.station_names).index(name)])

    def residence_time(self, name: str) -> float:
        """Mean residence time (all visits) at station ``name``."""
        return float(self.residence_times[list(self.station_names).index(name)])

    def utilization(self, name: str) -> float:
        """Utilisation of station ``name``."""
        return float(self.utilizations[list(self.station_names).index(name)])

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-station metrics as nested dictionaries."""
        out: Dict[str, Dict[str, float]] = {}
        for i, name in enumerate(self.station_names):
            out[name] = {
                "queue_length": float(self.queue_lengths[i]),
                "residence_time": float(self.residence_times[i]),
                "utilization": float(self.utilizations[i]),
            }
        return out


def mean_value_analysis(stations: Sequence[MVAStation], population: int) -> MVAResult:
    """Run exact single-class MVA for ``population`` circulating jobs.

    The classic recursion (Reiser & Lavenberg):

    * queueing station:  ``R_k(n) = D_k · (1 + Q_k(n−1))``
    * delay station:     ``R_k(n) = D_k``
    * throughput:        ``X(n) = n / Σ_k R_k(n)``
    * queue lengths:     ``Q_k(n) = X(n) · R_k(n)``

    where ``D_k = visit_ratio · service_time`` is the service demand.
    """
    if population < 0:
        raise ConfigurationError(f"population must be non-negative, got {population!r}")
    if not stations:
        raise ConfigurationError("need at least one station")

    names = [s.name for s in stations]
    demands = np.array([s.visit_ratio * s.service_time for s in stations], dtype=float)
    is_delay = np.array([s.is_delay for s in stations], dtype=bool)

    queue = np.zeros(len(stations), dtype=float)
    throughput = 0.0
    residence = np.zeros(len(stations), dtype=float)

    for n in range(1, population + 1):
        residence = np.where(is_delay, demands, demands * (1.0 + queue))
        total = residence.sum()
        throughput = n / total if total > 0 else 0.0
        queue = throughput * residence

    utilizations = np.where(is_delay, 0.0, throughput * demands)
    return MVAResult(
        population=population,
        throughput=float(throughput),
        station_names=names,
        queue_lengths=queue,
        residence_times=residence,
        utilizations=utilizations,
    )
