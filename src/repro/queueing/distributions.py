"""Distribution descriptors for inter-arrival and service processes.

These are lightweight value objects used both by the analytical formulas
(which only need the mean and the squared coefficient of variation, SCV) and
by the simulator (which samples them through a
:class:`repro.des.rng.VariateGenerator`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..des.rng import DEFAULT_BLOCK_SIZE, VariateGenerator

__all__ = [
    "Distribution",
    "Exponential",
    "Deterministic",
    "Erlang",
    "HyperExponential",
    "UniformDistribution",
]


class Distribution:
    """Abstract base class for positive-valued distributions.

    Subclasses expose :attr:`mean`, :attr:`variance`, :attr:`scv` (squared
    coefficient of variation) and :meth:`sample`.
    """

    @property
    def mean(self) -> float:
        """Expected value."""
        raise NotImplementedError

    @property
    def variance(self) -> float:
        """Variance."""
        raise NotImplementedError

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``Var/Mean^2``."""
        mean = self.mean
        if mean == 0:
            return math.nan
        return self.variance / (mean * mean)

    @property
    def rate(self) -> float:
        """Reciprocal of the mean (service or arrival rate)."""
        mean = self.mean
        if mean <= 0:
            raise ValueError("rate undefined for non-positive mean")
        return 1.0 / mean

    def sample(self, rng: VariateGenerator) -> float:
        """Draw one variate using ``rng``."""
        raise NotImplementedError

    def sampler(self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE):
        """Return a zero-argument callable drawing successive variates.

        The default falls back to one :meth:`sample` call per invocation;
        distributions with a matching :class:`~repro.des.rng.VariateStream`
        family override this with a batched stream that reproduces the
        scalar draw sequence bit-for-bit.  A batched sampler reads ahead on
        ``rng``, so the stream must be this sampler's exclusive consumer.
        """
        return lambda: self.sample(rng)

    def scaled(self, factor: float) -> "Distribution":
        """Return a copy whose mean is multiplied by ``factor``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given mean (Markovian, SCV = 1)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError(f"mean must be positive, got {self.mean_value!r}")

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def variance(self) -> float:
        return self.mean_value**2

    def sample(self, rng: VariateGenerator) -> float:
        return rng.exponential(self.mean_value)

    def sampler(self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE):
        return rng.exponential_stream(self.mean_value, block_size)

    def scaled(self, factor: float) -> "Exponential":
        return Exponential(self.mean_value * factor)

    @classmethod
    def from_rate(cls, rate: float) -> "Exponential":
        """Construct from a rate (events per time unit)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        return cls(1.0 / rate)


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Degenerate distribution: every sample equals ``value`` (SCV = 0)."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"value must be non-negative, got {self.value!r}")

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def sample(self, rng: VariateGenerator) -> float:
        return rng.deterministic(self.value)

    def sampler(self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE):
        value = float(self.value)
        return lambda: value

    def scaled(self, factor: float) -> "Deterministic":
        return Deterministic(self.value * factor)


@dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang-k distribution (sum of k exponentials), SCV = 1/k < 1."""

    k: int
    mean_value: float

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be a positive integer, got {self.k!r}")
        if self.mean_value <= 0:
            raise ValueError(f"mean must be positive, got {self.mean_value!r}")

    @property
    def mean(self) -> float:
        return self.mean_value

    @property
    def variance(self) -> float:
        return self.mean_value**2 / self.k

    def sample(self, rng: VariateGenerator) -> float:
        return rng.erlang(self.k, self.mean_value)

    def sampler(self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE):
        return rng.erlang_stream(self.k, self.mean_value, block_size)

    def scaled(self, factor: float) -> "Erlang":
        return Erlang(self.k, self.mean_value * factor)


@dataclass(frozen=True)
class HyperExponential(Distribution):
    """Mixture of exponentials (SCV > 1), for bursty service processes."""

    means: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.means) != len(self.probabilities) or not self.means:
            raise ValueError("means and probabilities must be non-empty and equal length")
        if any(m <= 0 for m in self.means):
            raise ValueError("all means must be positive")
        if any(p < 0 for p in self.probabilities):
            raise ValueError("probabilities must be non-negative")
        if not math.isclose(sum(self.probabilities), 1.0, rel_tol=1e-9, abs_tol=1e-12):
            raise ValueError(f"probabilities must sum to 1, got {sum(self.probabilities)!r}")

    @property
    def mean(self) -> float:
        return sum(p * m for p, m in zip(self.probabilities, self.means))

    @property
    def second_moment(self) -> float:
        """E[X^2] of the mixture."""
        return sum(p * 2.0 * m * m for p, m in zip(self.probabilities, self.means))

    @property
    def variance(self) -> float:
        return self.second_moment - self.mean**2

    def sample(self, rng: VariateGenerator) -> float:
        return rng.hyperexponential(self.means, self.probabilities)

    def scaled(self, factor: float) -> "HyperExponential":
        return HyperExponential(tuple(m * factor for m in self.means), self.probabilities)

    @classmethod
    def from_mean_and_scv(cls, mean: float, scv: float) -> "HyperExponential":
        """Two-phase balanced-means fit for a target mean and SCV > 1."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        if scv <= 1:
            raise ValueError(f"SCV must exceed 1 for a hyperexponential fit, got {scv!r}")
        # Balanced-means two-phase fit (Whitt, 1982).
        p1 = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
        p2 = 1.0 - p1
        m1 = mean / (2.0 * p1)
        m2 = mean / (2.0 * p2)
        return cls((m1, m2), (p1, p2))


@dataclass(frozen=True)
class UniformDistribution(Distribution):
    """Uniform distribution on ``[low, high]`` (used by extension workloads)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"need 0 <= low <= high, got [{self.low!r}, {self.high!r}]")

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def sample(self, rng: VariateGenerator) -> float:
        return rng.uniform(self.low, self.high)

    def sampler(self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE):
        return rng.uniform_stream(self.low, self.high, block_size)

    def scaled(self, factor: float) -> "UniformDistribution":
        return UniformDistribution(self.low * factor, self.high * factor)
