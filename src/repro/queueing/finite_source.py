"""Finite-source (machine-repairman) queueing model.

The paper's assumption 4 says a processor that is waiting for a reply cannot
generate further requests.  The exact queueing abstraction for this is the
*machine-repairman* (M/M/1//N) model; the paper instead uses the simpler
fixed-point correction ``λ_eff = (N − L)/N · λ`` (Eq. 7), attributed to
Shahhoseini & Naderi [13].  We implement the exact model here so the
approximation quality can be assessed (ablation `fixed_point_vs_exact`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

__all__ = ["MachineRepairmanQueue", "effective_rate_correction"]


def effective_rate_correction(nominal_rate: float, waiting: float, population: int) -> float:
    """The paper's Eq. (7): ``λ_eff = (N − L)/N · λ``.

    Parameters
    ----------
    nominal_rate:
        Per-processor request rate λ while active.
    waiting:
        Average number of processors currently blocked on outstanding
        requests (the total queue length ``L`` of Eq. 6).
    population:
        Total number of processors ``N``.
    """
    if population <= 0:
        raise ValueError(f"population must be positive, got {population!r}")
    if nominal_rate < 0:
        raise ValueError(f"nominal rate must be non-negative, got {nominal_rate!r}")
    waiting = min(max(waiting, 0.0), float(population))
    return (population - waiting) / population * nominal_rate


@dataclass(frozen=True)
class MachineRepairmanQueue:
    """Exact M/M/1//N model: N sources, one exponential server.

    Each of the ``population`` sources independently generates a request after an
    exponential *think time* with rate ``request_rate``; requests queue at a
    single server with rate ``service_rate``; while a request is outstanding
    its source is idle.
    """

    population: int
    request_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ValueError(f"population must be >= 1, got {self.population!r}")
        if self.request_rate <= 0:
            raise ValueError(f"request rate must be positive, got {self.request_rate!r}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate!r}")

    def state_probabilities(self) -> List[float]:
        """Steady-state probabilities ``P[n requests at the server]`` for n = 0..N.

        Computed from the birth–death balance equations with normalisation;
        evaluated in log space to avoid overflow for large N.
        """
        N = self.population
        ratio = self.request_rate / self.service_rate
        # log of unnormalised p_n = N!/(N-n)! * ratio^n
        log_terms = [0.0] * (N + 1)
        for n in range(1, N + 1):
            log_terms[n] = log_terms[n - 1] + math.log((N - n + 1) * ratio)
        max_log = max(log_terms)
        weights = [math.exp(t - max_log) for t in log_terms]
        total = sum(weights)
        return [w / total for w in weights]

    @property
    def mean_number_at_server(self) -> float:
        """Expected number of requests queued or in service."""
        probs = self.state_probabilities()
        return sum(n * p for n, p in enumerate(probs))

    @property
    def server_utilization(self) -> float:
        """Probability the server is busy (1 − P0)."""
        return 1.0 - self.state_probabilities()[0]

    @property
    def throughput(self) -> float:
        """Request completion rate ``X = µ·(1 − P0)``."""
        return self.service_rate * self.server_utilization

    @property
    def effective_request_rate(self) -> float:
        """Per-source effective request rate ``X / N``."""
        return self.throughput / self.population

    @property
    def mean_response_time(self) -> float:
        """Mean time a request spends at the server (interactive response-time law).

        ``R = N/X − 1/λ_think``.
        """
        return self.population / self.throughput - 1.0 / self.request_rate

    @property
    def mean_active_sources(self) -> float:
        """Expected number of sources currently thinking (not waiting)."""
        return self.population - self.mean_number_at_server
