"""M/M/1 and M/M/1/K queue formulas.

The paper models every communication network as an M/M/1 service centre
(Poisson arrivals by Jackson's theorem, exponential service time equal to
the message transmission time).  Equation (16) of the paper,
``W_i = 1/(µ_i − λ_i)``, is the M/M/1 sojourn time; Eq. (6) uses the M/M/1
mean queue length ``L_i = λ_i/(µ_i − λ_i)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StabilityError

__all__ = ["MM1Queue", "MM1KQueue"]


@dataclass(frozen=True)
class MM1Queue:
    """An M/M/1 queue with arrival rate ``arrival_rate`` and service rate ``service_rate``.

    All classic steady-state metrics are exposed as properties.  Rates are
    in "per unit time" with the same unit used consistently.
    """

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate!r}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate!r}")

    # -- basic quantities -------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Traffic intensity ``ρ = λ/µ``."""
        return self.arrival_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """Whether the queue is stable (ρ < 1)."""
        return self.utilization < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise StabilityError(
                f"M/M/1 queue is unstable: λ={self.arrival_rate} >= µ={self.service_rate}"
            )

    # -- steady-state metrics ---------------------------------------------------

    @property
    def mean_number_in_system(self) -> float:
        """``L = ρ/(1-ρ)`` — this is the paper's queue length L_i (Eq. 6)."""
        self._require_stable()
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def mean_number_in_queue(self) -> float:
        """``Lq = ρ²/(1-ρ)``."""
        self._require_stable()
        rho = self.utilization
        return rho * rho / (1.0 - rho)

    @property
    def mean_sojourn_time(self) -> float:
        """``W = 1/(µ-λ)`` — the paper's waiting time W_i (Eq. 16)."""
        self._require_stable()
        return 1.0 / (self.service_rate - self.arrival_rate)

    @property
    def mean_waiting_time(self) -> float:
        """``Wq = ρ/(µ-λ)`` — time spent waiting before service starts."""
        self._require_stable()
        return self.utilization / (self.service_rate - self.arrival_rate)

    @property
    def mean_service_time(self) -> float:
        """``1/µ``."""
        return 1.0 / self.service_rate

    def probability_n_in_system(self, n: int) -> float:
        """Steady-state probability of exactly ``n`` customers in the system."""
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        self._require_stable()
        rho = self.utilization
        return (1.0 - rho) * rho**n

    def probability_wait_exceeds(self, t: float) -> float:
        """``P[W > t]`` for the total sojourn time (exponential with rate µ-λ)."""
        if t < 0:
            raise ValueError(f"t must be non-negative, got {t!r}")
        self._require_stable()
        return math.exp(-(self.service_rate - self.arrival_rate) * t)

    def sojourn_time_quantile(self, q: float) -> float:
        """Quantile of the sojourn-time distribution."""
        if not 0.0 <= q < 1.0:
            raise ValueError(f"q must lie in [0, 1), got {q!r}")
        self._require_stable()
        return -math.log(1.0 - q) / (self.service_rate - self.arrival_rate)


@dataclass(frozen=True)
class MM1KQueue:
    """M/M/1/K queue: single server, finite buffer of ``capacity`` customers.

    Used in extension studies of bounded network buffers; arriving customers
    that find the buffer full are lost.
    """

    arrival_rate: float
    service_rate: float
    capacity: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate!r}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate!r}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity!r}")

    @property
    def utilization(self) -> float:
        """Offered traffic intensity ``ρ = λ/µ`` (may exceed 1)."""
        return self.arrival_rate / self.service_rate

    def _state_probabilities(self) -> list:
        """Normalised state probabilities p_0..p_K, computed in log space.

        The textbook closed form ``(1−ρ)ρ^n / (1−ρ^(K+1))`` overflows for
        large ρ and moderate K; working with ``exp(n·logρ − max)`` is exact
        up to floating point and never overflows.
        """
        rho = self.utilization
        K = self.capacity
        if rho == 0.0:
            return [1.0] + [0.0] * K
        if math.isclose(rho, 1.0):
            return [1.0 / (K + 1)] * (K + 1)
        log_rho = math.log(rho)
        log_weights = [n * log_rho for n in range(K + 1)]
        max_log = max(log_weights)
        weights = [math.exp(lw - max_log) for lw in log_weights]
        total = sum(weights)
        return [w / total for w in weights]

    def probability_n_in_system(self, n: int) -> float:
        """Steady-state probability of exactly ``n`` customers (0 <= n <= K)."""
        if n < 0 or n > self.capacity:
            return 0.0
        return self._state_probabilities()[n]

    @property
    def blocking_probability(self) -> float:
        """Probability an arrival is lost (finds the buffer full)."""
        return self.probability_n_in_system(self.capacity)

    @property
    def effective_arrival_rate(self) -> float:
        """Rate of accepted (non-blocked) arrivals."""
        return self.arrival_rate * (1.0 - self.blocking_probability)

    @property
    def mean_number_in_system(self) -> float:
        """Expected number of customers in the system."""
        probs = self._state_probabilities()
        return sum(n * p for n, p in enumerate(probs))

    @property
    def mean_sojourn_time(self) -> float:
        """Expected sojourn time of accepted customers (Little's law)."""
        lam_eff = self.effective_arrival_rate
        if lam_eff == 0:
            return math.nan
        return self.mean_number_in_system / lam_eff

    @property
    def throughput(self) -> float:
        """Departure rate, equal to the effective arrival rate."""
        return self.effective_arrival_rate
