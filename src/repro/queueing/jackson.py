"""Open Jackson queueing networks.

Jackson's theorem underpins the paper's whole methodology (assumption 2):
because every service centre has Poisson external arrivals, exponential
service and probabilistic routing, the network behaves as a product of
independent M/M/1 queues once the per-centre arrival rates are obtained
from the *traffic equations*

    λ_i = γ_i + Σ_j λ_j · r_{ji}

where γ_i are external arrival rates and ``r`` is the routing matrix.  The
paper solves its specific traffic equations by hand (Eqs. 1–5); this module
implements the general machinery so that those closed forms can be verified
against a generic solver (see ``tests/core/test_traffic.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError, StabilityError
from .mm1 import MM1Queue
from .mmc import MMCQueue

__all__ = ["ServiceCenter", "JacksonNetwork", "JacksonSolution"]


@dataclass(frozen=True)
class ServiceCenter:
    """One node of a Jackson network.

    Parameters
    ----------
    name:
        Unique identifier used in routing specifications and reports.
    service_rate:
        Exponential service rate µ (> 0) of *each* server.
    servers:
        Number of parallel servers (1 = M/M/1 behaviour).
    """

    name: str
    service_rate: float
    servers: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("service centre name must be non-empty")
        if self.service_rate <= 0:
            raise ConfigurationError(
                f"service rate of {self.name!r} must be positive, got {self.service_rate!r}"
            )
        if self.servers < 1:
            raise ConfigurationError(
                f"server count of {self.name!r} must be >= 1, got {self.servers!r}"
            )


@dataclass(frozen=True)
class JacksonSolution:
    """Per-centre steady-state metrics of a solved Jackson network."""

    names: Sequence[str]
    arrival_rates: np.ndarray
    utilizations: np.ndarray
    mean_numbers: np.ndarray
    mean_sojourn_times: np.ndarray

    def arrival_rate(self, name: str) -> float:
        """Total arrival rate at centre ``name``."""
        return float(self.arrival_rates[list(self.names).index(name)])

    def utilization(self, name: str) -> float:
        """Utilisation of centre ``name``."""
        return float(self.utilizations[list(self.names).index(name)])

    def mean_number(self, name: str) -> float:
        """Mean number of customers at centre ``name``."""
        return float(self.mean_numbers[list(self.names).index(name)])

    def mean_sojourn_time(self, name: str) -> float:
        """Mean sojourn time at centre ``name``."""
        return float(self.mean_sojourn_times[list(self.names).index(name)])

    @property
    def total_mean_number(self) -> float:
        """Total expected number of customers in the network."""
        return float(self.mean_numbers.sum())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-centre metrics as nested dictionaries (for reports)."""
        out: Dict[str, Dict[str, float]] = {}
        for i, name in enumerate(self.names):
            out[name] = {
                "arrival_rate": float(self.arrival_rates[i]),
                "utilization": float(self.utilizations[i]),
                "mean_number": float(self.mean_numbers[i]),
                "mean_sojourn_time": float(self.mean_sojourn_times[i]),
            }
        return out


class JacksonNetwork:
    """An open Jackson network defined by centres, external arrivals and routing.

    Example
    -------
    >>> net = JacksonNetwork()
    >>> net.add_center(ServiceCenter("cpu", service_rate=10.0))
    >>> net.add_center(ServiceCenter("disk", service_rate=5.0))
    >>> net.set_external_arrival("cpu", 2.0)
    >>> net.set_routing("cpu", "disk", 0.5)     # 50% of CPU departures go to disk
    >>> net.set_routing("disk", "cpu", 1.0)     # disk departures return to the CPU
    >>> sol = net.solve()
    >>> round(sol.arrival_rate("cpu"), 6)
    4.0
    """

    def __init__(self) -> None:
        self._centers: List[ServiceCenter] = []
        self._index: Dict[str, int] = {}
        self._external: Dict[str, float] = {}
        self._routing: Dict[str, Dict[str, float]] = {}

    # -- construction -----------------------------------------------------------

    def add_center(self, center: ServiceCenter) -> None:
        """Add a service centre (names must be unique)."""
        if center.name in self._index:
            raise ConfigurationError(f"duplicate service centre name {center.name!r}")
        self._index[center.name] = len(self._centers)
        self._centers.append(center)

    def set_external_arrival(self, name: str, rate: float) -> None:
        """Set the external (Poisson) arrival rate γ at centre ``name``."""
        self._require_center(name)
        if rate < 0:
            raise ConfigurationError(f"external arrival rate must be non-negative, got {rate!r}")
        self._external[name] = float(rate)

    def set_routing(self, source: str, destination: str, probability: float) -> None:
        """Set the routing probability from ``source`` to ``destination``.

        Departure probabilities from a centre may sum to less than 1; the
        remainder leaves the network.
        """
        self._require_center(source)
        self._require_center(destination)
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"routing probability must lie in [0, 1], got {probability!r}")
        row = self._routing.setdefault(source, {})
        row[destination] = float(probability)
        if sum(row.values()) > 1.0 + 1e-9:
            raise ConfigurationError(
                f"routing probabilities out of {source!r} exceed 1: {row!r}"
            )

    def _require_center(self, name: str) -> None:
        if name not in self._index:
            raise ConfigurationError(f"unknown service centre {name!r}")

    @property
    def names(self) -> List[str]:
        """Names of all centres in insertion order."""
        return [c.name for c in self._centers]

    @property
    def size(self) -> int:
        """Number of centres."""
        return len(self._centers)

    # -- solving ----------------------------------------------------------------

    def routing_matrix(self) -> np.ndarray:
        """The routing matrix ``R`` with ``R[i, j] = P[i -> j]``."""
        n = len(self._centers)
        R = np.zeros((n, n), dtype=float)
        for src, row in self._routing.items():
            i = self._index[src]
            for dst, p in row.items():
                R[i, self._index[dst]] = p
        return R

    def external_vector(self) -> np.ndarray:
        """External arrival-rate vector γ."""
        gamma = np.zeros(len(self._centers), dtype=float)
        for name, rate in self._external.items():
            gamma[self._index[name]] = rate
        return gamma

    def traffic_equations(self) -> np.ndarray:
        """Solve ``λ = γ + Rᵀ λ`` for the total arrival-rate vector λ."""
        if not self._centers:
            raise ConfigurationError("network has no service centres")
        R = self.routing_matrix()
        gamma = self.external_vector()
        n = len(self._centers)
        A = np.eye(n) - R.T
        try:
            lam = np.linalg.solve(A, gamma)
        except np.linalg.LinAlgError as exc:
            raise ConfigurationError(
                "traffic equations are singular: the routing matrix traps customers"
            ) from exc
        if np.any(lam < -1e-9):
            raise ConfigurationError("traffic equations produced negative arrival rates")
        return np.clip(lam, 0.0, None)

    def solve(self) -> JacksonSolution:
        """Solve the network and return per-centre steady-state metrics.

        Raises
        ------
        StabilityError
            If any centre is saturated (λ_i >= c_i µ_i).
        """
        lam = self.traffic_equations()
        n = len(self._centers)
        util = np.zeros(n)
        numbers = np.zeros(n)
        sojourn = np.zeros(n)
        for i, center in enumerate(self._centers):
            capacity = center.service_rate * center.servers
            if lam[i] >= capacity:
                raise StabilityError(
                    f"centre {center.name!r} is unstable: λ={lam[i]:.6g} >= c·µ={capacity:.6g}"
                )
            if center.servers == 1:
                q = MM1Queue(lam[i], center.service_rate)
                util[i] = q.utilization
                numbers[i] = q.mean_number_in_system if lam[i] > 0 else 0.0
                sojourn[i] = q.mean_sojourn_time
            else:
                q2 = MMCQueue(lam[i], center.service_rate, center.servers)
                util[i] = q2.utilization
                numbers[i] = q2.mean_number_in_system if lam[i] > 0 else 0.0
                sojourn[i] = q2.mean_sojourn_time
        return JacksonSolution(self.names, lam, util, numbers, sojourn)

    def __repr__(self) -> str:
        return f"<JacksonNetwork centres={self.names}>"
