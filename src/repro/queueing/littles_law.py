"""Little's law and related operational-analysis helpers."""

from __future__ import annotations

from ..errors import StabilityError

__all__ = [
    "number_in_system",
    "sojourn_time",
    "arrival_rate_from",
    "utilization",
    "require_stable",
    "saturation_arrival_rate",
]


def number_in_system(arrival_rate: float, sojourn_time: float) -> float:
    """``L = λ · W``."""
    if arrival_rate < 0 or sojourn_time < 0:
        raise ValueError("arrival rate and sojourn time must be non-negative")
    return arrival_rate * sojourn_time


def sojourn_time(number: float, arrival_rate: float) -> float:
    """``W = L / λ`` (raises for λ = 0)."""
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate!r}")
    if number < 0:
        raise ValueError(f"number in system must be non-negative, got {number!r}")
    return number / arrival_rate


def arrival_rate_from(number: float, sojourn: float) -> float:
    """``λ = L / W`` (raises for W = 0)."""
    if sojourn <= 0:
        raise ValueError(f"sojourn time must be positive, got {sojourn!r}")
    if number < 0:
        raise ValueError(f"number in system must be non-negative, got {number!r}")
    return number / sojourn


def utilization(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    """``ρ = λ / (c·µ)``."""
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate!r}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers!r}")
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be non-negative, got {arrival_rate!r}")
    return arrival_rate / (service_rate * servers)


def require_stable(arrival_rate: float, service_rate: float, servers: int = 1, name: str = "queue") -> None:
    """Raise :class:`~repro.errors.StabilityError` if ρ >= 1."""
    rho = utilization(arrival_rate, service_rate, servers)
    if rho >= 1.0:
        raise StabilityError(f"{name} is unstable: utilisation {rho:.4g} >= 1")


def saturation_arrival_rate(service_rate: float, servers: int = 1) -> float:
    """The arrival rate at which a station saturates (``c·µ``)."""
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate!r}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers!r}")
    return service_rate * servers
