"""Message-size models and synthetic trace generation.

Assumption 6 fixes the message length at M bytes; the other size models and
the trace generator support sensitivity studies and replayable workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..des.rng import RandomStreams, VariateGenerator
from ..errors import ConfigurationError
from .arrivals import ArrivalProcess, PoissonArrivals
from .destinations import DestinationPolicy, NodeAddress, UniformDestinations

__all__ = [
    "MessageSizeModel",
    "FixedMessageSize",
    "BimodalMessageSize",
    "UniformMessageSize",
    "TraceEntry",
    "WorkloadTrace",
    "generate_trace",
]


class MessageSizeModel:
    """Base class: draws the size in bytes of each generated message."""

    def sample(self, rng: VariateGenerator) -> float:
        """Draw one message size (bytes)."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Mean message size (bytes)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedMessageSize(MessageSizeModel):
    """Assumption 6: every message is exactly ``size_bytes`` long."""

    size_bytes: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"message size must be positive, got {self.size_bytes!r}")

    def sample(self, rng: VariateGenerator) -> float:
        return self.size_bytes

    @property
    def mean(self) -> float:
        return self.size_bytes


@dataclass(frozen=True)
class BimodalMessageSize(MessageSizeModel):
    """Short control messages mixed with long data messages."""

    short_bytes: float = 64.0
    long_bytes: float = 4096.0
    long_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.short_bytes <= 0 or self.long_bytes <= 0:
            raise ConfigurationError("message sizes must be positive")
        if not 0.0 <= self.long_fraction <= 1.0:
            raise ConfigurationError(
                f"long fraction must lie in [0, 1], got {self.long_fraction!r}"
            )

    def sample(self, rng: VariateGenerator) -> float:
        return self.long_bytes if rng.bernoulli(self.long_fraction) else self.short_bytes

    @property
    def mean(self) -> float:
        return self.long_fraction * self.long_bytes + (1 - self.long_fraction) * self.short_bytes


@dataclass(frozen=True)
class UniformMessageSize(MessageSizeModel):
    """Uniformly distributed message sizes on ``[low_bytes, high_bytes]``."""

    low_bytes: float
    high_bytes: float

    def __post_init__(self) -> None:
        if self.low_bytes <= 0 or self.high_bytes < self.low_bytes:
            raise ConfigurationError(
                f"need 0 < low <= high, got [{self.low_bytes!r}, {self.high_bytes!r}]"
            )

    def sample(self, rng: VariateGenerator) -> float:
        return rng.uniform(self.low_bytes, self.high_bytes)

    @property
    def mean(self) -> float:
        return (self.low_bytes + self.high_bytes) / 2.0


@dataclass(frozen=True)
class TraceEntry:
    """One pre-generated message of a workload trace."""

    time: float
    source: NodeAddress
    destination: NodeAddress
    size_bytes: float


@dataclass
class WorkloadTrace:
    """A replayable, pre-generated sequence of messages (sorted by time)."""

    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    @property
    def duration(self) -> float:
        """Time of the last entry (0 for an empty trace)."""
        return self.entries[-1].time if self.entries else 0.0

    @property
    def mean_size(self) -> float:
        """Average message size of the trace."""
        if not self.entries:
            return 0.0
        return sum(e.size_bytes for e in self.entries) / len(self.entries)

    def messages_per_source(self) -> dict:
        """Histogram of how many messages each source generated."""
        counts: dict = {}
        for entry in self.entries:
            counts[entry.source] = counts.get(entry.source, 0) + 1
        return counts


def generate_trace(
    cluster_sizes: Sequence[int],
    num_messages: int,
    arrival_process: Optional[ArrivalProcess] = None,
    destination_policy: Optional[DestinationPolicy] = None,
    size_model: Optional[MessageSizeModel] = None,
    seed: int = 0,
) -> WorkloadTrace:
    """Pre-generate an open-loop workload trace.

    Each node runs its own arrival process; the merged trace is sorted by
    generation time.  Note that the validation simulator normally generates
    traffic *closed-loop* (a processor blocks while its request is pending,
    assumption 4); traces are for open-loop extension studies and for
    feeding external simulators.
    """
    if num_messages < 0:
        raise ConfigurationError(f"num_messages must be non-negative, got {num_messages!r}")
    streams = RandomStreams(seed)
    arrival = arrival_process if arrival_process is not None else PoissonArrivals(rate=0.25)
    dest = (
        destination_policy
        if destination_policy is not None
        else UniformDestinations(cluster_sizes)
    )
    sizes = size_model if size_model is not None else FixedMessageSize(1024.0)

    total_nodes = sum(cluster_sizes)
    if total_nodes < 2:
        raise ConfigurationError("trace generation needs at least two nodes")
    per_node = max(1, num_messages // total_nodes + 1)

    entries: List[TraceEntry] = []
    for cluster, size in enumerate(cluster_sizes):
        for proc in range(size):
            node = (cluster, proc)
            rng = streams.stream(f"trace-{cluster}-{proc}")
            t = 0.0
            for _ in range(per_node):
                t += arrival.interarrival(rng)
                entries.append(
                    TraceEntry(
                        time=t,
                        source=node,
                        destination=dest.choose(node, rng),
                        size_bytes=sizes.sample(rng),
                    )
                )
    entries.sort(key=lambda e: e.time)
    return WorkloadTrace(entries=entries[:num_messages])
