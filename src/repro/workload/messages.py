"""Message-size models and synthetic trace generation.

Assumption 6 fixes the message length at M bytes; the other size models and
the trace generator support sensitivity studies and replayable workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..des.rng import DEFAULT_BLOCK_SIZE, RandomStreams, VariateGenerator
from ..errors import ConfigurationError
from .arrivals import ArrivalProcess, PoissonArrivals
from .destinations import DestinationPolicy, NodeAddress, UniformDestinations

__all__ = [
    "MessageSizeModel",
    "FixedMessageSize",
    "BimodalMessageSize",
    "UniformMessageSize",
    "TraceEntry",
    "WorkloadTrace",
    "generate_trace",
]


class MessageSizeModel:
    """Base class: draws the size in bytes of each generated message."""

    #: Whether :meth:`sample` consumes random numbers (``False`` for the
    #: paper's fixed-size assumption).  Workload batching uses this to
    #: identify the consumers of a shared stream.
    consumes_rng: bool = True

    def sample(self, rng: VariateGenerator) -> float:
        """Draw one message size (bytes)."""
        raise NotImplementedError

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        """Return a zero-argument callable drawing successive sizes.

        The base implementation falls back to one :meth:`sample` call per
        invocation; single-draw models override it with a batched
        :class:`~repro.des.rng.VariateStream` that reproduces the scalar
        sequence bit-for-bit.  A batched sampler reads ahead on ``rng``
        and must be its only consumer.
        """
        return lambda: self.sample(rng)

    @property
    def mean(self) -> float:
        """Mean message size (bytes)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedMessageSize(MessageSizeModel):
    """Assumption 6: every message is exactly ``size_bytes`` long."""

    size_bytes: float
    consumes_rng = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"message size must be positive, got {self.size_bytes!r}")

    def sample(self, rng: VariateGenerator) -> float:
        return self.size_bytes

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        size = self.size_bytes
        return lambda: size

    @property
    def mean(self) -> float:
        return self.size_bytes


@dataclass(frozen=True)
class BimodalMessageSize(MessageSizeModel):
    """Short control messages mixed with long data messages."""

    short_bytes: float = 64.0
    long_bytes: float = 4096.0
    long_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.short_bytes <= 0 or self.long_bytes <= 0:
            raise ConfigurationError("message sizes must be positive")
        if not 0.0 <= self.long_fraction <= 1.0:
            raise ConfigurationError(
                f"long fraction must lie in [0, 1], got {self.long_fraction!r}"
            )

    def sample(self, rng: VariateGenerator) -> float:
        return self.long_bytes if rng.bernoulli(self.long_fraction) else self.short_bytes

    @property
    def mean(self) -> float:
        return self.long_fraction * self.long_bytes + (1 - self.long_fraction) * self.short_bytes


@dataclass(frozen=True)
class UniformMessageSize(MessageSizeModel):
    """Uniformly distributed message sizes on ``[low_bytes, high_bytes]``."""

    low_bytes: float
    high_bytes: float

    def __post_init__(self) -> None:
        if self.low_bytes <= 0 or self.high_bytes < self.low_bytes:
            raise ConfigurationError(
                f"need 0 < low <= high, got [{self.low_bytes!r}, {self.high_bytes!r}]"
            )

    def sample(self, rng: VariateGenerator) -> float:
        return rng.uniform(self.low_bytes, self.high_bytes)

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        """Batched equivalent of repeated :meth:`sample` calls (bit-identical)."""
        return rng.uniform_stream(self.low_bytes, self.high_bytes, block_size)

    @property
    def mean(self) -> float:
        return (self.low_bytes + self.high_bytes) / 2.0


@dataclass(frozen=True)
class TraceEntry:
    """One pre-generated message of a workload trace."""

    time: float
    source: NodeAddress
    destination: NodeAddress
    size_bytes: float


@dataclass
class WorkloadTrace:
    """A replayable, pre-generated sequence of messages (sorted by time)."""

    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    @property
    def duration(self) -> float:
        """Time of the last entry (0 for an empty trace)."""
        return self.entries[-1].time if self.entries else 0.0

    @property
    def mean_size(self) -> float:
        """Average message size of the trace."""
        if not self.entries:
            return 0.0
        return sum(e.size_bytes for e in self.entries) / len(self.entries)

    def messages_per_source(self) -> dict:
        """Histogram of how many messages each source generated."""
        counts: dict = {}
        for entry in self.entries:
            counts[entry.source] = counts.get(entry.source, 0) + 1
        return counts


def _node_draw_callables(
    node: NodeAddress,
    arrival: ArrivalProcess,
    dest: DestinationPolicy,
    sizes: MessageSizeModel,
    rng: VariateGenerator,
) -> Tuple[Callable[[], float], Callable[[], NodeAddress], Callable[[], float]]:
    """Per-entry draw callables for one node's shared stream.

    When at most one of the three families actually consumes random numbers,
    that family is the stream's *sole* consumer and its batched
    :class:`~repro.des.rng.VariateStream` sampler reads the exact bit-stream
    positions the scalar calls would — so batching is bit-identical.  With
    two or more consumers the draws interleave on the shared stream and any
    lookahead would shift what the other family observes, so the scalar
    per-call path is kept (this is why the paper-default Poisson + uniform
    trace cannot be batched without changing its values; use
    ``stream_layout="per-family"`` for a fully batched — but differently
    seeded — trace).
    """
    consumers = sum(
        1 for family in (arrival, dest, sizes) if family.consumes_rng
    )
    if consumers <= 1:
        return arrival.sampler(rng), dest.chooser(node, rng), sizes.sampler(rng)
    return (
        lambda: arrival.interarrival(rng),
        lambda: dest.choose(node, rng),
        lambda: sizes.sample(rng),
    )


def generate_trace(
    cluster_sizes: Sequence[int],
    num_messages: int,
    arrival_process: Optional[ArrivalProcess] = None,
    destination_policy: Optional[DestinationPolicy] = None,
    size_model: Optional[MessageSizeModel] = None,
    seed: int = 0,
    stream_layout: str = "shared",
) -> WorkloadTrace:
    """Pre-generate an open-loop workload trace.

    Each node runs its own arrival process; the merged trace is sorted by
    generation time.  Note that the validation simulator normally generates
    traffic *closed-loop* (a processor blocks while its request is pending,
    assumption 4); traces are for open-loop extension studies and for
    feeding external simulators.

    ``stream_layout`` selects how random streams are assigned:

    * ``"shared"`` (default) — one stream per node, consumed by all three
      draw families in interleaved order.  This is the historical layout:
      traces are bit-identical to every earlier release for the same seed.
      Whenever at most one family consumes random numbers the draws are
      served from a batched :class:`~repro.des.rng.VariateStream`
      (still bit-identical — the batch reads the same stream positions).
    * ``"per-family"`` — three independent named streams per node
      (arrivals / destinations / sizes), every family batched.  Much
      faster for large traces and equally deterministic, but a *different*
      trace than ``"shared"`` because the streams are seeded differently.
    """
    if num_messages < 0:
        raise ConfigurationError(f"num_messages must be non-negative, got {num_messages!r}")
    if stream_layout not in ("shared", "per-family"):
        raise ConfigurationError(
            f"stream_layout must be 'shared' or 'per-family', got {stream_layout!r}"
        )
    streams = RandomStreams(seed)
    arrival = arrival_process if arrival_process is not None else PoissonArrivals(rate=0.25)
    dest = (
        destination_policy
        if destination_policy is not None
        else UniformDestinations(cluster_sizes)
    )
    sizes = size_model if size_model is not None else FixedMessageSize(1024.0)

    total_nodes = sum(cluster_sizes)
    if total_nodes < 2:
        raise ConfigurationError("trace generation needs at least two nodes")
    per_node = max(1, num_messages // total_nodes + 1)

    entries: List[TraceEntry] = []
    for cluster, size in enumerate(cluster_sizes):
        for proc in range(size):
            node = (cluster, proc)
            if stream_layout == "per-family":
                next_interarrival = arrival.sampler(
                    streams.stream(f"trace-{cluster}-{proc}-arrivals")
                )
                choose = dest.chooser(node, streams.stream(f"trace-{cluster}-{proc}-destinations"))
                draw_size = sizes.sampler(streams.stream(f"trace-{cluster}-{proc}-sizes"))
            else:
                rng = streams.stream(f"trace-{cluster}-{proc}")
                next_interarrival, choose, draw_size = _node_draw_callables(
                    node, arrival, dest, sizes, rng
                )
            t = 0.0
            for _ in range(per_node):
                t += next_interarrival()
                entries.append(
                    TraceEntry(
                        time=t,
                        source=node,
                        destination=choose(),
                        size_bytes=draw_size(),
                    )
                )
    entries.sort(key=lambda e: e.time)
    return WorkloadTrace(entries=entries[:num_messages])
