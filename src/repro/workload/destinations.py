"""Destination-selection policies for generated messages.

Assumption 3 of the paper is uniform selection over all other nodes;
localized and hotspot policies are provided because §5.3 explicitly notes
that the linear-array (blocking) network "is not suited for random traffic
patterns, but for localized traffic patterns" — the localized policy lets
that remark be tested quantitatively (ablation ``traffic_locality``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..des.rng import DEFAULT_BLOCK_SIZE, VariateGenerator
from ..errors import ConfigurationError

__all__ = [
    "NodeAddress",
    "DestinationPolicy",
    "UniformDestinations",
    "LocalizedDestinations",
    "HotspotDestinations",
]

#: A node address is (cluster index, processor index within the cluster).
NodeAddress = Tuple[int, int]


class DestinationPolicy:
    """Base class for destination selection policies."""

    #: Every built-in policy draws random numbers to pick a destination.
    #: (Workload batching checks this flag to find a stream's consumers.)
    consumes_rng: bool = True

    def __init__(self, cluster_sizes: Sequence[int]) -> None:
        if not cluster_sizes or any(s < 1 for s in cluster_sizes):
            raise ConfigurationError(f"invalid cluster sizes {cluster_sizes!r}")
        self.cluster_sizes = tuple(int(s) for s in cluster_sizes)
        self.total_nodes = sum(self.cluster_sizes)
        if self.total_nodes < 2:
            raise ConfigurationError("destination selection needs at least two nodes")

    def choose(self, source: NodeAddress, rng: VariateGenerator) -> NodeAddress:
        """Pick a destination different from ``source``."""
        raise NotImplementedError

    def chooser(
        self, source: NodeAddress, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], NodeAddress]:
        """Return a zero-argument callable drawing successive destinations.

        The base implementation falls back to one :meth:`choose` call per
        invocation; policies whose draw pattern allows it (a single fixed
        draw family per stream) override this with a batched variant that
        reproduces the scalar sequence bit-for-bit.  A batched chooser
        reads ahead on ``rng``, so it must be the stream's only consumer.
        """
        return lambda: self.choose(source, rng)

    # -- helpers ---------------------------------------------------------------------

    @property
    def _address_table(self) -> List[NodeAddress]:
        """Flat index -> (cluster, processor) lookup table (built lazily)."""
        table = self.__dict__.get("_address_table_cache")
        if table is None:
            table = [self._unflatten(i) for i in range(self.total_nodes)]
            self.__dict__["_address_table_cache"] = table
        return table

    def _uniform_other_node(self, source: NodeAddress, rng: VariateGenerator) -> NodeAddress:
        """Uniform choice over all nodes except ``source`` (flat index trick)."""
        src_flat = self._flatten(source)
        pick = rng.integer(0, self.total_nodes - 2)
        if pick >= src_flat:
            pick += 1
        return self._unflatten(pick)

    def _uniform_in_cluster(self, source: NodeAddress, rng: VariateGenerator) -> NodeAddress:
        cluster, proc = source
        size = self.cluster_sizes[cluster]
        if size < 2:
            # No other local node exists; fall back to any other node.
            return self._uniform_other_node(source, rng)
        pick = rng.integer(0, size - 2)
        if pick >= proc:
            pick += 1
        return (cluster, pick)

    def _uniform_remote(self, source: NodeAddress, rng: VariateGenerator) -> NodeAddress:
        cluster, _ = source
        remote_total = self.total_nodes - self.cluster_sizes[cluster]
        if remote_total < 1:
            return self._uniform_in_cluster(source, rng)
        pick = rng.integer(0, remote_total - 1)
        for c, size in enumerate(self.cluster_sizes):
            if c == cluster:
                continue
            if pick < size:
                return (c, pick)
            pick -= size
        raise AssertionError("unreachable: remote pick out of range")  # pragma: no cover

    def _flatten(self, address: NodeAddress) -> int:
        cluster, proc = address
        if not 0 <= cluster < len(self.cluster_sizes):
            raise ConfigurationError(f"cluster index {cluster} out of range")
        if not 0 <= proc < self.cluster_sizes[cluster]:
            raise ConfigurationError(f"processor index {proc} out of range for cluster {cluster}")
        return sum(self.cluster_sizes[:cluster]) + proc

    def _unflatten(self, flat: int) -> NodeAddress:
        for cluster, size in enumerate(self.cluster_sizes):
            if flat < size:
                return (cluster, flat)
            flat -= size
        raise ConfigurationError(f"flat index {flat} out of range")


@dataclass(frozen=True)
class _PolicyConfig:
    """Internal bag of policy parameters (keeps subclasses hashable/printable)."""

    locality: float = 0.0
    hotspot_fraction: float = 0.0


class UniformDestinations(DestinationPolicy):
    """Assumption 3: uniform over all other nodes of the system."""

    def choose(self, source: NodeAddress, rng: VariateGenerator) -> NodeAddress:
        return self._uniform_other_node(source, rng)

    def chooser(
        self, source: NodeAddress, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], NodeAddress]:
        """Batched uniform chooser: one fixed-bounds integer draw per call.

        Draws the same ``integer(0, total_nodes - 2)`` sequence as
        :meth:`choose` (bit-identical) but in blocks, and resolves flat
        indices through a precomputed address table instead of a per-call
        scan over the cluster sizes.
        """
        src_flat = self._flatten(source)
        pick_stream = rng.integer_stream(0, self.total_nodes - 2, block_size)
        table = self._address_table

        def choose() -> NodeAddress:
            pick = pick_stream()
            if pick >= src_flat:
                pick += 1
            return table[pick]

        return choose


class LocalizedDestinations(DestinationPolicy):
    """With probability ``locality`` choose inside the source's cluster.

    ``locality = 1 − P`` of the paper recovers the uniform policy; larger
    values model applications with mostly nearest-neighbour communication.
    """

    def __init__(self, cluster_sizes: Sequence[int], locality: float) -> None:
        super().__init__(cluster_sizes)
        if not 0.0 <= locality <= 1.0:
            raise ConfigurationError(f"locality must lie in [0, 1], got {locality!r}")
        self.locality = float(locality)

    def choose(self, source: NodeAddress, rng: VariateGenerator) -> NodeAddress:
        if rng.bernoulli(self.locality):
            return self._uniform_in_cluster(source, rng)
        return self._uniform_remote(source, rng)


class HotspotDestinations(DestinationPolicy):
    """A fraction of messages target one hotspot node; the rest are uniform."""

    def __init__(
        self,
        cluster_sizes: Sequence[int],
        hotspot: NodeAddress,
        hotspot_fraction: float = 0.1,
    ) -> None:
        super().__init__(cluster_sizes)
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ConfigurationError(
                f"hotspot fraction must lie in [0, 1], got {hotspot_fraction!r}"
            )
        self._flatten(hotspot)  # validates the address
        self.hotspot = hotspot
        self.hotspot_fraction = float(hotspot_fraction)

    def choose(self, source: NodeAddress, rng: VariateGenerator) -> NodeAddress:
        if source != self.hotspot and rng.bernoulli(self.hotspot_fraction):
            return self.hotspot
        return self._uniform_other_node(source, rng)
