"""Workload generators: arrival processes, destination policies, message sizes, traces."""

from .arrivals import ArrivalProcess, DeterministicArrivals, MMPPArrivals, PoissonArrivals
from .destinations import (
    DestinationPolicy,
    HotspotDestinations,
    LocalizedDestinations,
    NodeAddress,
    UniformDestinations,
)
from .messages import (
    BimodalMessageSize,
    FixedMessageSize,
    MessageSizeModel,
    TraceEntry,
    UniformMessageSize,
    WorkloadTrace,
    generate_trace,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "MMPPArrivals",
    "DestinationPolicy",
    "UniformDestinations",
    "LocalizedDestinations",
    "HotspotDestinations",
    "NodeAddress",
    "MessageSizeModel",
    "FixedMessageSize",
    "BimodalMessageSize",
    "UniformMessageSize",
    "TraceEntry",
    "WorkloadTrace",
    "generate_trace",
]
