"""Workload generators: arrival processes, destination policies, message sizes, traces."""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    ErlangArrivals,
    HyperexponentialArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from .destinations import (
    DestinationPolicy,
    HotspotDestinations,
    LocalizedDestinations,
    NodeAddress,
    UniformDestinations,
)
from .messages import (
    BimodalMessageSize,
    FixedMessageSize,
    MessageSizeModel,
    TraceEntry,
    UniformMessageSize,
    WorkloadTrace,
    generate_trace,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "ErlangArrivals",
    "HyperexponentialArrivals",
    "MMPPArrivals",
    "DestinationPolicy",
    "UniformDestinations",
    "LocalizedDestinations",
    "HotspotDestinations",
    "NodeAddress",
    "MessageSizeModel",
    "FixedMessageSize",
    "BimodalMessageSize",
    "UniformMessageSize",
    "TraceEntry",
    "WorkloadTrace",
    "generate_trace",
]
