"""Arrival-process generators for the simulator's processors.

The paper's assumption 1 is a Poisson process per processor; the other
processes here (deterministic, bursty MMPP) exist for sensitivity studies of
that assumption.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..des.rng import DEFAULT_BLOCK_SIZE, VariateGenerator
from ..errors import ConfigurationError

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "ErlangArrivals",
    "HyperexponentialArrivals",
    "MMPPArrivals",
]


class ArrivalProcess:
    """Base class: an arrival process yields successive inter-arrival times."""

    #: Nominal mean rate (events per unit time) of the process.
    rate: float = 0.0

    #: Whether :meth:`interarrival` consumes random numbers.  Trace and
    #: simulator batching use this to decide when a shared stream has a
    #: single consumer (and batched lookahead is therefore bit-identical).
    consumes_rng: bool = True

    #: Whether the process is a *renewal* process: successive inter-arrival
    #: times are independent and identically distributed, with no hidden
    #: state carried between draws.  The vectorized closed-loop engine
    #: (:mod:`repro.simulation.vectorized_replay`) only accepts renewal
    #: arrivals — time-varying/state-dependent processes (e.g. MMPP) set
    #: this to ``False`` and refuse to vectorize.
    renewal: bool = True

    def interarrival(self, rng: VariateGenerator) -> float:
        """Draw the next inter-arrival time."""
        raise NotImplementedError

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        """Return a zero-argument callable drawing successive inter-arrivals.

        The base implementation falls back to :meth:`interarrival` per
        call; memoryless processes override it with a batched stream that
        reproduces the scalar draw sequence bit-for-bit.  A batched
        sampler reads ahead on ``rng`` and must be its only consumer.
        """
        return lambda: self.interarrival(rng)

    def mean_interarrival(self) -> float:
        """Mean inter-arrival time ``1/rate``."""
        if self.rate <= 0:
            raise ConfigurationError("arrival process has a non-positive rate")
        return 1.0 / self.rate


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Poisson process: exponential inter-arrival times (paper assumption 1)."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}")

    def interarrival(self, rng: VariateGenerator) -> float:
        return rng.exponential_rate(self.rate)

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        return rng.exponential_rate_stream(self.rate, block_size)


@dataclass
class DeterministicArrivals(ArrivalProcess):
    """Constant inter-arrival times (periodic sources)."""

    rate: float = 1.0
    consumes_rng = False

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}")

    def interarrival(self, rng: VariateGenerator) -> float:
        return 1.0 / self.rate

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        interval = 1.0 / self.rate
        return lambda: interval


@dataclass
class ErlangArrivals(ArrivalProcess):
    """Erlang-``shape`` inter-arrival times (smoother than Poisson, CV² = 1/k).

    An Erlang-k renewal process models sources that go through ``k``
    exponential stages between requests — burst-*free* traffic relative to
    the paper's Poisson assumption 1.  The overall mean inter-arrival time
    is ``1/rate`` regardless of ``shape``; ``shape=1`` recovers Poisson.
    """

    rate: float = 1.0
    shape: int = 4

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}")
        if self.shape < 1:
            raise ConfigurationError(f"shape must be a positive integer, got {self.shape!r}")

    def interarrival(self, rng: VariateGenerator) -> float:
        return rng.erlang(self.shape, 1.0 / self.rate)

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        return rng.erlang_stream(self.shape, 1.0 / self.rate, block_size)


@dataclass
class HyperexponentialArrivals(ArrivalProcess):
    """Two-phase hyperexponential inter-arrival times (bursty, CV² > 1).

    The classic balanced-means H2 fit: given the mean ``1/rate`` and a
    squared coefficient of variation ``cv2 >= 1``, phase 1 is chosen with
    probability ``p₁ = (1 + sqrt((cv2−1)/(cv2+1)))/2`` and each phase
    carries half the mean (``p₁·m₁ = p₂·m₂``).  ``cv2 = 1`` degenerates to
    Poisson; larger values produce increasingly bursty request trains while
    keeping the offered load identical.
    """

    rate: float = 1.0
    cv2: float = 4.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}")
        if self.cv2 < 1.0:
            raise ConfigurationError(
                f"a hyperexponential needs cv2 >= 1, got {self.cv2!r} "
                "(use ErlangArrivals for sub-exponential variability)"
            )
        # The mixture fit is fixed at construction; computing it here keeps
        # the sqrt/divisions out of the simulator's per-arrival hot path.
        p1 = 0.5 * (1.0 + math.sqrt((self.cv2 - 1.0) / (self.cv2 + 1.0)))
        p2 = 1.0 - p1
        mean = 1.0 / self.rate
        self._phases = ((mean / (2.0 * p1), mean / (2.0 * p2)), (p1, p2))

    @property
    def phases(self):
        """The fitted ``((mean1, mean2), (p1, p2))`` mixture parameters."""
        return self._phases

    def interarrival(self, rng: VariateGenerator) -> float:
        means, probs = self._phases
        return rng.hyperexponential(means, probs)


@dataclass
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *low* and a *high* rate state; state
    holding times are exponential.  Used only by extension studies: the
    paper's model assumes plain Poisson arrivals, and this class quantifies
    how sensitive the latency predictions are to burstiness.
    """

    low_rate: float = 0.5
    high_rate: float = 2.0
    mean_low_duration: float = 10.0
    mean_high_duration: float = 10.0
    #: The modulating Markov chain is state carried between draws, so the
    #: process is not a renewal process (and cannot be vectorized).
    renewal = False

    def __post_init__(self) -> None:
        if self.low_rate <= 0 or self.high_rate <= 0:
            raise ConfigurationError("both state rates must be positive")
        if self.mean_low_duration <= 0 or self.mean_high_duration <= 0:
            raise ConfigurationError("state durations must be positive")
        self._in_high = False
        self._state_left = 0.0
        # Long-run average rate (time-weighted over the two states).
        total = self.mean_low_duration + self.mean_high_duration
        self.rate = (
            self.low_rate * self.mean_low_duration + self.high_rate * self.mean_high_duration
        ) / total

    def interarrival(self, rng: VariateGenerator) -> float:
        # Advance through (possibly several) state changes until an arrival
        # falls inside the current state's remaining holding time.
        elapsed = 0.0
        for _ in range(10_000):
            current_rate = self.high_rate if self._in_high else self.low_rate
            if self._state_left <= 0.0:
                mean_dur = self.mean_high_duration if self._in_high else self.mean_low_duration
                self._state_left = rng.exponential(mean_dur)
            candidate = rng.exponential_rate(current_rate)
            if candidate <= self._state_left:
                self._state_left -= candidate
                return elapsed + candidate
            elapsed += self._state_left
            self._state_left = 0.0
            self._in_high = not self._in_high
        raise ConfigurationError("MMPP failed to produce an arrival (rates too small?)")
