"""Arrival-process generators for the simulator's processors.

The paper's assumption 1 is a Poisson process per processor; the other
processes here (deterministic, bursty MMPP) exist for sensitivity studies of
that assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from ..des.rng import DEFAULT_BLOCK_SIZE, VariateGenerator
from ..errors import ConfigurationError

__all__ = ["ArrivalProcess", "PoissonArrivals", "DeterministicArrivals", "MMPPArrivals"]


class ArrivalProcess:
    """Base class: an arrival process yields successive inter-arrival times."""

    #: Nominal mean rate (events per unit time) of the process.
    rate: float = 0.0

    def interarrival(self, rng: VariateGenerator) -> float:
        """Draw the next inter-arrival time."""
        raise NotImplementedError

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        """Return a zero-argument callable drawing successive inter-arrivals.

        The base implementation falls back to :meth:`interarrival` per
        call; memoryless processes override it with a batched stream that
        reproduces the scalar draw sequence bit-for-bit.  A batched
        sampler reads ahead on ``rng`` and must be its only consumer.
        """
        return lambda: self.interarrival(rng)

    def mean_interarrival(self) -> float:
        """Mean inter-arrival time ``1/rate``."""
        if self.rate <= 0:
            raise ConfigurationError("arrival process has a non-positive rate")
        return 1.0 / self.rate


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Poisson process: exponential inter-arrival times (paper assumption 1)."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}")

    def interarrival(self, rng: VariateGenerator) -> float:
        return rng.exponential_rate(self.rate)

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        return rng.exponential_rate_stream(self.rate, block_size)


@dataclass
class DeterministicArrivals(ArrivalProcess):
    """Constant inter-arrival times (periodic sources)."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate!r}")

    def interarrival(self, rng: VariateGenerator) -> float:
        return 1.0 / self.rate

    def sampler(
        self, rng: VariateGenerator, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> Callable[[], float]:
        interval = 1.0 / self.rate
        return lambda: interval


@dataclass
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *low* and a *high* rate state; state
    holding times are exponential.  Used only by extension studies: the
    paper's model assumes plain Poisson arrivals, and this class quantifies
    how sensitive the latency predictions are to burstiness.
    """

    low_rate: float = 0.5
    high_rate: float = 2.0
    mean_low_duration: float = 10.0
    mean_high_duration: float = 10.0

    def __post_init__(self) -> None:
        if self.low_rate <= 0 or self.high_rate <= 0:
            raise ConfigurationError("both state rates must be positive")
        if self.mean_low_duration <= 0 or self.mean_high_duration <= 0:
            raise ConfigurationError("state durations must be positive")
        self._in_high = False
        self._state_left = 0.0
        # Long-run average rate (time-weighted over the two states).
        total = self.mean_low_duration + self.mean_high_duration
        self.rate = (
            self.low_rate * self.mean_low_duration + self.high_rate * self.mean_high_duration
        ) / total

    def interarrival(self, rng: VariateGenerator) -> float:
        # Advance through (possibly several) state changes until an arrival
        # falls inside the current state's remaining holding time.
        elapsed = 0.0
        for _ in range(10_000):
            current_rate = self.high_rate if self._in_high else self.low_rate
            if self._state_left <= 0.0:
                mean_dur = self.mean_high_duration if self._in_high else self.mean_low_duration
                self._state_left = rng.exponential(mean_dur)
            candidate = rng.exponential_rate(current_rate)
            if candidate <= self._state_left:
                self._state_left -= candidate
                return elapsed + candidate
            elapsed += self._state_left
            self._state_left = 0.0
            self._in_high = not self._in_high
        raise ConfigurationError("MMPP failed to produce an arrival (rates too small?)")
