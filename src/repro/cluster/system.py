"""The Heterogeneous Multi-Stage Clustered Structure (HMSCS) system model.

Figure 1 of the paper: ``C`` clusters, each with its own ICN1 and ECN1, all
joined by a second-level ICN2.  Two families are distinguished (paper §3):

* **Super-Cluster** — homogeneous processors, equal cluster sizes,
  heterogeneity only in the networks (e.g. DAS-2).  This is the family the
  paper's analysis (§4) and evaluation (§6) use.
* **Cluster-of-Clusters** — clusters may differ in size, processor type and
  network technology (e.g. the LLNL MCR/ALC/Thunder/PVC conglomerate).  The
  analytical extension in :mod:`repro.core.cluster_of_clusters` handles this
  family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..network.switch import PAPER_SWITCH, SwitchFabric
from ..network.technologies import NetworkTechnology
from .cluster import ClusterSpec
from .processor import DEFAULT_PROCESSOR, ProcessorType

__all__ = ["MultiClusterSystem"]


@dataclass(frozen=True)
class MultiClusterSystem:
    """A complete HMSCS description.

    Parameters
    ----------
    clusters:
        Per-cluster specifications (at least one).
    icn2_technology:
        Technology of the second-level inter-cluster network (ICN2).
    switch:
        Switch fabric building block used by every network in the system
        (the paper uses a single 24-port, 10 µs switch everywhere).
    name:
        Optional system name for reports.
    """

    clusters: Tuple[ClusterSpec, ...]
    icn2_technology: NetworkTechnology
    switch: SwitchFabric = field(default=PAPER_SWITCH)
    name: str = "hmscs"

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ConfigurationError("a multi-cluster system needs at least one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"cluster names must be unique, got {names!r}")
        object.__setattr__(self, "clusters", tuple(self.clusters))

    # -- structural properties -----------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Number of clusters ``C``."""
        return len(self.clusters)

    @property
    def total_processors(self) -> int:
        """Total number of processors ``N = Σ N_i``."""
        return sum(c.num_processors for c in self.clusters)

    @property
    def processors_per_cluster(self) -> int:
        """Common cluster size ``N0`` (only valid for equal-size systems)."""
        sizes = {c.num_processors for c in self.clusters}
        if len(sizes) != 1:
            raise ConfigurationError(
                "processors_per_cluster is undefined for unequal cluster sizes; "
                "use cluster.num_processors per cluster instead"
            )
        return self.clusters[0].num_processors

    @property
    def has_equal_cluster_sizes(self) -> bool:
        """Whether all clusters have the same number of processors (assumption 5)."""
        return len({c.num_processors for c in self.clusters}) == 1

    @property
    def has_homogeneous_processors(self) -> bool:
        """Whether all clusters use the same processor type (assumption 5)."""
        return len({c.processor_type for c in self.clusters}) == 1

    @property
    def is_super_cluster(self) -> bool:
        """Super-Cluster family: homogeneous processors and equal sizes."""
        return self.has_equal_cluster_sizes and self.has_homogeneous_processors

    @property
    def is_cluster_of_clusters(self) -> bool:
        """Cluster-of-Clusters family: anything that is not a Super-Cluster."""
        return not self.is_super_cluster

    @property
    def network_technologies(self) -> List[NetworkTechnology]:
        """All distinct technologies used anywhere in the system."""
        techs = {self.icn2_technology}
        for c in self.clusters:
            techs.add(c.icn_technology)
            techs.add(c.ecn_technology)
        return sorted(techs, key=lambda t: t.name)

    @property
    def is_network_heterogeneous(self) -> bool:
        """Whether more than one network technology appears in the system."""
        return len(self.network_technologies) > 1

    # -- validation against the paper's analysis assumptions --------------------------

    def validate_super_cluster_assumptions(self) -> None:
        """Raise if the system violates the assumptions of the paper's §4 analysis.

        Assumption 5 requires equal cluster sizes and a homogeneous processor
        type; the analysis also needs all clusters to share ICN and ECN
        technologies so that the per-cluster service centres are identical.
        """
        if not self.has_equal_cluster_sizes:
            raise ConfigurationError(
                "super-cluster analysis requires equal cluster sizes (assumption 5)"
            )
        if not self.has_homogeneous_processors:
            raise ConfigurationError(
                "super-cluster analysis requires a homogeneous processor type (assumption 5)"
            )
        if len({c.icn_technology for c in self.clusters}) != 1:
            raise ConfigurationError(
                "super-cluster analysis requires every cluster to use the same ICN technology"
            )
        if len({c.ecn_technology for c in self.clusters}) != 1:
            raise ConfigurationError(
                "super-cluster analysis requires every cluster to use the same ECN technology"
            )

    # -- builders ---------------------------------------------------------------------

    @classmethod
    def super_cluster(
        cls,
        num_clusters: int,
        processors_per_cluster: int,
        icn_technology: NetworkTechnology,
        ecn_technology: NetworkTechnology,
        icn2_technology: Optional[NetworkTechnology] = None,
        switch: SwitchFabric = PAPER_SWITCH,
        processor_type: ProcessorType = DEFAULT_PROCESSOR,
        name: str = "super-cluster",
    ) -> "MultiClusterSystem":
        """Build a Super-Cluster system (the paper's evaluation platform).

        ``icn2_technology`` defaults to ``ecn_technology``, matching Table 1
        where ECN1 and ICN2 always share a technology.
        """
        if num_clusters < 1:
            raise ConfigurationError(f"num_clusters must be >= 1, got {num_clusters!r}")
        if processors_per_cluster < 1:
            raise ConfigurationError(
                f"processors_per_cluster must be >= 1, got {processors_per_cluster!r}"
            )
        clusters = tuple(
            ClusterSpec(
                name=f"cluster-{i}",
                num_processors=processors_per_cluster,
                icn_technology=icn_technology,
                ecn_technology=ecn_technology,
                processor_type=processor_type,
            )
            for i in range(num_clusters)
        )
        return cls(
            clusters=clusters,
            icn2_technology=icn2_technology if icn2_technology is not None else ecn_technology,
            switch=switch,
            name=name,
        )

    @classmethod
    def from_cluster_sizes(
        cls,
        sizes: Sequence[int],
        icn_technologies: Sequence[NetworkTechnology],
        ecn_technologies: Sequence[NetworkTechnology],
        icn2_technology: NetworkTechnology,
        switch: SwitchFabric = PAPER_SWITCH,
        processor_types: Optional[Sequence[ProcessorType]] = None,
        name: str = "cluster-of-clusters",
    ) -> "MultiClusterSystem":
        """Build a (possibly heterogeneous) Cluster-of-Clusters system."""
        if not sizes:
            raise ConfigurationError("need at least one cluster size")
        if not (len(sizes) == len(icn_technologies) == len(ecn_technologies)):
            raise ConfigurationError("sizes and technology lists must have equal length")
        if processor_types is not None and len(processor_types) != len(sizes):
            raise ConfigurationError("processor_types must match the number of clusters")
        clusters = tuple(
            ClusterSpec(
                name=f"cluster-{i}",
                num_processors=int(size),
                icn_technology=icn_technologies[i],
                ecn_technology=ecn_technologies[i],
                processor_type=(
                    processor_types[i] if processor_types is not None else DEFAULT_PROCESSOR
                ),
            )
            for i, size in enumerate(sizes)
        )
        return cls(clusters=clusters, icn2_technology=icn2_technology, switch=switch, name=name)

    def rescaled(self, num_clusters: int) -> "MultiClusterSystem":
        """Redistribute the same total processor count over ``num_clusters`` clusters.

        Used by the figure sweeps: the paper keeps N = 256 fixed and varies
        C over {1, 2, ..., 256}; ``num_clusters`` must divide the total.
        """
        total = self.total_processors
        if num_clusters < 1:
            raise ConfigurationError(f"num_clusters must be >= 1, got {num_clusters!r}")
        if total % num_clusters != 0:
            raise ConfigurationError(
                f"cannot split {total} processors evenly over {num_clusters} clusters"
            )
        self.validate_super_cluster_assumptions()
        template = self.clusters[0]
        return MultiClusterSystem.super_cluster(
            num_clusters=num_clusters,
            processors_per_cluster=total // num_clusters,
            icn_technology=template.icn_technology,
            ecn_technology=template.ecn_technology,
            icn2_technology=self.icn2_technology,
            switch=self.switch,
            processor_type=template.processor_type,
            name=self.name,
        )

    def describe(self) -> str:
        """Multi-line human-readable description."""
        lines = [
            f"System {self.name!r}: {self.num_clusters} clusters, "
            f"{self.total_processors} processors total",
            f"  ICN2: {self.icn2_technology}",
            f"  Switch: {self.switch}",
        ]
        for c in self.clusters:
            lines.append(f"  - {c}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"{self.name} (C={self.num_clusters}, N={self.total_processors}, "
            f"ICN2={self.icn2_technology.name})"
        )
