"""Processor (compute node) descriptions.

The paper's model is communication-bound: processors only matter as request
*sources* with a type label (assumption 5 requires a homogeneous type for
the Super-Cluster analysis).  The type carries an optional relative speed so
extension studies can weight per-cluster generation rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ProcessorType", "DEFAULT_PROCESSOR"]


@dataclass(frozen=True)
class ProcessorType:
    """A processor family used in a cluster.

    Parameters
    ----------
    name:
        Family name (e.g. ``"xeon-2.4"``, ``"itanium2"``).
    relative_speed:
        Speed relative to a reference processor; scales the per-processor
        message generation rate in heterogeneous extension studies (a faster
        processor issues requests proportionally faster).  The paper's
        evaluation uses 1.0 everywhere.
    """

    name: str
    relative_speed: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("processor type name must be non-empty")
        if self.relative_speed <= 0:
            raise ConfigurationError(
                f"relative speed must be positive, got {self.relative_speed!r}"
            )

    def scaled_rate(self, base_rate: float) -> float:
        """Message generation rate of this processor given a reference rate."""
        if base_rate < 0:
            raise ConfigurationError(f"base rate must be non-negative, got {base_rate!r}")
        return base_rate * self.relative_speed

    def __str__(self) -> str:
        return f"{self.name} (x{self.relative_speed:g})"


#: Homogeneous reference processor used by the paper's evaluation.
DEFAULT_PROCESSOR = ProcessorType(name="reference", relative_speed=1.0)
