"""Single-cluster description within an HMSCS system.

Each cluster *i* of the Heterogeneous Multi-Stage Clustered Structure owns

* ``N_i`` processors of type ``T_i``,
* an Intra-Communication Network (ICN1_i) for processor-to-processor
  traffic inside the cluster, and
* an intEr-Communication Network (ECN1_i) that connects the cluster's
  processors directly (without going through the ICN1) to the second-level
  ICN2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..network.technologies import NetworkTechnology
from .processor import DEFAULT_PROCESSOR, ProcessorType

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """Specification of one cluster of the multi-cluster system.

    Parameters
    ----------
    name:
        Unique cluster identifier.
    num_processors:
        Number of processors ``N_i`` (>= 1).
    icn_technology:
        Technology of the Intra-Communication Network (ICN1_i).
    ecn_technology:
        Technology of the intEr-Communication Network (ECN1_i).
    processor_type:
        Processor family ``T_i`` (default: the homogeneous reference type).
    """

    name: str
    num_processors: int
    icn_technology: NetworkTechnology
    ecn_technology: NetworkTechnology
    processor_type: ProcessorType = field(default=DEFAULT_PROCESSOR)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("cluster name must be non-empty")
        if self.num_processors < 1:
            raise ConfigurationError(
                f"cluster {self.name!r} must have at least one processor, "
                f"got {self.num_processors!r}"
            )

    # -- convenience -------------------------------------------------------------

    def with_processors(self, num_processors: int) -> "ClusterSpec":
        """Return a copy with a different processor count."""
        return ClusterSpec(
            name=self.name,
            num_processors=num_processors,
            icn_technology=self.icn_technology,
            ecn_technology=self.ecn_technology,
            processor_type=self.processor_type,
        )

    def with_technologies(
        self,
        icn_technology: NetworkTechnology,
        ecn_technology: NetworkTechnology,
    ) -> "ClusterSpec":
        """Return a copy with different ICN/ECN technologies."""
        return ClusterSpec(
            name=self.name,
            num_processors=self.num_processors,
            icn_technology=icn_technology,
            ecn_technology=ecn_technology,
            processor_type=self.processor_type,
        )

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_processors} x {self.processor_type.name}, "
            f"ICN={self.icn_technology.name}, ECN={self.ecn_technology.name}"
        )
