"""Preset system configurations.

The paper motivates the HMSCS structure with two real deployments:

* **DAS-2** (Dutch Advanced School for Computing and Imaging) — a
  Super-Cluster of five clusters of identical dual-Pentium nodes joined by
  wide-area links (homogeneous processors, heterogeneous networks).
* **LLNL's multi-cluster** — MCR, ALC, Thunder and PVC interconnected; the
  clusters differ in size and processor generation (Cluster-of-Clusters).

These presets are *representative shapes*, not exact machine inventories:
they exist so examples and extension studies have realistic heterogeneous
configurations to exercise; the paper's own figures use the synthetic
256-node platform built by :func:`paper_evaluation_system`.
"""

from __future__ import annotations

from ..network.switch import PAPER_SWITCH, SwitchFabric
from ..network.technologies import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    MYRINET,
    NetworkTechnology,
)
from .cluster import ClusterSpec
from .processor import ProcessorType
from .system import MultiClusterSystem

__all__ = ["das2_like_system", "llnl_like_system", "paper_evaluation_system"]


def paper_evaluation_system(
    num_clusters: int,
    icn_technology: NetworkTechnology,
    ecn_technology: NetworkTechnology,
    total_processors: int = 256,
    switch: SwitchFabric = PAPER_SWITCH,
) -> MultiClusterSystem:
    """The synthetic 256-node Super-Cluster used by Figures 4–7.

    ``num_clusters`` must divide ``total_processors`` (the paper sweeps
    C over powers of two from 1 to 256 with N = 256).
    """
    if total_processors % num_clusters != 0:
        raise ValueError(
            f"num_clusters={num_clusters} must divide total_processors={total_processors}"
        )
    return MultiClusterSystem.super_cluster(
        num_clusters=num_clusters,
        processors_per_cluster=total_processors // num_clusters,
        icn_technology=icn_technology,
        ecn_technology=ecn_technology,
        icn2_technology=ecn_technology,
        switch=switch,
        name=f"paper-N{total_processors}-C{num_clusters}",
    )


def das2_like_system(switch: SwitchFabric = PAPER_SWITCH) -> MultiClusterSystem:
    """A DAS-2-like Super-Cluster: 5 equal clusters, fast local / slow wide-area nets."""
    return MultiClusterSystem.super_cluster(
        num_clusters=5,
        processors_per_cluster=64,
        icn_technology=MYRINET,
        ecn_technology=FAST_ETHERNET,
        icn2_technology=FAST_ETHERNET,
        switch=switch,
        processor_type=ProcessorType("dual-pentium-iii", 1.0),
        name="das2-like",
    )


def llnl_like_system(switch: SwitchFabric = PAPER_SWITCH) -> MultiClusterSystem:
    """An LLNL-like Cluster-of-Clusters: four clusters of different size and speed."""
    mcr = ClusterSpec(
        name="mcr",
        num_processors=128,
        icn_technology=GIGABIT_ETHERNET,
        ecn_technology=GIGABIT_ETHERNET,
        processor_type=ProcessorType("xeon-2.4", 1.0),
    )
    alc = ClusterSpec(
        name="alc",
        num_processors=96,
        icn_technology=GIGABIT_ETHERNET,
        ecn_technology=FAST_ETHERNET,
        processor_type=ProcessorType("xeon-2.4", 1.0),
    )
    thunder = ClusterSpec(
        name="thunder",
        num_processors=64,
        icn_technology=MYRINET,
        ecn_technology=GIGABIT_ETHERNET,
        processor_type=ProcessorType("itanium2", 1.4),
    )
    pvc = ClusterSpec(
        name="pvc",
        num_processors=16,
        icn_technology=FAST_ETHERNET,
        ecn_technology=FAST_ETHERNET,
        processor_type=ProcessorType("pentium4-viz", 0.8),
    )
    return MultiClusterSystem(
        clusters=(mcr, alc, thunder, pvc),
        icn2_technology=GIGABIT_ETHERNET,
        switch=switch,
        name="llnl-like",
    )
