"""Multi-cluster system model (HMSCS): processors, clusters, systems and presets."""

from .cluster import ClusterSpec
from .presets import das2_like_system, llnl_like_system, paper_evaluation_system
from .processor import DEFAULT_PROCESSOR, ProcessorType
from .system import MultiClusterSystem

__all__ = [
    "ProcessorType",
    "DEFAULT_PROCESSOR",
    "ClusterSpec",
    "MultiClusterSystem",
    "paper_evaluation_system",
    "das2_like_system",
    "llnl_like_system",
]
