"""Automatic generation of the paper-vs-measured reproduction report.

``EXPERIMENTS.md`` in the repository root is the curated record; this module
regenerates the same content programmatically so the report can be refreshed
after any model change::

    python -m repro report --output experiments_report.md

The generated report contains, per figure: the reproduced analysis series,
optional simulation series, the analysis-vs-simulation accuracy summary and
the qualitative-shape checks (growth with C, the C = 16 dip, message-size
ordering), plus the blocking-ratio study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from ..parallel import Backend, SweepEngine, SweepJournal, resolve_engine
from ..viz.tables import format_markdown_table
from .blocking_ratio import BlockingRatioStudy, run_blocking_ratio_study
from .figures import FIGURE_SPECS, FigureResult, run_figure
from .scenarios import PAPER_PARAMETERS, PaperParameters

__all__ = ["ShapeChecks", "ReproductionReport", "generate_report"]


@dataclass(frozen=True)
class ShapeChecks:
    """Qualitative checks of one reproduced figure against the paper's claims."""

    grows_with_cluster_count: bool
    dip_at_c16: bool
    larger_messages_slower: bool

    def as_dict(self) -> Dict[str, bool]:
        """Dictionary form for table rendering."""
        return {
            "latency grows with C": self.grows_with_cluster_count,
            "dip at C=16": self.dip_at_c16,
            "M=1024 above M=512": self.larger_messages_slower,
        }

    @property
    def all_pass(self) -> bool:
        """Whether every shape check holds."""
        return all(self.as_dict().values())


def _shape_checks(result: FigureResult) -> ShapeChecks:
    counts = result.cluster_counts
    sizes = result.message_sizes

    def series(size: int) -> List[float]:
        return [p.analysis_latency_ms for p in result.points_for_size(size)]

    grows = all(series(size)[-1] > series(size)[0] for size in sizes) if counts else False

    dip = True
    if {8, 16, 32} <= set(counts):
        for size in sizes:
            by_count = dict(zip(counts, series(size)))
            dip = dip and by_count[16] < by_count[8] and by_count[16] < by_count[32]
    else:
        dip = False

    ordering = True
    if len(sizes) >= 2:
        low, high = min(sizes), max(sizes)
        low_series = series(low)
        high_series = series(high)
        ordering = all(h > l for h, l in zip(high_series, low_series))
    return ShapeChecks(grows, dip, ordering)


@dataclass
class ReproductionReport:
    """All regenerated artefacts plus Markdown rendering."""

    figures: Dict[int, FigureResult]
    ratio_study: BlockingRatioStudy
    parameters: PaperParameters

    def shape_checks(self, number: int) -> ShapeChecks:
        """Qualitative shape checks for one figure."""
        return _shape_checks(self.figures[number])

    def to_markdown(self) -> str:
        """Render the full report as Markdown."""
        lines: List[str] = [
            "# Reproduction report (auto-generated)",
            "",
            "Regenerated with `repro.experiments.report.generate_report`.",
            "",
            "## Parameters",
            "",
            f"* total processors: {self.parameters.total_processors}",
            f"* cluster counts: {list(self.parameters.cluster_counts)}",
            f"* message sizes: {list(self.parameters.message_sizes)} bytes",
            f"* generation rate: {self.parameters.generation_rate} msg/s",
            f"* switch: {self.parameters.switch}",
            "",
        ]
        for number in sorted(self.figures):
            result = self.figures[number]
            checks = self.shape_checks(number)
            lines.append(f"## Figure {number}: {result.spec.description}")
            lines.append("")
            lines.append(result.to_markdown())
            lines.append("")
            check_rows = [
                {"check": name, "holds": "yes" if ok else "NO"}
                for name, ok in checks.as_dict().items()
            ]
            lines.append(format_markdown_table(check_rows))
            summary = result.accuracy_summary()
            if summary is not None:
                lines.append("")
                lines.append(f"Analysis vs simulation: {summary}")
            lines.append("")
        lines.append("## Blocking vs non-blocking ratio (paper §6: 1.4 - 3.1x)")
        lines.append("")
        lines.append(
            f"Observed band: {self.ratio_study.min_ratio:.2f} - "
            f"{self.ratio_study.max_ratio:.2f} (mean {self.ratio_study.mean_ratio:.2f}); "
            f"blocking slower at every point: "
            f"{'yes' if self.ratio_study.blocking_always_slower() else 'NO'}."
        )
        lines.append("")
        return "\n".join(lines)

    def write(self, path: str) -> None:
        """Write the Markdown report to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_markdown())


def generate_report(
    include_simulation: bool = False,
    cluster_counts: Optional[Sequence[int]] = None,
    simulation_messages: int = 2_000,
    figures: Optional[Sequence[int]] = None,
    parameters: PaperParameters = PAPER_PARAMETERS,
    seed: int = 0,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
    stats_mode: str = "array",
    cache: Optional[Any] = None,
) -> ReproductionReport:
    """Regenerate every figure (and the ratio study) and bundle them.

    ``include_simulation=False`` (the default) produces an analysis-only
    report in a few hundred milliseconds; with simulation enabled expect a
    few minutes at the default message count (``jobs>1`` — or an explicit
    ``engine``/``backend`` such as the socket or SSH work queue — fans each
    figure's simulations out across workers without changing the numbers).
    ``checkpoint`` journals every figure's completed simulations (the
    campaign's runs are matched by order on resume), so an interrupted
    report picks up where it was killed.  ``cache`` (a
    :class:`~repro.cache.ResultCache` or directory path) memoises each
    figure by content address, so a repeated report is served from disk.
    """
    from ..cache.store import coerce_cache

    cache = coerce_cache(cache)
    engine = resolve_engine(jobs, engine, backend, checkpoint=checkpoint)
    numbers = list(figures) if figures is not None else sorted(FIGURE_SPECS)
    results = {
        number: run_figure(
            number,
            include_simulation=include_simulation,
            cluster_counts=cluster_counts,
            simulation_messages=simulation_messages,
            parameters=parameters,
            # Per-figure master seeds; each is SeedSequence-hashed downstream
            # and the golden report fixtures pin these exact values.
            seed=seed + number,  # repro: noqa REP103
            engine=engine,
            stats_mode=stats_mode,
            cache=cache,
        )
        for number in numbers
    }
    ratio = run_blocking_ratio_study(
        cluster_counts=cluster_counts, parameters=parameters, engine=engine
    )
    return ReproductionReport(figures=results, ratio_study=ratio, parameters=parameters)
