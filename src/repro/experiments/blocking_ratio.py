"""The §6 blocking-vs-non-blocking latency ratio study.

The paper's §6 states that, comparing the blocking-network results with the
non-blocking ones, "the average message latency of blocking network is
larger, something between 1.4 to 3.1 times".  This module computes the same
ratio — blocking latency divided by non-blocking latency at identical
(scenario, message size, cluster count) points — so the claim can be
checked quantitatively; the observed band is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.model import AnalyticalModel, ModelConfig
from ..core.vectorized import evaluate_latency_grid
from ..parallel import Backend, SweepEngine, SweepJournal
from ..viz.tables import format_markdown_table
from .scenarios import (
    CASE_1,
    CASE_2,
    NetworkScenario,
    PAPER_PARAMETERS,
    PaperParameters,
    build_scenario_system,
)

__all__ = ["RatioPoint", "BlockingRatioStudy", "run_blocking_ratio_study"]

#: The band the paper reports in §6.
PAPER_RATIO_BAND = (1.4, 3.1)


@dataclass(frozen=True)
class RatioPoint:
    """Blocking/non-blocking latency ratio at one configuration point."""

    scenario: str
    num_clusters: int
    message_bytes: int
    nonblocking_latency_ms: float
    blocking_latency_ms: float

    @property
    def ratio(self) -> float:
        """``blocking / non-blocking`` mean latency."""
        return self.blocking_latency_ms / self.nonblocking_latency_ms

    def as_dict(self) -> Dict[str, object]:
        """Flat row for tables."""
        return {
            "scenario": self.scenario,
            "clusters": self.num_clusters,
            "message_bytes": self.message_bytes,
            "nonblocking_ms": self.nonblocking_latency_ms,
            "blocking_ms": self.blocking_latency_ms,
            "ratio": self.ratio,
        }


@dataclass
class BlockingRatioStudy:
    """All ratio points plus the aggregate band."""

    points: List[RatioPoint]

    @property
    def min_ratio(self) -> float:
        """Smallest ratio over all points."""
        return min(p.ratio for p in self.points)

    @property
    def max_ratio(self) -> float:
        """Largest ratio over all points."""
        return max(p.ratio for p in self.points)

    @property
    def mean_ratio(self) -> float:
        """Average ratio over all points."""
        return sum(p.ratio for p in self.points) / len(self.points)

    @property
    def paper_band(self) -> tuple:
        """The 1.4–3.1 band stated in the paper."""
        return PAPER_RATIO_BAND

    def blocking_always_slower(self) -> bool:
        """Whether the blocking architecture is slower at every point."""
        return all(p.ratio > 1.0 for p in self.points)

    def to_rows(self) -> List[Dict[str, object]]:
        """Rows (one per point) for the table formatters."""
        return [p.as_dict() for p in self.points]

    def to_markdown(self) -> str:
        """The study as a Markdown table plus a summary line."""
        table = format_markdown_table(self.to_rows())
        summary = (
            f"\n\nObserved ratio band: {self.min_ratio:.2f} - {self.max_ratio:.2f} "
            f"(mean {self.mean_ratio:.2f}); paper reports "
            f"{PAPER_RATIO_BAND[0]} - {PAPER_RATIO_BAND[1]}."
        )
        return table + summary


def _ratio_point(
    scenario: NetworkScenario,
    num_clusters: int,
    message_bytes: int,
    parameters: PaperParameters,
) -> RatioPoint:
    """Evaluate both architectures at one point (picklable sweep task)."""
    system = build_scenario_system(scenario, num_clusters, parameters)
    latencies = {}
    for architecture in ("non-blocking", "blocking"):
        latencies[architecture] = AnalyticalModel(
            system,
            ModelConfig(
                architecture=architecture,
                message_bytes=float(message_bytes),
                generation_rate=parameters.generation_rate,
            ),
        ).evaluate().mean_latency_ms
    return RatioPoint(
        scenario=scenario.name,
        num_clusters=num_clusters,
        message_bytes=int(message_bytes),
        nonblocking_latency_ms=latencies["non-blocking"],
        blocking_latency_ms=latencies["blocking"],
    )


def run_blocking_ratio_study(
    scenarios: Optional[Sequence[NetworkScenario]] = None,
    cluster_counts: Optional[Sequence[int]] = None,
    message_sizes: Optional[Sequence[int]] = None,
    parameters: PaperParameters = PAPER_PARAMETERS,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> BlockingRatioStudy:
    """Compute the blocking/non-blocking ratio over the paper's sweep grid.

    The study is closed-form: both architectures of every grid point are
    evaluated in a single vectorized
    :func:`~repro.core.vectorized.evaluate_latency_grid` sweep, which is
    bit-identical to the historical per-point
    :class:`~repro.core.model.AnalyticalModel` tasks on every execution
    backend (and ~two orders of magnitude faster at paper scale).  The
    ``jobs``/``engine``/``backend``/``checkpoint`` parameters are accepted
    for interface compatibility with the simulating drivers; a closed-form
    grid has no sweep tasks to distribute or journal, so they do not affect
    the computation.
    """
    cases = list(scenarios) if scenarios is not None else [CASE_1, CASE_2]
    counts = list(cluster_counts) if cluster_counts is not None else list(parameters.cluster_counts)
    sizes = list(message_sizes) if message_sizes is not None else list(parameters.message_sizes)

    # One (system, config) pair per (point, architecture), both
    # architectures adjacent so the ratio folds straight out of the grid.
    evaluations: List[Tuple[object, ModelConfig]] = []
    meta: List[Tuple[str, int, int]] = []
    for scenario in cases:
        systems = {nc: build_scenario_system(scenario, nc, parameters) for nc in counts}
        for message_bytes in sizes:
            for num_clusters in counts:
                meta.append((scenario.name, num_clusters, int(message_bytes)))
                for architecture in ("non-blocking", "blocking"):
                    evaluations.append(
                        (
                            systems[num_clusters],
                            ModelConfig(
                                architecture=architecture,
                                message_bytes=float(message_bytes),
                                generation_rate=parameters.generation_rate,
                            ),
                        )
                    )
    grid = evaluate_latency_grid(evaluations)
    points = [
        RatioPoint(
            scenario=name,
            num_clusters=num_clusters,
            message_bytes=message_bytes,
            nonblocking_latency_ms=float(grid.mean_latency_ms[2 * i]),
            blocking_latency_ms=float(grid.mean_latency_ms[2 * i + 1]),
        )
        for i, (name, num_clusters, message_bytes) in enumerate(meta)
    ]
    return BlockingRatioStudy(points=points)
