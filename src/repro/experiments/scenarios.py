"""The paper's evaluation scenarios and parameters, plus the open scenario registry.

Table 1 defines two network-heterogeneity cases for the Super-Cluster
platform:

========  ==================  ==================
Case      ICN1                ECN1 and ICN2
========  ==================  ==================
Case 1    Gigabit Ethernet    Fast Ethernet
Case 2    Fast Ethernet       Gigabit Ethernet
========  ==================  ==================

Table 2 fixes the model parameters: GE 80 µs / 94 MB/s, FE 50 µs /
10.5 MB/s, 24-port switches with 10 µs latency, and a message generation
rate of 0.25 msg/s.  The evaluation platform has N = 256 nodes and sweeps
the number of clusters over the powers of two from 1 to 256 with message
sizes of 512 and 1024 bytes.

Beyond the two paper cases, this module keeps the **open scenario
registry**: every :class:`Scenario` bundles a system builder with the
workload (destination policy, arrival process) and the sensible defaults
needed to run it end to end through the declarative pipeline
(:mod:`repro.experiments.pipeline`) and the ``repro run`` /
``repro scenarios`` CLI verbs.  New studies register a scenario here
instead of adding another bespoke experiment driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.presets import das2_like_system, llnl_like_system, paper_evaluation_system
from ..cluster.system import MultiClusterSystem
from ..errors import ExperimentError
from ..network.heterogeneous import HeterogeneousLinkMatrix
from ..network.switch import PAPER_SWITCH, SwitchFabric
from ..network.technologies import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    MYRINET,
    NetworkTechnology,
)
from ..simulation.faults import FaultSpec
from ..workload.arrivals import ArrivalProcess, ErlangArrivals, HyperexponentialArrivals
from ..workload.destinations import (
    DestinationPolicy,
    HotspotDestinations,
    LocalizedDestinations,
)

__all__ = [
    "NetworkScenario",
    "CASE_1",
    "CASE_2",
    "SCENARIOS",
    "PaperParameters",
    "PAPER_PARAMETERS",
    "build_scenario_system",
    "validate_cluster_count",
    "Scenario",
    "SCENARIO_REGISTRY",
    "register_scenario",
    "get_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class NetworkScenario:
    """One row of Table 1: which technology serves the ICN1 vs ECN1/ICN2."""

    name: str
    icn1_technology: NetworkTechnology
    ecn_technology: NetworkTechnology

    @property
    def icn2_technology(self) -> NetworkTechnology:
        """Table 1 assigns the same technology to ECN1 and ICN2."""
        return self.ecn_technology

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.name}: ICN1={self.icn1_technology.name}, "
            f"ECN1/ICN2={self.ecn_technology.name}"
        )


#: Table 1, Case 1: fast intra-cluster network, slow inter-cluster network.
CASE_1 = NetworkScenario("case-1", GIGABIT_ETHERNET, FAST_ETHERNET)

#: Table 1, Case 2: slow intra-cluster network, fast inter-cluster network.
CASE_2 = NetworkScenario("case-2", FAST_ETHERNET, GIGABIT_ETHERNET)

#: Both scenarios by name.
SCENARIOS: Dict[str, NetworkScenario] = {"case-1": CASE_1, "case-2": CASE_2}


@dataclass(frozen=True)
class PaperParameters:
    """Table 2 plus the sweep ranges used by Figures 4–7."""

    total_processors: int = 256
    cluster_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    message_sizes: Tuple[int, ...] = (512, 1024)
    generation_rate: float = 0.25
    simulation_messages: int = 10_000
    switch: SwitchFabric = PAPER_SWITCH

    @property
    def switch_ports(self) -> int:
        """Pr = 24 (Table 2)."""
        return self.switch.ports

    @property
    def switch_latency_s(self) -> float:
        """α_sw = 10 µs (Table 2)."""
        return self.switch.latency_s


#: The default evaluation parameters of the paper.
PAPER_PARAMETERS = PaperParameters()


def validate_cluster_count(num_clusters: int, total_processors: int) -> None:
    """Check that ``num_clusters`` can split ``total_processors`` evenly.

    ``num_clusters >= 1`` and divisibility are validated *separately* so the
    error names the actual failure.  (A previous guard short-circuited on
    membership in the paper's sweep list, letting any divisor-of-N count
    through while the message always claimed a divisibility failure — and
    ``num_clusters=0`` crashed with ``ZeroDivisionError`` before reaching
    the message at all.)
    """
    if num_clusters < 1:
        raise ExperimentError(f"num_clusters must be >= 1, got {num_clusters!r}")
    if total_processors % num_clusters != 0:
        raise ExperimentError(
            f"num_clusters={num_clusters} does not divide N={total_processors}"
        )


def build_scenario_system(
    scenario: NetworkScenario,
    num_clusters: int,
    parameters: PaperParameters = PAPER_PARAMETERS,
) -> MultiClusterSystem:
    """Build the 256-node Super-Cluster of Figures 4–7 for one scenario and C."""
    validate_cluster_count(num_clusters, parameters.total_processors)
    return paper_evaluation_system(
        num_clusters=num_clusters,
        icn_technology=scenario.icn1_technology,
        ecn_technology=scenario.ecn_technology,
        total_processors=parameters.total_processors,
        switch=parameters.switch,
    )


# ---------------------------------------------------------------------------
# The open scenario registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One runnable experiment scenario: system shape + workload + defaults.

    A scenario composes a system builder (which may produce heterogeneous
    Cluster-of-Clusters shapes) with optional workload overrides — a
    destination-policy factory (called with the built system's cluster
    sizes) and an arrival-process factory (called with each processor's
    scaled request rate).  ``supports_analysis`` records whether the
    paper's §4 closed-form model is *meaningful* for the scenario: it is
    ``False`` both when the model cannot be evaluated at all (unequal
    clusters, per-cluster technologies) and when the workload violates the
    uniform-routing assumption the model's ``P`` is derived from
    (hotspot/localized destinations).  Bursty-arrival scenarios keep it
    ``True``: the model is the paper's Poisson prediction, and the gap to
    the bursty simulation is exactly what the scenario measures.
    """

    name: str
    description: str
    build_system: Callable[[int, "PaperParameters"], MultiClusterSystem]
    supports_analysis: bool = True
    default_architecture: str = "non-blocking"
    default_cluster_counts: Optional[Tuple[int, ...]] = None
    default_message_sizes: Optional[Tuple[int, ...]] = None
    destination_policy: Optional[Callable[[Sequence[int]], DestinationPolicy]] = None
    arrival_factory: Optional[Callable[[float], ArrivalProcess]] = None
    #: Tiny cluster-count axis used by smoke specs (CI scenario matrix).
    smoke_cluster_counts: Tuple[int, ...] = (2, 4)
    #: Whether this scenario reproduces part of the paper's own evaluation.
    paper: bool = False
    #: Whether the §7 Cluster-of-Clusters extension
    #: (:class:`repro.core.cluster_of_clusters.ClusterOfClustersModel`)
    #: provides the scenario's analytical curve when the §4 homogeneous
    #: model does not apply (unequal clusters, per-cluster technologies).
    heterogeneous_analysis: bool = False
    #: Failure/repair block applied to every simulated point unless the
    #: spec carries its own ``failures`` (failure-prone scenarios set this;
    #: the analytical models assume always-up targets, so such scenarios
    #: are simulation-only).
    default_failures: Optional[FaultSpec] = None

    @property
    def analysis_capable(self) -> bool:
        """Whether *some* analytical model covers this scenario."""
        return self.supports_analysis or self.heterogeneous_analysis

    def system(
        self, num_clusters: int, parameters: "PaperParameters" = None
    ) -> MultiClusterSystem:
        """Build the scenario's system for one cluster count."""
        return self.build_system(
            num_clusters, parameters if parameters is not None else PAPER_PARAMETERS
        )

    def describe(self) -> str:
        """Human-readable one-liner for listings."""
        workload = []
        if self.destination_policy is not None:
            workload.append("custom destinations")
        if self.arrival_factory is not None:
            workload.append("custom arrivals")
        extras = f" [{', '.join(workload)}]" if workload else ""
        return f"{self.name}: {self.description}{extras}"

    def vectorization_blockers(self) -> List[str]:
        """Reasons this scenario's workload refuses the vectorized engine.

        Empty when the scenario is state independent (renewal arrivals, no
        default failures, uniform destinations) and therefore eligible for
        :mod:`repro.simulation.vectorized_replay` under
        ``engine_mode="auto"``.  A scenario-level ``destination_policy`` is
        a *factory*, not a built policy, so it is conservatively refused
        even if it would build the uniform default — refusing an eligible
        workload costs only speed, accepting an ineligible one would be
        silently wrong.  Note a spec-level ``failures`` block can still
        force the DES for a scenario this reports eligible.
        """
        from ..simulation.vectorized_replay import vectorization_blockers

        reasons = vectorization_blockers(
            arrival_factory=self.arrival_factory, failures=self.default_failures
        )
        if self.destination_policy is not None:
            reasons.append(
                "scenario declares a custom destination policy "
                "(only the default uniform policy vectorizes)"
            )
        return reasons


#: All registered scenarios by name (insertion-ordered).
SCENARIO_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add ``scenario`` to the registry (``replace=True`` to overwrite)."""
    if not replace and scenario.name in SCENARIO_REGISTRY:
        raise ExperimentError(
            f"scenario {scenario.name!r} is already registered; "
            "pass replace=True to overwrite it"
        )
    SCENARIO_REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario, with a helpful error."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(sorted(SCENARIO_REGISTRY))}"
        ) from None


def scenario_names() -> Tuple[str, ...]:
    """Names of all registered scenarios, in registration order."""
    return tuple(SCENARIO_REGISTRY)


# -- system builders ---------------------------------------------------------


def _mixed_nic_technology(
    technologies: Sequence[NetworkTechnology], name: str = "mixed-nics"
) -> NetworkTechnology:
    """Aggregate per-node NIC technologies into one effective technology.

    Builds the pairwise ``T_ij = α_ij + M·β_ij`` matrix (Eq. 10, slower
    endpoint dominates) with :class:`HeterogeneousLinkMatrix` and reads the
    effective α/β off the mean off-diagonal transmission time:
    ``α_eff = mean T(0)`` and ``β_eff = mean T(1) − mean T(0)``.
    """
    matrix = HeterogeneousLinkMatrix.from_node_technologies(technologies)
    alpha = matrix.mean_offdiagonal_transmission_time(0.0)
    beta = matrix.mean_offdiagonal_transmission_time(1.0) - alpha
    return NetworkTechnology(
        name=name, latency_s=alpha, bandwidth_bytes_per_s=1.0 / beta
    )


def _build_heterogeneous_nics(
    num_clusters: int, parameters: PaperParameters
) -> MultiClusterSystem:
    """Per-cluster NIC mix: alternating ICN1 technologies, matrix-derived ICN2."""
    validate_cluster_count(num_clusters, parameters.total_processors)
    if num_clusters < 2:
        raise ExperimentError(
            "scenario 'het-nics' mixes per-cluster technologies and needs "
            f"num_clusters >= 2, got {num_clusters}"
        )
    size = parameters.total_processors // num_clusters
    icn = [
        GIGABIT_ETHERNET if i % 2 == 0 else MYRINET for i in range(num_clusters)
    ]
    ecn = [
        GIGABIT_ETHERNET if i % 2 == 0 else FAST_ETHERNET
        for i in range(num_clusters)
    ]
    return MultiClusterSystem.from_cluster_sizes(
        sizes=[size] * num_clusters,
        icn_technologies=icn,
        ecn_technologies=ecn,
        icn2_technology=_mixed_nic_technology(ecn, name="mixed-ge-fe"),
        switch=parameters.switch,
        name=f"het-nics-C{num_clusters}",
    )


def _build_das2(num_clusters: int, parameters: PaperParameters) -> MultiClusterSystem:
    """The DAS-2-like preset (5 x 64 nodes), rescalable to divisors of 320."""
    system = das2_like_system(switch=parameters.switch)
    if num_clusters == system.num_clusters:
        return system
    return system.rescaled(num_clusters)


def _build_llnl(num_clusters: int, parameters: PaperParameters) -> MultiClusterSystem:
    """The LLNL-like Cluster-of-Clusters preset (fixed 4-cluster shape)."""
    system = llnl_like_system(switch=parameters.switch)
    if num_clusters != system.num_clusters:
        raise ExperimentError(
            "scenario 'llnl-like' has a fixed 4-cluster shape "
            f"(MCR/ALC/Thunder/PVC); got num_clusters={num_clusters}"
        )
    return system


# -- workload factories (module-level so task arguments stay picklable) ------


def _hotspot_policy(cluster_sizes: Sequence[int]) -> DestinationPolicy:
    """15% of messages target node (0, 0); the rest are uniform."""
    return HotspotDestinations(cluster_sizes, hotspot=(0, 0), hotspot_fraction=0.15)


def _localized_policy(cluster_sizes: Sequence[int]) -> DestinationPolicy:
    """80% of messages stay inside the source cluster (§5.3's localized traffic)."""
    return LocalizedDestinations(cluster_sizes, locality=0.8)


def _hyperexponential_arrivals(rate: float) -> ArrivalProcess:
    """Bursty request trains: balanced-means H2 with CV² = 4 at the same load."""
    return HyperexponentialArrivals(rate=rate, cv2=4.0)


def _erlang_arrivals(rate: float) -> ArrivalProcess:
    """Smoothed request trains: Erlang-4 renewal process at the same load."""
    return ErlangArrivals(rate=rate, shape=4)


# -- the registry ------------------------------------------------------------

register_scenario(Scenario(
    name="case-1",
    description="Table 1 Case 1: ICN1 = Gigabit Ethernet, ECN1/ICN2 = Fast Ethernet",
    build_system=partial(build_scenario_system, CASE_1),
    paper=True,
))

register_scenario(Scenario(
    name="case-2",
    description="Table 1 Case 2: ICN1 = Fast Ethernet, ECN1/ICN2 = Gigabit Ethernet",
    build_system=partial(build_scenario_system, CASE_2),
    paper=True,
))

register_scenario(Scenario(
    name="het-nics",
    description=(
        "per-cluster NIC mix (GE/Myrinet ICN1s, GE/FE ECN NICs) with the "
        "ICN2 technology derived from the pairwise link matrix"
    ),
    build_system=_build_heterogeneous_nics,
    supports_analysis=False,
    heterogeneous_analysis=True,
    default_cluster_counts=(2, 4, 8, 16, 32),
    smoke_cluster_counts=(4,),
))

register_scenario(Scenario(
    name="hotspot",
    description="Case-1 platform under hot-spot traffic (15% of messages hit one node)",
    build_system=partial(build_scenario_system, CASE_1),
    supports_analysis=False,
    destination_policy=_hotspot_policy,
    smoke_cluster_counts=(4,),
))

register_scenario(Scenario(
    name="localized-linear",
    description=(
        "blocking linear-array network under localized traffic "
        "(80% intra-cluster; tests the §5.3 suitability remark)"
    ),
    build_system=partial(build_scenario_system, CASE_1),
    supports_analysis=False,
    default_architecture="blocking",
    destination_policy=_localized_policy,
    smoke_cluster_counts=(4,),
))

register_scenario(Scenario(
    name="bursty-hyper",
    description=(
        "Case-1 platform with bursty hyperexponential arrivals (CV² = 4) "
        "at the paper's offered load; analysis = Poisson prediction"
    ),
    build_system=partial(build_scenario_system, CASE_1),
    arrival_factory=_hyperexponential_arrivals,
    smoke_cluster_counts=(4,),
))

register_scenario(Scenario(
    name="bursty-erlang",
    description=(
        "Case-1 platform with smoothed Erlang-4 arrivals (CV² = 1/4) "
        "at the paper's offered load; analysis = Poisson prediction"
    ),
    build_system=partial(build_scenario_system, CASE_1),
    arrival_factory=_erlang_arrivals,
    smoke_cluster_counts=(4,),
))

register_scenario(Scenario(
    name="das2-like",
    description="DAS-2-like Super-Cluster (5 x 64 nodes, Myrinet ICN1s, FE wide-area)",
    build_system=_build_das2,
    default_cluster_counts=(5,),
    smoke_cluster_counts=(5,),
))

register_scenario(Scenario(
    name="llnl-like",
    description=(
        "LLNL-like Cluster-of-Clusters (MCR/ALC/Thunder/PVC: unequal sizes, "
        "mixed processors and networks)"
    ),
    build_system=_build_llnl,
    supports_analysis=False,
    heterogeneous_analysis=True,
    default_cluster_counts=(4,),
    smoke_cluster_counts=(4,),
))


# -- failure-prone scenarios (simulation-only: the analytical models assume
#    always-up nodes and links, so their curves would be meaningless) --------

register_scenario(Scenario(
    name="das2-churn",
    description=(
        "DAS-2-like platform under node churn: every processor alternates "
        "up/down (exponential MTBF 30 s, MTTR 3 s) and pauses generation "
        "while failed"
    ),
    build_system=_build_das2,
    supports_analysis=False,
    default_cluster_counts=(5,),
    smoke_cluster_counts=(5,),
    default_failures=FaultSpec(mtbf_s=30.0, mttr_s=3.0, targets="nodes", policy="stall"),
))

register_scenario(Scenario(
    name="llnl-failures",
    description=(
        "LLNL-like Cluster-of-Clusters with wear-out link outages "
        "(Weibull shape 1.5, MTBF 8 s, MTTR 1 s, preemptive-resume)"
    ),
    build_system=_build_llnl,
    supports_analysis=False,
    default_cluster_counts=(4,),
    smoke_cluster_counts=(4,),
    default_failures=FaultSpec(
        mtbf_s=8.0,
        mttr_s=1.0,
        failure_distribution="weibull",
        failure_shape=1.5,
        targets="links",
        policy="stall",
    ),
))

register_scenario(Scenario(
    name="case-1-lossy",
    description=(
        "Table 1 Case 1 platform with lossy links: messages hitting a "
        "failed network (exponential MTBF 15 s, MTTR 1.5 s) are dropped "
        "and counted"
    ),
    build_system=partial(build_scenario_system, CASE_1),
    supports_analysis=False,
    smoke_cluster_counts=(4,),
    default_failures=FaultSpec(mtbf_s=15.0, mttr_s=1.5, targets="links", policy="drop"),
))
