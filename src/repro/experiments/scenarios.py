"""The paper's evaluation scenarios and parameters (Tables 1 and 2).

Table 1 defines two network-heterogeneity cases for the Super-Cluster
platform:

========  ==================  ==================
Case      ICN1                ECN1 and ICN2
========  ==================  ==================
Case 1    Gigabit Ethernet    Fast Ethernet
Case 2    Fast Ethernet       Gigabit Ethernet
========  ==================  ==================

Table 2 fixes the model parameters: GE 80 µs / 94 MB/s, FE 50 µs /
10.5 MB/s, 24-port switches with 10 µs latency, and a message generation
rate of 0.25 msg/s.  The evaluation platform has N = 256 nodes and sweeps
the number of clusters over the powers of two from 1 to 256 with message
sizes of 512 and 1024 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..cluster.presets import paper_evaluation_system
from ..cluster.system import MultiClusterSystem
from ..errors import ExperimentError
from ..network.switch import PAPER_SWITCH, SwitchFabric
from ..network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET, NetworkTechnology

__all__ = [
    "NetworkScenario",
    "CASE_1",
    "CASE_2",
    "SCENARIOS",
    "PaperParameters",
    "PAPER_PARAMETERS",
    "build_scenario_system",
]


@dataclass(frozen=True)
class NetworkScenario:
    """One row of Table 1: which technology serves the ICN1 vs ECN1/ICN2."""

    name: str
    icn1_technology: NetworkTechnology
    ecn_technology: NetworkTechnology

    @property
    def icn2_technology(self) -> NetworkTechnology:
        """Table 1 assigns the same technology to ECN1 and ICN2."""
        return self.ecn_technology

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"{self.name}: ICN1={self.icn1_technology.name}, "
            f"ECN1/ICN2={self.ecn_technology.name}"
        )


#: Table 1, Case 1: fast intra-cluster network, slow inter-cluster network.
CASE_1 = NetworkScenario("case-1", GIGABIT_ETHERNET, FAST_ETHERNET)

#: Table 1, Case 2: slow intra-cluster network, fast inter-cluster network.
CASE_2 = NetworkScenario("case-2", FAST_ETHERNET, GIGABIT_ETHERNET)

#: Both scenarios by name.
SCENARIOS: Dict[str, NetworkScenario] = {"case-1": CASE_1, "case-2": CASE_2}


@dataclass(frozen=True)
class PaperParameters:
    """Table 2 plus the sweep ranges used by Figures 4–7."""

    total_processors: int = 256
    cluster_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    message_sizes: Tuple[int, ...] = (512, 1024)
    generation_rate: float = 0.25
    simulation_messages: int = 10_000
    switch: SwitchFabric = PAPER_SWITCH

    @property
    def switch_ports(self) -> int:
        """Pr = 24 (Table 2)."""
        return self.switch.ports

    @property
    def switch_latency_s(self) -> float:
        """α_sw = 10 µs (Table 2)."""
        return self.switch.latency_s


#: The default evaluation parameters of the paper.
PAPER_PARAMETERS = PaperParameters()


def build_scenario_system(
    scenario: NetworkScenario,
    num_clusters: int,
    parameters: PaperParameters = PAPER_PARAMETERS,
) -> MultiClusterSystem:
    """Build the 256-node Super-Cluster of Figures 4–7 for one scenario and C."""
    if num_clusters not in parameters.cluster_counts and (
        parameters.total_processors % num_clusters != 0
    ):
        raise ExperimentError(
            f"num_clusters={num_clusters} does not divide N={parameters.total_processors}"
        )
    return paper_evaluation_system(
        num_clusters=num_clusters,
        icn_technology=scenario.icn1_technology,
        ecn_technology=scenario.ecn_technology,
        total_processors=parameters.total_processors,
        switch=parameters.switch,
    )
