"""Drivers that regenerate the paper's Figures 4–7.

Each figure plots the average message latency (analysis and simulation)
against the number of clusters of a 256-node Super-Cluster for message
sizes of 512 and 1024 bytes:

* Figure 4 — non-blocking network, Case-1 (ICN1 = GE, ECN1/ICN2 = FE)
* Figure 5 — non-blocking network, Case-2 (ICN1 = FE, ECN1/ICN2 = GE)
* Figure 6 — blocking network, Case-1
* Figure 7 — blocking network, Case-2

:func:`run_figure` produces a :class:`FigureResult` with one
:class:`FigurePoint` per (message size, cluster count) combination; the
benchmarks and the CLI print the same rows/series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..core.vectorized import evaluate_latency_grid
from ..errors import ExperimentError
from ..parallel import Backend, SweepEngine, SweepJournal
from ..stats.compare import compare_series, ComparisonSummary
from ..viz.ascii_chart import line_chart
from ..viz.tables import format_fixed_width_table, format_markdown_table
from .pipeline import (
    Collector,
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
    build_plan,
)
from .scenarios import (
    CASE_1,
    CASE_2,
    NetworkScenario,
    PAPER_PARAMETERS,
    PaperParameters,
)

__all__ = [
    "FigureSpec",
    "FigurePoint",
    "FigureResult",
    "FigureCollector",
    "FIGURE_SPECS",
    "run_figure",
]


@dataclass(frozen=True)
class FigureSpec:
    """Which scenario and architecture one paper figure uses."""

    number: int
    scenario: NetworkScenario
    architecture: str
    description: str

    @property
    def title(self) -> str:
        """Figure title matching the paper's caption style."""
        return (
            f"Figure {self.number}: Avg Message Latency vs Number of Clusters "
            f"for {self.architecture.capitalize()} Networks in {self.scenario.name.title()}"
        )


#: The four evaluation figures of the paper.
FIGURE_SPECS: Dict[int, FigureSpec] = {
    4: FigureSpec(4, CASE_1, "non-blocking", "Non-blocking fat-tree, Case-1 (ICN1=GE, ECN=FE)"),
    5: FigureSpec(5, CASE_2, "non-blocking", "Non-blocking fat-tree, Case-2 (ICN1=FE, ECN=GE)"),
    6: FigureSpec(6, CASE_1, "blocking", "Blocking linear array, Case-1 (ICN1=GE, ECN=FE)"),
    7: FigureSpec(7, CASE_2, "blocking", "Blocking linear array, Case-2 (ICN1=FE, ECN=GE)"),
}


@dataclass(frozen=True)
class FigurePoint:
    """One (message size, cluster count) point of a figure."""

    num_clusters: int
    message_bytes: int
    analysis_latency_ms: float
    simulation_latency_ms: Optional[float] = None
    simulation_ci_half_width_ms: Optional[float] = None

    @property
    def relative_error(self) -> Optional[float]:
        """Analysis-vs-simulation relative error (None without simulation)."""
        if self.simulation_latency_ms in (None, 0.0):
            return None
        return abs(self.analysis_latency_ms - self.simulation_latency_ms) / abs(
            self.simulation_latency_ms
        )

    def as_dict(self) -> Dict[str, object]:
        """Flat row for tables."""
        row: Dict[str, object] = {
            "clusters": self.num_clusters,
            "message_bytes": self.message_bytes,
            "analysis_ms": self.analysis_latency_ms,
        }
        if self.simulation_latency_ms is not None:
            row["simulation_ms"] = self.simulation_latency_ms
            row["rel_error"] = self.relative_error
        return row


@dataclass
class FigureResult:
    """All points of one reproduced figure plus formatting helpers."""

    spec: FigureSpec
    points: List[FigurePoint] = field(default_factory=list)
    parameters: PaperParameters = PAPER_PARAMETERS

    # -- accessors ---------------------------------------------------------------------

    def points_for_size(self, message_bytes: int) -> List[FigurePoint]:
        """Points of one message-size series, ordered by cluster count."""
        return sorted(
            (p for p in self.points if p.message_bytes == message_bytes),
            key=lambda p: p.num_clusters,
        )

    @property
    def cluster_counts(self) -> List[int]:
        """Distinct cluster counts in ascending order."""
        return sorted({p.num_clusters for p in self.points})

    @property
    def message_sizes(self) -> List[int]:
        """Distinct message sizes in ascending order."""
        return sorted({p.message_bytes for p in self.points})

    def series(self) -> Dict[str, List[float]]:
        """Latency series keyed like the paper's legend entries."""
        out: Dict[str, List[float]] = {}
        for size in self.message_sizes:
            pts = self.points_for_size(size)
            out[f"Analysis,M={size}"] = [p.analysis_latency_ms for p in pts]
            if any(p.simulation_latency_ms is not None for p in pts):
                out[f"Simulation,M={size}"] = [
                    p.simulation_latency_ms if p.simulation_latency_ms is not None else float("nan")
                    for p in pts
                ]
        return out

    def accuracy_summary(self) -> Optional[ComparisonSummary]:
        """MAPE / RMSE / max error of analysis vs simulation over all points."""
        predicted = [
            p.analysis_latency_ms for p in self.points if p.simulation_latency_ms is not None
        ]
        observed = [
            p.simulation_latency_ms for p in self.points if p.simulation_latency_ms is not None
        ]
        if not predicted:
            return None
        return compare_series(predicted, observed)

    # -- rendering ---------------------------------------------------------------------

    def to_rows(self) -> List[Dict[str, object]]:
        """Rows (one per point) suitable for the table formatters."""
        return [p.as_dict() for p in sorted(self.points, key=lambda p: (p.message_bytes, p.num_clusters))]

    def to_markdown(self) -> str:
        """The figure as a Markdown table."""
        return format_markdown_table(self.to_rows())

    def to_text_table(self) -> str:
        """The figure as an aligned plain-text table."""
        return format_fixed_width_table(self.to_rows())

    def to_chart(self, width: int = 70, height: int = 20) -> str:
        """ASCII rendition of the figure (latency vs number of clusters)."""
        return line_chart(
            [float(c) for c in self.cluster_counts],
            self.series(),
            width=width,
            height=height,
            title=self.spec.title,
            x_label="Number of Clusters (log scale)",
            y_label="Avg Message Latency (ms)",
            logx=True,
        )


class FigureCollector(Collector):
    """Folds a pipeline outcome into the traditional :class:`FigureResult`."""

    def __init__(self, spec: FigureSpec, parameters: PaperParameters) -> None:
        self.spec = spec
        self.parameters = parameters

    def collect(self, outcome: ExperimentOutcome) -> FigureResult:
        result = FigureResult(spec=self.spec, parameters=self.parameters)
        for point in outcome.plan.points:
            sim_latency_ms: Optional[float] = None
            sim_ci_ms: Optional[float] = None
            if outcome.replicated is not None:
                agg = outcome.replicated[point.index]
                sim_latency_ms = agg.mean_latency_ms
                if agg.latency_interval is not None:
                    sim_ci_ms = agg.latency_interval.half_width * 1e3
            result.points.append(
                FigurePoint(
                    num_clusters=point.num_clusters,
                    message_bytes=int(point.message_bytes),
                    analysis_latency_ms=float(outcome.analysis.mean_latency_ms[point.index]),
                    simulation_latency_ms=sim_latency_ms,
                    simulation_ci_half_width_ms=sim_ci_ms,
                )
            )
        return result


def run_figure(
    number: int,
    include_simulation: bool = True,
    cluster_counts: Optional[Sequence[int]] = None,
    message_sizes: Optional[Sequence[int]] = None,
    parameters: PaperParameters = PAPER_PARAMETERS,
    simulation_messages: Optional[int] = None,
    replications: int = 1,
    seed: int = 0,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
    stats_mode: str = "array",
    histogram_range: Optional[tuple] = None,
    cache: Optional[Any] = None,
) -> FigureResult:
    """Reproduce one of the paper's Figures 4–7.

    The driver is a thin shell over the declarative pipeline: the figure's
    scenario/architecture and the sweep axes become an
    :class:`~repro.experiments.pipeline.ExperimentSpec`, whose plan carries
    the vectorized analysis grid and the seeded, labelled simulation tasks
    (labels keep the historical ``fig<N> M=<mb> C=<nc> rep[<i>]`` shape, so
    existing checkpoint journals keep matching).

    Parameters
    ----------
    number:
        Figure number (4, 5, 6 or 7).
    include_simulation:
        Also run the validation simulator at every point (slower).  The
        analysis-only mode is used by quick tests and the analysis curves of
        the benchmarks.
    cluster_counts, message_sizes:
        Overrides of the sweep ranges (default: the paper's).
    simulation_messages:
        Number of messages per simulation run (default: the paper's 10 000).
    replications:
        Independent simulation replications per point.
    seed:
        Base random seed.  Every (message size, cluster count) point gets
        its own master seed spawned from this one, and every replication a
        seed spawned from the point's — so no two runs of the sweep share a
        random stream.
    jobs, engine, backend:
        Fan the ``points x replications`` independent simulations out across
        ``jobs`` worker processes (``None`` = all cores), through a
        pre-configured :class:`~repro.parallel.SweepEngine`, or over an
        explicit execution backend (``"serial"``, ``"pool"``, ``"socket"``
        or a :class:`~repro.parallel.Backend` instance — e.g. a socket work
        queue whose workers live on other machines, or an
        :class:`~repro.parallel.SSHBackend` that launches them itself).
        Results are bit-identical to the serial ``jobs=1`` default for
        every choice.
    checkpoint:
        Optional :class:`~repro.parallel.SweepJournal` (or journal path):
        completed simulations are journaled as they finish, and a killed
        sweep re-run with the same journal resumes bit-identically,
        re-executing only the unfinished tasks.
    stats_mode:
        Observation sinks of the simulation pass: ``"array"`` (default,
        bit-identical legacy behaviour) or ``"online"`` (bounded-memory
        streaming accumulators; see :mod:`repro.stats.sinks`).
    histogram_range:
        Optional explicit ``(low, high)`` range (seconds) for the online
        sink's quantile histogram so shard histograms merge exactly;
        rejected when ``stats_mode="array"``.
    cache:
        Optional :class:`~repro.cache.ResultCache` (or cache directory
        path): a figure whose (spec, code-version) key has an entry is
        rendered from the stored outcome, bit-identically, without running
        either pass.  Figures built against non-default ``parameters`` are
        never cached (their spec under-describes them).
    """
    if number not in FIGURE_SPECS:
        raise ExperimentError(f"unknown figure {number}; the paper has figures 4-7")
    spec = FIGURE_SPECS[number]
    counts = list(cluster_counts) if cluster_counts is not None else list(parameters.cluster_counts)
    sizes = list(message_sizes) if message_sizes is not None else list(parameters.message_sizes)
    sim_messages = (
        simulation_messages if simulation_messages is not None else parameters.simulation_messages
    )

    experiment = ExperimentSpec(
        scenario=spec.scenario.name,
        mode="both" if include_simulation else "analysis",
        architecture=spec.architecture,
        cluster_counts=tuple(counts),
        message_sizes=tuple(sizes),
        generation_rates=(parameters.generation_rate,),
        replications=replications,
        simulation_messages=sim_messages,
        seed=seed,
        stats_mode=stats_mode,
        histogram_range=histogram_range,
    )
    plan = build_plan(
        experiment,
        parameters=parameters,
        label=lambda point, rep_index, rep_config: (
            f"fig{number} M={point.message_bytes} C={point.num_clusters} rep[{rep_index}]"
        ),
    )

    from ..cache.store import coerce_cache

    store = coerce_cache(cache)
    if store is not None:
        cached = store.get_outcome(plan)
        if cached is not None:
            return FigureCollector(spec, parameters).collect(cached)

    # Analysis pass — always computed, vectorized and bit-identical to
    # per-point AnalyticalModel calls.  The execution engine is resolved
    # only when a simulation pass actually runs (so an analysis-only call
    # never opens checkpoints or spins up backends).
    analysis = evaluate_latency_grid(plan.analysis_evaluations())
    replicated = None
    if plan.include_simulation:
        runner = ExperimentRunner(
            engine=engine, jobs=jobs, backend=backend, checkpoint=checkpoint
        )
        replicated = runner.run_simulation_plan(plan.simulation)

    outcome = ExperimentOutcome(plan=plan, analysis=analysis, replicated=replicated)
    if store is not None:
        store.put_outcome(plan, outcome)
    return FigureCollector(spec, parameters).collect(outcome)
