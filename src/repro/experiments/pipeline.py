"""Declarative experiment pipeline: Spec → Plan → Execute → Collect → Artifact.

Every experiment driver in this package — the figure sweeps, the
blocking-ratio study, the ablations, the validation runner and the CLI's
``repro run`` verb — is built on the same five stages:

1. **Spec** — an :class:`ExperimentSpec`: a frozen, JSON-round-trippable
   description of *what* to run (scenario, architecture, sweep axes,
   replication count, simulation budget, seed).  Nothing in a spec depends
   on *how* it will be executed.
2. **Plan** — :func:`build_plan` expands a spec against the scenario
   registry into an :class:`ExperimentPlan`: the ordered grid of
   :class:`PlanPoint`\\ s, the systems they run on, the vectorized analysis
   evaluations and (for simulating modes) a :class:`SimulationPlan` of
   seeded, labelled :class:`~repro.parallel.SweepTask`\\ s.  Per-point
   seeds are ``SeedSequence``-spawned from the spec seed and per-replication
   seeds from the point seed, so results are bit-identical on every
   execution backend and :class:`~repro.parallel.SweepJournal` fingerprints
   (task count + labels) are stable.
3. **Execute** — an :class:`ExperimentRunner` owns the execution policy
   uniformly: backend selection, checkpoint journaling and progress
   reporting all flow through one :class:`~repro.parallel.SweepEngine`.
4. **Collect** — a :class:`Collector` folds the per-point grid evaluation
   and the ``(index, result)`` simulation outcomes into a result type; the
   drivers install collectors producing their traditional artefacts
   (``FigureResult``, ``BlockingRatioStudy``, ``AblationStudy``, ...).
5. **Artifact** — the default :class:`TableCollector` produces an
   :class:`ExperimentResult` with the table/CSV renderings the CLI prints.

Example
-------
>>> from repro.experiments.pipeline import ExperimentSpec, ExperimentRunner, build_plan
>>> spec = ExperimentSpec(scenario="case-1", mode="analysis",
...                       cluster_counts=(4, 16), message_sizes=(1024,))
>>> result = ExperimentRunner().run(build_plan(spec))
>>> [round(p.analysis_latency_ms, 3) for p in result.points]  # doctest: +SKIP
[...]
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.model import ModelConfig
from ..core.vectorized import GridEvaluation, evaluate_latency_grid
from ..errors import ConfigurationError, ExperimentError
from ..parallel import (
    Backend,
    SweepEngine,
    SweepJournal,
    SweepTask,
    resolve_engine,
    spawn_seeds,
)
from ..simulation.faults import FaultSpec
from ..simulation.runner import (
    ReplicatedResult,
    aggregate_replications,
    replication_configs,
    run_simulation_task,
)
from ..simulation.simulator import SimulationConfig
from ..stats.compare import ComparisonSummary, compare_series
from ..stats.sinks import STATS_MODES, validate_histogram_range
from ..viz.tables import format_fixed_width_table, format_markdown_table
from ..workload.destinations import DestinationPolicy
from .scenarios import (
    PAPER_PARAMETERS,
    PaperParameters,
    Scenario,
    get_scenario,
)

__all__ = [
    "EXPERIMENT_MODES",
    "ENGINE_MODES",
    "ExperimentSpec",
    "PlanPoint",
    "SimulationPlan",
    "ExperimentPlan",
    "ExperimentOutcome",
    "ExperimentRunner",
    "Collector",
    "TableCollector",
    "ExperimentPointResult",
    "ExperimentResult",
    "build_plan",
    "build_simulation_plan",
    "smoke_spec",
]

#: Valid values of :attr:`ExperimentSpec.mode`.
EXPERIMENT_MODES = ("analysis", "simulate", "both")

#: Valid values of :attr:`ExperimentSpec.engine_mode` (``None`` ≡ ``"auto"``).
ENGINE_MODES = ("auto", "des", "vectorized")

#: Label callback signature: ``label(point, rep_index, rep_config) -> str``.
LabelFn = Callable[["PlanPoint", int, SimulationConfig], str]


def _spec_int(name: str, value) -> int:
    """Validate one integer spec field (integral floats coerced, rest rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExperimentError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise ExperimentError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    return value


# ---------------------------------------------------------------------------
# Stage 1: the spec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment campaign.

    Parameters
    ----------
    scenario:
        Name of a scenario in :data:`~repro.experiments.scenarios.SCENARIO_REGISTRY`.
    mode:
        ``"analysis"`` (closed-form model only), ``"simulate"`` (validation
        simulator only) or ``"both"``.
    architecture:
        ``"non-blocking"`` / ``"blocking"``; ``None`` uses the scenario's
        default.
    cluster_counts, message_sizes, generation_rates:
        The sweep axes.  ``None`` falls back to the scenario's defaults and
        then the paper's Table-2 ranges.  The grid is ordered message size
        → cluster count → rate (the paper's figure-table row order).
    replications:
        Independent simulation replications per grid point.
    simulation_messages:
        Completed messages per simulation run.
    seed:
        Campaign master seed; per-point and per-replication seeds are
        ``SeedSequence``-spawned from it.
    switch_ports, switch_latency_us:
        Optional overrides of the Table-2 switch fabric.
    stats_mode:
        Observation-sink strategy of the simulation pass
        (:data:`repro.stats.sinks.STATS_MODES`): ``"array"`` retains every
        sample (bit-identical legacy behaviour), ``"online"`` streams
        through bounded-memory accumulators.
    histogram_range:
        Optional explicit ``(low, high)`` range (seconds) for the online
        sink's quantile histogram.  Fixing the range makes online-mode
        quantile histograms exactly mergeable across parallel-backend
        shards (auto-calibrated ranges are data-dependent).  Rejected with
        a :class:`~repro.errors.ConfigurationError` when
        ``stats_mode="array"`` — the array sink has exact percentiles and
        no histogram to configure.
    failures:
        Optional :class:`~repro.simulation.faults.FaultSpec` (or its JSON
        object form) attaching seeded failure/repair schedules to links
        and/or nodes of every simulated point.  ``None`` (the default)
        keeps the always-up model *unless* the scenario declares its own
        ``default_failures`` (the failure-prone scenarios do); a spec-level
        block always wins over the scenario default.  Omitted from the
        JSON form when ``None``, so existing specs and cache keys are
        untouched.
    engine_mode:
        Simulation engine selection.  ``"auto"`` (the meaning of the
        ``None`` default) routes each campaign to the vectorized
        closed-loop engine (:mod:`repro.simulation.vectorized_replay`)
        when the workload is state independent — renewal arrivals, no
        failures, default uniform destinations — and to the DES
        otherwise; ``"des"`` always takes the event-driven simulator;
        ``"vectorized"`` insists on the vectorized engine and fails fast
        (listing the blockers) when the workload is ineligible.  Both
        engines are bit-identical, so the mode only changes how fast the
        numbers are computed, never their values.  ``None`` is omitted
        from the JSON form, keeping existing specs and cache keys
        untouched.
    """

    scenario: str
    mode: str = "both"
    architecture: Optional[str] = None
    cluster_counts: Optional[Tuple[int, ...]] = None
    message_sizes: Optional[Tuple[float, ...]] = None
    generation_rates: Optional[Tuple[float, ...]] = None
    replications: int = 1
    simulation_messages: int = 2_000
    seed: int = 0
    switch_ports: Optional[int] = None
    switch_latency_us: Optional[float] = None
    stats_mode: str = "array"
    histogram_range: Optional[Tuple[float, float]] = None
    failures: Optional[FaultSpec] = None
    engine_mode: Optional[str] = None

    def __post_init__(self) -> None:
        # Coerce JSON-borne lists into tuples so specs stay hashable and
        # value-comparable after a round trip.
        for name in ("cluster_counts", "message_sizes", "generation_rates"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(value))
        # Integer fields must be genuine integers: JSON happily carries
        # 2.5 replications or seed 1.5, which would either crash deep in
        # SeedSequence with a raw TypeError or silently truncate (running
        # a different seed than the one reported).  Integral floats are
        # coerced, fractional values rejected.
        for name in ("replications", "simulation_messages", "seed"):
            object.__setattr__(self, name, _spec_int(name, getattr(self, name)))
        if self.switch_ports is not None:
            object.__setattr__(
                self, "switch_ports", _spec_int("switch_ports", self.switch_ports)
            )
        if self.cluster_counts is not None:
            object.__setattr__(
                self,
                "cluster_counts",
                tuple(_spec_int("cluster_counts", c) for c in self.cluster_counts),
            )
        if not self.scenario:
            raise ExperimentError("spec needs a scenario name")
        if self.mode not in EXPERIMENT_MODES:
            raise ExperimentError(
                f"mode must be one of {EXPERIMENT_MODES}, got {self.mode!r}"
            )
        if self.stats_mode not in STATS_MODES:
            raise ExperimentError(
                f"stats_mode must be one of {STATS_MODES}, got {self.stats_mode!r}"
            )
        if self.engine_mode is not None and self.engine_mode not in ENGINE_MODES:
            raise ExperimentError(
                f"engine_mode must be one of {ENGINE_MODES}, got {self.engine_mode!r}"
            )
        if self.histogram_range is not None:
            try:
                object.__setattr__(
                    self,
                    "histogram_range",
                    validate_histogram_range(self.histogram_range),
                )
            except ValueError as exc:
                raise ExperimentError(str(exc)) from None
            if self.stats_mode != "online":
                raise ConfigurationError(
                    "histogram_range configures the online sink's quantile "
                    "histogram; it cannot be combined with stats_mode="
                    f"{self.stats_mode!r} (set stats_mode='online')"
                )
        if self.replications < 1:
            raise ExperimentError(f"replications must be >= 1, got {self.replications!r}")
        if self.simulation_messages < 1:
            raise ExperimentError(
                f"simulation_messages must be >= 1, got {self.simulation_messages!r}"
            )
        if self.cluster_counts is not None and (
            not self.cluster_counts or any(c < 1 for c in self.cluster_counts)
        ):
            raise ExperimentError(
                f"cluster_counts must be a non-empty list of positive ints, "
                f"got {self.cluster_counts!r}"
            )
        if self.message_sizes is not None and (
            not self.message_sizes or any(m <= 0 for m in self.message_sizes)
        ):
            raise ExperimentError(
                f"message_sizes must be a non-empty list of positive sizes, "
                f"got {self.message_sizes!r}"
            )
        if self.generation_rates is not None and (
            not self.generation_rates or any(r <= 0 for r in self.generation_rates)
        ):
            raise ExperimentError(
                f"generation_rates must be a non-empty list of positive rates, "
                f"got {self.generation_rates!r}"
            )
        if self.seed < 0:
            raise ExperimentError(f"seed must be non-negative, got {self.seed!r}")
        if self.switch_ports is not None and self.switch_ports < 2:
            raise ExperimentError(f"switch_ports must be >= 2, got {self.switch_ports!r}")
        if self.switch_latency_us is not None and self.switch_latency_us < 0:
            raise ExperimentError(
                f"switch_latency_us must be non-negative, got {self.switch_latency_us!r}"
            )
        if self.failures is not None and not isinstance(self.failures, FaultSpec):
            object.__setattr__(self, "failures", FaultSpec.from_json(self.failures))

    @property
    def include_analysis(self) -> bool:
        """Whether the campaign evaluates the closed-form model."""
        return self.mode in ("analysis", "both")

    @property
    def include_simulation(self) -> bool:
        """Whether the campaign runs the validation simulator."""
        return self.mode in ("simulate", "both")

    # -- JSON round trip ---------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """Plain-JSON dictionary (``None`` fields omitted)."""
        out: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if value is None:
                continue
            if isinstance(value, FaultSpec):
                value = value.to_json()
            elif isinstance(value, tuple):
                value = list(value)
            out[spec_field.name] = value
        return out

    def to_json_text(self, indent: int = 2) -> str:
        """JSON text of :meth:`to_json` (trailing newline included)."""
        return json.dumps(self.to_json(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Build a spec from a JSON dictionary, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ExperimentError(f"a spec must be a JSON object, got {type(data).__name__}")
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ExperimentError(
                f"unknown spec field(s) {unknown}; known fields: {sorted(known)}"
            )
        if "scenario" not in data:
            raise ExperimentError("spec is missing the required 'scenario' field")
        return cls(**data)

    @classmethod
    def from_json_text(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"invalid spec JSON: {exc}") from exc
        return cls.from_json(data)

    @classmethod
    def from_file(cls, path: Union[str, "os.PathLike"]) -> "ExperimentSpec":
        """Load a spec from a ``SPEC.json`` file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json_text(handle.read())

    def to_file(self, path: Union[str, "os.PathLike"]) -> None:
        """Write the spec as ``SPEC.json``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json_text())


def smoke_spec(scenario: Union[str, Scenario], messages: int = 300, seed: int = 1) -> ExperimentSpec:
    """A tiny spec exercising ``scenario`` end to end (CI scenario matrix)."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return ExperimentSpec(
        scenario=scenario.name,
        mode="both" if scenario.analysis_capable else "simulate",
        cluster_counts=scenario.smoke_cluster_counts,
        message_sizes=(512,),
        replications=1,
        simulation_messages=messages,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Stage 2: the plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanPoint:
    """One grid point of a campaign (raw axis values, not yet coerced)."""

    index: int
    num_clusters: int
    message_bytes: Union[int, float]
    generation_rate: float


@dataclass
class SimulationPlan:
    """The seeded, labelled task list of a campaign's simulation pass."""

    tasks: List[SweepTask]
    task_point: List[int]
    n_points: int


@dataclass
class ExperimentPlan:
    """A fully expanded campaign: grid, systems, analysis and simulation.

    ``analysis_kind`` records which analytical model backs the analysis
    pass: ``"paper"`` for the §4 homogeneous model (vectorized grid) or
    ``"cluster-of-clusters"`` for the §7 heterogeneous extension used by
    scenarios with unequal clusters or per-cluster technologies.
    """

    spec: ExperimentSpec
    scenario: Scenario
    parameters: PaperParameters
    architecture: str
    points: List[PlanPoint]
    systems: Dict[int, Any]
    simulation: Optional[SimulationPlan] = None
    analysis_kind: str = "paper"

    @property
    def include_analysis(self) -> bool:
        """Whether the plan carries an analysis pass."""
        return self.spec.include_analysis

    @property
    def include_simulation(self) -> bool:
        """Whether the plan carries simulation tasks."""
        return self.simulation is not None

    def analysis_evaluations(self) -> List[Tuple[Any, ModelConfig]]:
        """The ``(system, config)`` pairs of the vectorized analysis pass."""
        return [
            (
                self.systems[point.num_clusters],
                ModelConfig(
                    architecture=self.architecture,
                    message_bytes=float(point.message_bytes),
                    generation_rate=point.generation_rate,
                ),
            )
            for point in self.points
        ]

    def heterogeneous_evaluations(self) -> List[Tuple[Any, Any]]:
        """The ``(system, config)`` pairs of the Cluster-of-Clusters pass."""
        from ..core.cluster_of_clusters import HeterogeneousModelConfig

        return [
            (
                self.systems[point.num_clusters],
                HeterogeneousModelConfig(
                    architecture=self.architecture,
                    message_bytes=float(point.message_bytes),
                    generation_rate=point.generation_rate,
                ),
            )
            for point in self.points
        ]


def _apply_switch_overrides(
    spec: ExperimentSpec, parameters: PaperParameters
) -> PaperParameters:
    """Fold the spec's optional switch overrides into the parameters."""
    if spec.switch_ports is None and spec.switch_latency_us is None:
        return parameters
    from ..network.switch import SwitchFabric

    switch = SwitchFabric(
        ports=spec.switch_ports if spec.switch_ports is not None else parameters.switch.ports,
        latency_s=(
            spec.switch_latency_us * 1e-6
            if spec.switch_latency_us is not None
            else parameters.switch.latency_s
        ),
    )
    return replace(parameters, switch=switch)


def _default_label(spec: ExperimentSpec, architecture: str) -> LabelFn:
    def label(point: PlanPoint, rep_index: int, rep_config: SimulationConfig) -> str:
        return (
            f"{spec.scenario} {architecture} M={point.message_bytes} "
            f"C={point.num_clusters} lam={point.generation_rate:g} rep[{rep_index}]"
        )

    return label


def build_simulation_plan(
    point_runs: Sequence[Tuple[PlanPoint, Any, SimulationConfig]],
    replications: int,
    label: LabelFn,
    destination_policy=None,
    arrival_factory=None,
    task_fn: Callable[..., Any] = run_simulation_task,
) -> SimulationPlan:
    """Expand per-point master configs into seeded, labelled sweep tasks.

    ``point_runs`` holds ``(point, system, master_config)`` triples; every
    point's replications get seeds spawned from ``master_config.seed`` (via
    :func:`~repro.simulation.runner.replication_configs`), so the task list
    — and therefore every backend's results and the checkpoint journal's
    fingerprint — is a pure function of the campaign definition.

    ``destination_policy`` is either a ready
    :class:`~repro.workload.destinations.DestinationPolicy` instance or a
    factory mapping a system's cluster sizes to one; ``arrival_factory``
    maps a processor rate to an arrival process.  Both are shipped *as task
    arguments* (when present) so remote workers reconstruct the exact
    workload.
    """
    tasks: List[SweepTask] = []
    task_point: List[int] = []
    policy_cache: Dict[int, Any] = {}
    for point_idx, (point, system, master_config) in enumerate(point_runs):
        policy = None
        if isinstance(destination_policy, DestinationPolicy):
            policy = destination_policy
        elif destination_policy is not None:
            key = id(system)
            if key not in policy_cache:
                policy_cache[key] = destination_policy(
                    [c.num_processors for c in system.clusters]
                )
            policy = policy_cache[key]
        for rep_index, rep_config in enumerate(
            replication_configs(master_config, replications)
        ):
            # Paper-default workloads keep the historical 2-argument task
            # signature so their pickles (and golden results) are untouched.
            if policy is None and arrival_factory is None:
                args: Tuple[Any, ...] = (system, rep_config)
            else:
                args = (system, rep_config, policy, arrival_factory)
            tasks.append(
                SweepTask(
                    fn=task_fn,
                    args=args,
                    label=label(point, rep_index, rep_config),
                )
            )
            task_point.append(point_idx)
    return SimulationPlan(tasks=tasks, task_point=task_point, n_points=len(point_runs))


def build_plan(
    spec: ExperimentSpec,
    parameters: PaperParameters = PAPER_PARAMETERS,
    label: Optional[LabelFn] = None,
) -> ExperimentPlan:
    """Expand ``spec`` into a runnable :class:`ExperimentPlan`.

    The grid is ordered message size → cluster count → generation rate,
    which reduces to the paper's figure-table row order for single-rate
    campaigns.  Point seeds are ``SeedSequence``-spawned from ``spec.seed``
    in grid order.
    """
    scenario = get_scenario(spec.scenario)
    if spec.include_analysis and not scenario.analysis_capable:
        raise ExperimentError(
            f"scenario {spec.scenario!r} does not support the closed-form "
            f"analysis (mode={spec.mode!r}); use mode='simulate'"
        )
    analysis_kind = "paper" if scenario.supports_analysis else "cluster-of-clusters"
    parameters = _apply_switch_overrides(spec, parameters)
    counts = (
        spec.cluster_counts
        if spec.cluster_counts is not None
        else (
            scenario.default_cluster_counts
            if scenario.default_cluster_counts is not None
            else parameters.cluster_counts
        )
    )
    sizes = (
        spec.message_sizes
        if spec.message_sizes is not None
        else (
            scenario.default_message_sizes
            if scenario.default_message_sizes is not None
            else parameters.message_sizes
        )
    )
    rates = (
        spec.generation_rates
        if spec.generation_rates is not None
        else (parameters.generation_rate,)
    )
    architecture = (
        spec.architecture if spec.architecture is not None else scenario.default_architecture
    )

    systems = {nc: scenario.build_system(nc, parameters) for nc in counts}
    points = [
        PlanPoint(index=i, num_clusters=nc, message_bytes=mb, generation_rate=rate)
        for i, (mb, nc, rate) in enumerate(
            (mb, nc, rate) for mb in sizes for nc in counts for rate in rates
        )
    ]

    simulation: Optional[SimulationPlan] = None
    if spec.include_simulation:
        point_seeds = spawn_seeds(spec.seed, len(points))
        # A spec-level failures block beats the scenario default; both are
        # carried inside the per-point SimulationConfig, so replication
        # seeding and remote workers see exactly the same fault model.
        failures = spec.failures if spec.failures is not None else scenario.default_failures
        point_runs = [
            (
                point,
                systems[point.num_clusters],
                SimulationConfig(
                    architecture=architecture,
                    message_bytes=float(point.message_bytes),
                    generation_rate=point.generation_rate,
                    num_messages=spec.simulation_messages,
                    seed=point_seed,
                    stats_mode=spec.stats_mode,
                    histogram_range=spec.histogram_range,
                    failures=failures,
                ),
            )
            for point, point_seed in zip(points, point_seeds)
        ]
        # Engine routing: "auto" takes the vectorized closed-loop engine
        # whenever the workload is state independent (bit-identical to the
        # DES, just faster) and the DES otherwise; "vectorized" fails fast
        # with the blocker list rather than silently falling back.
        engine_mode = spec.engine_mode if spec.engine_mode is not None else "auto"
        task_fn: Callable[..., Any] = run_simulation_task
        if engine_mode != "des":
            from ..simulation.vectorized_replay import (
                run_vectorized_simulation_task,
                vectorization_blockers,
            )

            blockers = vectorization_blockers(
                arrival_factory=scenario.arrival_factory, failures=failures
            )
            if scenario.destination_policy is not None:
                # A scenario-level policy is a factory, not a built policy;
                # conservatively refused even if it would build uniform.
                blockers.append(
                    "scenario declares a custom destination policy "
                    "(only the default uniform policy vectorizes)"
                )
            if not blockers:
                task_fn = run_vectorized_simulation_task
            elif engine_mode == "vectorized":
                raise ExperimentError(
                    "engine_mode='vectorized' but the workload cannot be "
                    "vectorized: " + "; ".join(blockers)
                )
        simulation = build_simulation_plan(
            point_runs,
            replications=spec.replications,
            label=label if label is not None else _default_label(spec, architecture),
            destination_policy=scenario.destination_policy,
            arrival_factory=scenario.arrival_factory,
            task_fn=task_fn,
        )

    return ExperimentPlan(
        spec=spec,
        scenario=scenario,
        parameters=parameters,
        architecture=architecture,
        points=points,
        systems=systems,
        simulation=simulation,
        analysis_kind=analysis_kind,
    )


# ---------------------------------------------------------------------------
# Stage 3: execution
# ---------------------------------------------------------------------------


@dataclass
class ExperimentOutcome:
    """Everything a collector needs: the plan plus both execution passes."""

    plan: ExperimentPlan
    analysis: Optional[GridEvaluation]
    replicated: Optional[List[ReplicatedResult]]


class ExperimentRunner:
    """Uniform execution policy for every pipeline campaign.

    One runner owns one :class:`~repro.parallel.SweepEngine`, so backend
    selection (serial / pool / socket / ssh), checkpoint journaling and
    progress reporting behave identically for *every* driver built on the
    pipeline — including studies (like the ablations) that historically
    hand-rolled their own execution plumbing.

    Pass ``cache`` (a :class:`~repro.cache.ResultCache` or a directory
    path) to memoise whole campaigns by content address: a plan whose
    (spec, code-version) key already has an entry is served from disk,
    bit-identically, without executing either pass.
    """

    def __init__(
        self,
        engine: Optional[SweepEngine] = None,
        jobs: Optional[int] = 1,
        backend: Optional[Union[str, Backend]] = None,
        checkpoint: Optional[Union[str, SweepJournal]] = None,
        progress: Optional[Callable[[int, int, str], None]] = None,
        cache: Optional[Any] = None,
    ) -> None:
        self.engine = resolve_engine(
            jobs, engine, backend, progress=progress, checkpoint=checkpoint
        )
        from ..cache.store import coerce_cache

        self.cache = coerce_cache(cache)

    # -- execution passes --------------------------------------------------

    def run_analysis(self, evaluations: Sequence[Tuple[Any, ModelConfig]]) -> GridEvaluation:
        """Evaluate the closed-form model for a grid (vectorized, bit-exact)."""
        return evaluate_latency_grid(evaluations)

    def run_plan_analysis(self, plan: ExperimentPlan) -> GridEvaluation:
        """Evaluate the analysis pass with the model ``plan.analysis_kind`` names."""
        if plan.analysis_kind == "cluster-of-clusters":
            from ..core.cluster_of_clusters import evaluate_heterogeneous_grid

            return evaluate_heterogeneous_grid(plan.heterogeneous_evaluations())
        return self.run_analysis(plan.analysis_evaluations())

    def run_simulation_plan(self, simulation: SimulationPlan) -> List[ReplicatedResult]:
        """Execute a simulation plan and fold results per point, in order."""
        results = self.engine.run(simulation.tasks)
        per_point: List[List[Any]] = [[] for _ in range(simulation.n_points)]
        for point_idx, result in zip(simulation.task_point, results):
            per_point[point_idx].append(result)
        return [aggregate_replications(group) for group in per_point]

    def run_tasks(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Run raw sweep tasks through the campaign's engine (task order)."""
        return self.engine.run(tasks)

    # -- the full pipeline -------------------------------------------------

    def run_outcome(self, plan: ExperimentPlan) -> "ExperimentOutcome":
        """Execute ``plan``'s passes, or serve them from the result cache.

        With a cache attached, a plan whose content-addressed key has an
        entry skips both passes entirely; a miss computes as usual and then
        fills the entry.  Plans the cache cannot key (non-default paper
        parameters) always compute.
        """
        if self.cache is not None:
            cached = self.cache.get_outcome(plan)
            if cached is not None:
                return cached
        analysis = self.run_plan_analysis(plan) if plan.include_analysis else None
        replicated = (
            self.run_simulation_plan(plan.simulation) if plan.include_simulation else None
        )
        outcome = ExperimentOutcome(plan=plan, analysis=analysis, replicated=replicated)
        if self.cache is not None:
            self.cache.put_outcome(plan, outcome)
        return outcome

    def run(self, plan: ExperimentPlan, collector: Optional["Collector"] = None):
        """Execute ``plan`` and fold it through ``collector`` (table default)."""
        outcome = self.run_outcome(plan)
        if collector is None:
            collector = TableCollector()
        return collector.collect(outcome)


# ---------------------------------------------------------------------------
# Stages 4–5: collectors and the default artifact
# ---------------------------------------------------------------------------


class Collector:
    """Folds an :class:`ExperimentOutcome` into a result artefact.

    Driver modules subclass this to produce their traditional result types
    (``FigureResult``, ``BlockingRatioStudy``, ``AblationStudy``);
    :class:`TableCollector` is the generic artefact behind ``repro run``.
    """

    def collect(self, outcome: ExperimentOutcome):
        """Return the artefact for ``outcome``."""
        raise NotImplementedError


@dataclass(frozen=True)
class ExperimentPointResult:
    """One grid point of a generic pipeline artefact."""

    num_clusters: int
    message_bytes: Union[int, float]
    generation_rate: float
    analysis_latency_ms: Optional[float] = None
    simulation_latency_ms: Optional[float] = None
    simulation_ci_half_width_ms: Optional[float] = None
    replications: int = 0
    #: Fault-run columns (None on always-up runs, keeping legacy row shape).
    availability: Optional[float] = None
    throughput_msg_s: Optional[float] = None
    dropped_messages: Optional[int] = None

    @property
    def relative_error(self) -> Optional[float]:
        """Analysis-vs-simulation relative error (None unless both ran)."""
        if self.analysis_latency_ms is None or self.simulation_latency_ms in (None, 0.0):
            return None
        return abs(self.analysis_latency_ms - self.simulation_latency_ms) / abs(
            self.simulation_latency_ms
        )

    def as_dict(self) -> Dict[str, Any]:
        """Flat row for the table formatters."""
        row: Dict[str, Any] = {
            "clusters": self.num_clusters,
            "message_bytes": self.message_bytes,
            "rate": self.generation_rate,
        }
        if self.analysis_latency_ms is not None:
            row["analysis_ms"] = self.analysis_latency_ms
        if self.simulation_latency_ms is not None:
            row["simulation_ms"] = self.simulation_latency_ms
            if self.relative_error is not None:
                row["rel_error"] = self.relative_error
        if self.availability is not None:
            row["availability"] = self.availability
        if self.throughput_msg_s is not None:
            row["throughput_msg_s"] = self.throughput_msg_s
        if self.dropped_messages is not None:
            row["dropped"] = self.dropped_messages
        return row


@dataclass
class ExperimentResult:
    """The generic pipeline artefact: one row per grid point."""

    spec: ExperimentSpec
    scenario_name: str
    architecture: str
    points: List[ExperimentPointResult] = field(default_factory=list)

    def to_rows(self) -> List[Dict[str, Any]]:
        """Rows (grid order) for the table/CSV formatters."""
        return [p.as_dict() for p in self.points]

    def to_text_table(self) -> str:
        """Aligned plain-text table of all points."""
        return format_fixed_width_table(self.to_rows())

    def to_markdown(self) -> str:
        """Markdown table of all points."""
        return format_markdown_table(self.to_rows())

    def accuracy_summary(self) -> Optional[ComparisonSummary]:
        """MAPE/RMSE of analysis vs simulation over points carrying both."""
        predicted = [
            p.analysis_latency_ms
            for p in self.points
            if p.analysis_latency_ms is not None and p.simulation_latency_ms is not None
        ]
        observed = [
            p.simulation_latency_ms
            for p in self.points
            if p.analysis_latency_ms is not None and p.simulation_latency_ms is not None
        ]
        if not predicted:
            return None
        return compare_series(predicted, observed)


class TableCollector(Collector):
    """The default collector: folds an outcome into an :class:`ExperimentResult`."""

    def collect(self, outcome: ExperimentOutcome) -> ExperimentResult:
        plan = outcome.plan
        result = ExperimentResult(
            spec=plan.spec,
            scenario_name=plan.scenario.name,
            architecture=plan.architecture,
        )
        for point in plan.points:
            analysis_ms: Optional[float] = None
            sim_ms: Optional[float] = None
            ci_ms: Optional[float] = None
            replications = 0
            availability: Optional[float] = None
            throughput: Optional[float] = None
            dropped: Optional[int] = None
            if outcome.analysis is not None:
                analysis_ms = float(outcome.analysis.mean_latency_ms[point.index])
            if outcome.replicated is not None:
                agg = outcome.replicated[point.index]
                sim_ms = agg.mean_latency_ms
                replications = agg.replications
                if agg.latency_interval is not None:
                    ci_ms = agg.latency_interval.half_width * 1e3
                # Fault runs carry availability on every replication; the
                # columns average (availability, throughput) and sum (drops)
                # across replications, and stay absent on always-up runs.
                fault_reps = [
                    rep for rep in agg.per_replication if rep.availability is not None
                ]
                if fault_reps:
                    availability = sum(
                        rep.mean_availability or 0.0 for rep in fault_reps
                    ) / len(fault_reps)
                    throughput = sum(
                        rep.throughput_msg_s for rep in fault_reps
                    ) / len(fault_reps)
                    dropped = sum(rep.dropped_messages for rep in fault_reps)
            result.points.append(
                ExperimentPointResult(
                    num_clusters=point.num_clusters,
                    message_bytes=point.message_bytes,
                    generation_rate=point.generation_rate,
                    analysis_latency_ms=analysis_ms,
                    simulation_latency_ms=sim_ms,
                    simulation_ci_half_width_ms=ci_ms,
                    replications=replications,
                    availability=availability,
                    throughput_msg_s=throughput,
                    dropped_messages=dropped,
                )
            )
        return result
