"""Experiment harness: paper scenarios, figure drivers, ratio study and ablations."""

from .ablations import (
    AblationRow,
    AblationStudy,
    fixed_point_vs_exact_mva,
    service_distribution_ablation,
    sweep_generation_rate,
    sweep_message_size,
    sweep_switch_latency,
    sweep_switch_ports,
)
from .blocking_ratio import (
    BlockingRatioStudy,
    RatioPoint,
    run_blocking_ratio_study,
)
from .figures import FIGURE_SPECS, FigurePoint, FigureResult, FigureSpec, run_figure
from .report import ReproductionReport, ShapeChecks, generate_report
from .scenarios import (
    CASE_1,
    CASE_2,
    PAPER_PARAMETERS,
    SCENARIOS,
    NetworkScenario,
    PaperParameters,
    build_scenario_system,
)

__all__ = [
    "NetworkScenario",
    "CASE_1",
    "CASE_2",
    "SCENARIOS",
    "PaperParameters",
    "PAPER_PARAMETERS",
    "build_scenario_system",
    "FigureSpec",
    "FigurePoint",
    "FigureResult",
    "FIGURE_SPECS",
    "run_figure",
    "ReproductionReport",
    "ShapeChecks",
    "generate_report",
    "RatioPoint",
    "BlockingRatioStudy",
    "run_blocking_ratio_study",
    "AblationRow",
    "AblationStudy",
    "sweep_switch_ports",
    "sweep_switch_latency",
    "sweep_generation_rate",
    "sweep_message_size",
    "fixed_point_vs_exact_mva",
    "service_distribution_ablation",
]
