"""Ablation and sensitivity studies around the paper's design choices.

DESIGN.md calls out four modelling decisions worth probing:

1. **Switch fabric size** (Pr = 24): the C = 16 dip in Figures 4–7 comes
   from both C and N0 dropping to or below Pr; sweeping Pr moves the dip.
2. **Switch latency** (α_sw = 10 µs): how strongly the fat-tree's
   ``(2d−1)·α_sw`` term shapes the curves.
3. **Offered load** (λ = 0.25 msg/s, M ∈ {512, 1024}): the paper's Table-2
   operating point leaves queues almost idle; sweeping λ and M shows when
   queueing (and the finite-source correction) starts to matter.
4. **Finite-source correction** (Eq. 7) vs the *exact* closed-network
   solution (MVA): how good the paper's approximation is.

The closed-form sweeps (1–3) are evaluated through the vectorized
:func:`~repro.core.vectorized.evaluate_latency_grid` — one NumPy pass for
the whole sweep, bit-identical to the historical per-row
:class:`~repro.core.model.AnalyticalModel` evaluations.  The MVA
comparison (4) and the simulator-based service-distribution ablation run
as ordinary sweep tasks through the pipeline's
:class:`~repro.experiments.pipeline.ExperimentRunner`, so *every* ablation
honours the same ``--jobs``/``--backend``/``--checkpoint`` execution
policy as the other drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.model import AnalyticalModel, ModelConfig
from ..core.routing import outgoing_probability
from ..core.service_centers import build_service_centers
from ..core.vectorized import GridEvaluation, evaluate_latency_grid
from ..network.switch import SwitchFabric
from ..parallel import Backend, SweepEngine, SweepJournal, SweepTask
from ..queueing.mva import MVAStation, mean_value_analysis
from ..simulation.simulator import MultiClusterSimulator, SimulationConfig
from ..viz.tables import format_markdown_table
from .pipeline import ExperimentRunner
from .scenarios import (
    CASE_1,
    NetworkScenario,
    PAPER_PARAMETERS,
    PaperParameters,
    build_scenario_system,
)

__all__ = [
    "AblationRow",
    "AblationStudy",
    "sweep_switch_ports",
    "sweep_switch_latency",
    "sweep_generation_rate",
    "sweep_message_size",
    "fixed_point_vs_exact_mva",
    "service_distribution_ablation",
]


@dataclass(frozen=True)
class AblationRow:
    """One configuration point of an ablation study."""

    parameter: str
    value: float
    mean_latency_ms: float
    extra: Dict[str, float]

    def as_dict(self) -> Dict[str, object]:
        """Flat row for tables."""
        row: Dict[str, object] = {
            "parameter": self.parameter,
            "value": self.value,
            "mean_latency_ms": self.mean_latency_ms,
        }
        row.update(self.extra)
        return row


@dataclass
class AblationStudy:
    """A named collection of ablation rows."""

    name: str
    rows: List[AblationRow]

    def to_rows(self) -> List[Dict[str, object]]:
        """Rows for the table formatters."""
        return [r.as_dict() for r in self.rows]

    def to_markdown(self) -> str:
        """The study as a Markdown table."""
        return f"### {self.name}\n\n" + format_markdown_table(self.to_rows())

    def latencies(self) -> List[float]:
        """Just the latency column, in row order."""
        return [r.mean_latency_ms for r in self.rows]


def _with_switch(parameters: PaperParameters, switch: Optional[SwitchFabric]) -> PaperParameters:
    """Parameters with the switch fabric swapped (None keeps the original)."""
    return parameters if switch is None else replace(parameters, switch=switch)


def _analysis_sweep(
    name: str,
    parameter: str,
    values: Sequence[float],
    evaluations: Sequence[Tuple[object, ModelConfig]],
    extra: Optional[Callable[[GridEvaluation, int], Dict[str, float]]] = None,
) -> AblationStudy:
    """Evaluate a closed-form sweep in one vectorized grid pass.

    Bit-identical to evaluating each row with a scalar
    :class:`AnalyticalModel` (the grid's per-point contract), so this
    preserves the results of the historical per-row sweep tasks exactly.
    """
    grid = evaluate_latency_grid(evaluations)
    rows = [
        AblationRow(
            parameter,
            float(value),
            float(grid.mean_latency_ms[i]),
            extra(grid, i) if extra is not None else {},
        )
        for i, value in enumerate(values)
    ]
    return AblationStudy(name, rows)


def sweep_switch_ports(
    ports_values: Sequence[int] = (4, 8, 16, 24, 32, 64),
    scenario: NetworkScenario = CASE_1,
    num_clusters: int = 16,
    architecture: str = "non-blocking",
    message_bytes: float = 1024.0,
    parameters: PaperParameters = PAPER_PARAMETERS,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> AblationStudy:
    """Ablation 1: how the switch port count Pr shapes the latency.

    (``jobs``/``engine``/``backend``/``checkpoint`` are accepted for
    interface compatibility; the sweep is closed-form and evaluated in one
    in-process vectorized pass.)
    """
    evaluations = [
        (
            build_scenario_system(
                scenario,
                num_clusters,
                _with_switch(
                    parameters,
                    SwitchFabric(ports=ports, latency_s=parameters.switch.latency_s),
                ),
            ),
            ModelConfig(
                architecture=architecture,
                message_bytes=message_bytes,
                generation_rate=parameters.generation_rate,
            ),
        )
        for ports in ports_values
    ]
    return _analysis_sweep("switch-port-count", "switch_ports", list(ports_values), evaluations)


def sweep_switch_latency(
    latency_values_us: Sequence[float] = (0.0, 5.0, 10.0, 20.0, 50.0, 100.0),
    scenario: NetworkScenario = CASE_1,
    num_clusters: int = 16,
    architecture: str = "non-blocking",
    message_bytes: float = 1024.0,
    parameters: PaperParameters = PAPER_PARAMETERS,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> AblationStudy:
    """Ablation 2: sensitivity to the per-switch latency α_sw (closed-form)."""
    evaluations = [
        (
            build_scenario_system(
                scenario,
                num_clusters,
                _with_switch(
                    parameters,
                    SwitchFabric(ports=parameters.switch.ports, latency_s=latency_us * 1e-6),
                ),
            ),
            ModelConfig(
                architecture=architecture,
                message_bytes=message_bytes,
                generation_rate=parameters.generation_rate,
            ),
        )
        for latency_us in latency_values_us
    ]
    return _analysis_sweep(
        "switch-latency", "switch_latency_us", list(latency_values_us), evaluations
    )


def sweep_generation_rate(
    rate_values: Sequence[float] = (0.25, 1.0, 10.0, 100.0, 500.0, 1000.0),
    scenario: NetworkScenario = CASE_1,
    num_clusters: int = 16,
    architecture: str = "non-blocking",
    message_bytes: float = 1024.0,
    parameters: PaperParameters = PAPER_PARAMETERS,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> AblationStudy:
    """Ablation 3a: offered load sweep (the paper's λ = 0.25 is nearly idle).

    Closed-form and vectorized; the per-row ICN2 utilisation and
    finite-source throttling factor come straight from the grid (the same
    divisions the scalar report performs, so the extras are bit-identical
    too).
    """
    system = build_scenario_system(scenario, num_clusters, parameters)
    evaluations = [
        (
            system,
            ModelConfig(
                architecture=architecture,
                message_bytes=message_bytes,
                generation_rate=float(rate),
            ),
        )
        for rate in rate_values
    ]

    def extras(grid: GridEvaluation, i: int) -> Dict[str, float]:
        return {
            "icn2_utilization": float(grid.icn2_utilization[i]),
            "throttling_factor": float(grid.throttling_factor[i]),
        }

    return _analysis_sweep(
        "generation-rate", "generation_rate", list(rate_values), evaluations, extra=extras
    )


def sweep_message_size(
    size_values: Sequence[float] = (64, 256, 512, 1024, 4096, 16384),
    scenario: NetworkScenario = CASE_1,
    num_clusters: int = 16,
    architecture: str = "non-blocking",
    parameters: PaperParameters = PAPER_PARAMETERS,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> AblationStudy:
    """Ablation 3b: message-size sweep beyond the paper's 512/1024 bytes."""
    system = build_scenario_system(scenario, num_clusters, parameters)
    evaluations = [
        (
            system,
            ModelConfig(
                architecture=architecture,
                message_bytes=float(size),
                generation_rate=parameters.generation_rate,
            ),
        )
        for size in size_values
    ]
    return _analysis_sweep("message-size", "message_bytes", list(size_values), evaluations)


def _fixed_point_method_row(
    scenario: NetworkScenario,
    num_clusters: int,
    architecture: str,
    message_bytes: float,
    generation_rate: float,
    parameters: PaperParameters,
) -> AblationRow:
    """The Eq. (7) fixed-point latency (picklable sweep task)."""
    system = build_scenario_system(scenario, num_clusters, parameters)
    report = AnalyticalModel(
        system,
        ModelConfig(
            architecture=architecture,
            message_bytes=message_bytes,
            generation_rate=generation_rate,
        ),
    ).evaluate()
    return AblationRow(
        "method", 0.0, report.mean_latency_ms, {"label": 0.0, "throughput": float("nan")}
    )


def _exact_mva_method_row(
    scenario: NetworkScenario,
    num_clusters: int,
    architecture: str,
    message_bytes: float,
    generation_rate: float,
    parameters: PaperParameters,
) -> AblationRow:
    """The exact closed-network (MVA) latency (picklable sweep task).

    The closed model has the N processors as a delay (think) station with
    mean think time 1/λ, and the ICN1 / ECN1 / ICN2 centres visited with
    ratios (1−P), 2P and P respectively.  Each of the C ICN1s and C ECN1s
    is its own station: by symmetry a message visits a *specific* cluster's
    ICN1 with probability (1−P)/C and its ECN1 twice with probability P,
    i.e. visit ratio 2P/C.
    """
    system = build_scenario_system(scenario, num_clusters, parameters)
    n0 = system.processors_per_cluster
    c = system.num_clusters
    n_total = system.total_processors
    p_out = outgoing_probability(c, n0)
    centers = build_service_centers(system, architecture, message_bytes)

    stations = [
        MVAStation("think", visit_ratio=1.0, service_time=1.0 / generation_rate, is_delay=True),
        MVAStation("icn2", visit_ratio=p_out, service_time=centers.icn2_service_time),
    ]
    for i in range(c):
        stations.append(
            MVAStation(
                f"icn1[{i}]",
                visit_ratio=(1.0 - p_out) / c,
                service_time=centers.icn1_service_time,
            )
        )
        stations.append(
            MVAStation(
                f"ecn1[{i}]",
                visit_ratio=2.0 * p_out / c,
                service_time=centers.ecn1_service_time,
            )
        )
    mva = mean_value_analysis(stations, population=n_total)
    think_residence = 1.0 / generation_rate
    exact_latency_s = max(mva.cycle_time - think_residence, 0.0)
    return AblationRow(
        "method", 1.0, exact_latency_s * 1e3, {"label": 1.0, "throughput": mva.throughput}
    )


def fixed_point_vs_exact_mva(
    scenario: NetworkScenario = CASE_1,
    num_clusters: int = 16,
    architecture: str = "non-blocking",
    message_bytes: float = 1024.0,
    generation_rate: float = 0.25,
    parameters: PaperParameters = PAPER_PARAMETERS,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> AblationStudy:
    """Ablation 4: the Eq. (7) fixed point vs the exact closed-network (MVA) solution.

    The two methods are independent sweep tasks executed through the
    pipeline's runner, so — like every other ablation — the study accepts
    the full ``--jobs``/``--backend``/``--checkpoint`` execution policy
    (it used to reject backend flags outright).
    """
    args = (scenario, num_clusters, architecture, message_bytes, generation_rate, parameters)
    tasks = [
        SweepTask(fn=_fixed_point_method_row, args=args, label="method=fixed-point"),
        SweepTask(fn=_exact_mva_method_row, args=args, label="method=exact-mva"),
    ]
    runner = ExperimentRunner(engine=engine, jobs=jobs, backend=backend, checkpoint=checkpoint)
    rows = runner.run_tasks(tasks)
    return AblationStudy("fixed-point-vs-exact-mva", rows)


def _simulate_service_distribution(system, config: SimulationConfig):
    """Run one simulator configuration (picklable sweep task)."""
    return MultiClusterSimulator(system, config).run()


def service_distribution_ablation(
    scenario: NetworkScenario = CASE_1,
    num_clusters: int = 8,
    architecture: str = "non-blocking",
    message_bytes: float = 1024.0,
    num_messages: int = 2_000,
    seed: int = 7,
    parameters: PaperParameters = PAPER_PARAMETERS,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> AblationStudy:
    """Simulator ablation: exponential (paper assumption) vs deterministic service."""
    system = build_scenario_system(scenario, num_clusters, parameters)
    variants = (True, False)
    tasks = [
        SweepTask(
            fn=_simulate_service_distribution,
            args=(
                system,
                SimulationConfig(
                    architecture=architecture,
                    message_bytes=message_bytes,
                    generation_rate=parameters.generation_rate,
                    num_messages=num_messages,
                    seed=seed,
                    exponential_service=exponential,
                ),
            ),
            label=f"exponential_service={exponential}",
        )
        for exponential in variants
    ]
    runner = ExperimentRunner(engine=engine, jobs=jobs, backend=backend, checkpoint=checkpoint)
    results = runner.run_tasks(tasks)
    rows = [
        AblationRow(
            "exponential_service",
            1.0 if exponential else 0.0,
            result.mean_latency_ms,
            {"remote_fraction": result.remote_fraction},
        )
        for exponential, result in zip(variants, results)
    ]
    return AblationStudy("service-distribution", rows)
