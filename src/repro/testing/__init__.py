"""Deterministic test harnesses for the distributed execution layer."""

from .chaos import ChaosController, ChaosSpec, controller, parse_chaos_spec, reset, set_role

__all__ = [
    "ChaosSpec",
    "ChaosController",
    "parse_chaos_spec",
    "controller",
    "set_role",
    "reset",
]
