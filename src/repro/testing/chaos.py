"""Deterministic chaos harness for the distributed backends and service.

Activated by the ``REPRO_CHAOS`` environment variable, which carries a
comma-separated ``key=value`` schedule, e.g.::

    REPRO_CHAOS="seed=7,kill-after=1,kill-limit=1,state=/tmp/chaos" \\
        python -m repro run SPEC.json --backend socket --workers 2

The schedule injects faults at three hook points:

* **task hooks** (worker task loop, pool ``invoke_task``): ``kill-after=N``
  exits the process with status 137 right after its N-th task *before* the
  result is delivered (socket workers lose the result frame, pool workers
  break the executor); ``hang-after=N`` makes a socket worker stop
  heartbeating and go silent instead, exercising dead-peer detection.
* **frame hooks** (:mod:`repro.parallel.protocol`): ``drop-send=P`` closes
  the connection instead of sending a frame with probability ``P``;
  ``truncate-send=P`` sends half the frame then closes (a torn write);
  ``delay-send-ms=MS`` sleeps before every send.
* **limits**: ``kill-limit`` / ``drop-limit`` / ``truncate-limit`` cap how
  many times each event fires.  With ``state=DIR`` the caps are *fleet
  global* — events claim ``O_EXCL`` token files in ``DIR``, so "exactly
  one worker dies" holds across any number of processes; without a state
  directory the caps are per process.

``scope`` selects which processes inject (``worker`` — the default —
``coordinator``, or ``all``).  Worker-ness is explicit for socket workers
(:func:`set_role` in ``repro.parallel.worker.main``) and inferred for pool
workers (they have a ``multiprocessing`` parent process); everything else
counts as the coordinator.

Determinism: each process draws its schedule from a ``random.Random``
seeded with ``"{seed}:{role}"`` — reproducible per (seed, role), and, with
the token-file limits, reproducible fleet-wide.  The harness asserts
nothing itself; the contract under test is that every chaos run still
produces **bit-identical results or a clean, typed error**.
"""

from __future__ import annotations

import dataclasses
import os
import random
import socket
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError

__all__ = [
    "ENV_VAR",
    "ChaosSpec",
    "ChaosController",
    "parse_chaos_spec",
    "controller",
    "set_role",
    "reset",
]

#: Environment variable carrying the chaos schedule.
ENV_VAR = "REPRO_CHAOS"

_SCOPES = ("worker", "coordinator", "all")

#: How long a hung worker sleeps (the coordinator's dead-peer timeout fires
#: long before this; the leftover process is reaped at backend shutdown).
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed ``REPRO_CHAOS`` schedule."""

    seed: int = 0
    scope: str = "worker"
    kill_after: Optional[int] = None
    kill_limit: Optional[int] = None
    hang_after: Optional[int] = None
    hang_limit: Optional[int] = None
    drop_send: float = 0.0
    drop_limit: Optional[int] = None
    truncate_send: float = 0.0
    truncate_limit: Optional[int] = None
    delay_send_ms: float = 0.0
    state_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scope not in _SCOPES:
            raise ConfigurationError(f"chaos scope must be one of {_SCOPES}, got {self.scope!r}")
        for name in ("kill_after", "kill_limit", "hang_after", "hang_limit",
                     "drop_limit", "truncate_limit"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(f"chaos {name} must be >= 1, got {value!r}")
        for name in ("drop_send", "truncate_send"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"chaos {name} must be a probability in [0, 1], got {value!r}"
                )
        if self.delay_send_ms < 0:
            raise ConfigurationError(
                f"chaos delay_send_ms must be non-negative, got {self.delay_send_ms!r}"
            )


_KEYS = {
    "seed": ("seed", int),
    "scope": ("scope", str),
    "kill-after": ("kill_after", int),
    "kill-limit": ("kill_limit", int),
    "hang-after": ("hang_after", int),
    "hang-limit": ("hang_limit", int),
    "drop-send": ("drop_send", float),
    "drop-limit": ("drop_limit", int),
    "truncate-send": ("truncate_send", float),
    "truncate-limit": ("truncate_limit", int),
    "delay-send-ms": ("delay_send_ms", float),
    "state": ("state_dir", str),
}


def parse_chaos_spec(text: str) -> ChaosSpec:
    """Parse a ``key=value,key=value`` chaos schedule."""
    values: Dict[str, object] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise ConfigurationError(
                f"chaos schedule items must be key=value, got {item!r} "
                f"(known keys: {', '.join(sorted(_KEYS))})"
            )
        key, _, raw = item.partition("=")
        key = key.strip()
        if key not in _KEYS:
            raise ConfigurationError(
                f"unknown chaos key {key!r}; known keys: {', '.join(sorted(_KEYS))}"
            )
        field, convert = _KEYS[key]
        try:
            values[field] = convert(raw.strip())
        except ValueError:
            raise ConfigurationError(
                f"invalid value {raw.strip()!r} for chaos key {key!r}"
            ) from None
    return ChaosSpec(**values)


class ChaosController:
    """Per-process fault injector driving one parsed schedule."""

    def __init__(self, spec: ChaosSpec, role: str) -> None:
        self.spec = spec
        self.role = role
        self.tasks_executed = 0
        self._used: Dict[str, int] = {}
        # repro.testing is outside the REP101 runtime scope: a seeded
        # instance keyed by (seed, role) is deterministic per process kind
        # (string seeds hash via SHA-512, not the randomised str hash).
        self._rng = random.Random(f"{spec.seed}:{role}")

    # -- limit claims ------------------------------------------------------

    def _claim(self, kind: str, limit: Optional[int]) -> bool:
        """Claim one firing of ``kind`` against its (optional) cap.

        With a state directory the claim is an ``O_EXCL`` token file, so
        the cap holds across the whole process fleet.
        """
        if limit is None:
            return True
        if self.spec.state_dir:
            for index in range(limit):
                token = os.path.join(self.spec.state_dir, f"{kind}-{index}.token")
                try:
                    handle = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    continue
                except OSError:
                    return False
                os.close(handle)
                return True
            return False
        used = self._used.get(kind, 0)
        if used >= limit:
            return False
        self._used[kind] = used + 1
        return True

    # -- task hooks --------------------------------------------------------

    def after_task(self) -> Optional[str]:
        """Record one executed task; returns ``"kill"``/``"hang"`` to enact."""
        self.tasks_executed += 1
        spec = self.spec
        if (
            spec.kill_after is not None
            and self.tasks_executed >= spec.kill_after
            and self._claim("kill", spec.kill_limit)
        ):
            return "kill"
        if (
            spec.hang_after is not None
            and self.tasks_executed >= spec.hang_after
            and self._claim("hang", spec.hang_limit)
        ):
            return "hang"
        return None

    def maybe_kill(self) -> None:
        """Task hook for pool workers: enact a scheduled kill in place."""
        if self.after_task() == "kill":
            os._exit(137)

    def hang(self) -> None:  # pragma: no cover - exercised via subprocesses
        """Go silent (the coordinator's dead-peer timeout reaps us)."""
        time.sleep(HANG_SECONDS)

    # -- frame hooks -------------------------------------------------------

    def before_send(self, sock: socket.socket, data: bytes) -> None:
        """Maybe delay, drop or truncate an outgoing frame.

        Dropping and truncating close the socket and raise
        :class:`ConnectionError` — exactly what a real torn connection
        looks like to the caller.
        """
        spec = self.spec
        if spec.delay_send_ms > 0:
            time.sleep(spec.delay_send_ms / 1000.0)
        if spec.drop_send > 0 and self._rng.random() < spec.drop_send:
            if self._claim("drop", spec.drop_limit):
                sock.close()
                raise ConnectionError("chaos: connection dropped before send")
        if spec.truncate_send > 0 and self._rng.random() < spec.truncate_send:
            if self._claim("truncate", spec.truncate_limit):
                try:
                    sock.sendall(data[: max(1, len(data) // 2)])
                finally:
                    sock.close()
                raise ConnectionError("chaos: frame truncated mid-send")


# -- process-global activation ------------------------------------------------

_role_override: Optional[str] = None
_cache: Dict[str, Optional[ChaosController]] = {}
_parsed: Optional[ChaosSpec] = None
_parsed_text: Optional[str] = None


def set_role(role: str) -> None:
    """Declare this process's role explicitly (socket workers do)."""
    global _role_override
    if role not in ("worker", "coordinator"):
        raise ConfigurationError(f"role must be 'worker' or 'coordinator', got {role!r}")
    _role_override = role


def current_role() -> str:
    """This process's role: explicit override, else inferred.

    Pool workers are child processes of a ``multiprocessing`` executor, so
    a non-``None`` parent process means "worker"; the main process (and
    anything else) is the coordinator.
    """
    if _role_override is not None:
        return _role_override
    import multiprocessing

    return "worker" if multiprocessing.parent_process() is not None else "coordinator"


def controller() -> Optional[ChaosController]:
    """The process's injector, or ``None`` when chaos is off or out of scope.

    The ``REPRO_CHAOS`` text is parsed once per value and controllers are
    cached per role, so this is cheap enough for per-frame hook sites.
    """
    global _parsed, _parsed_text
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    if text != _parsed_text:
        _parsed = parse_chaos_spec(text)
        _parsed_text = text
        _cache.clear()
    role = current_role()
    if role not in _cache:
        spec = _parsed
        in_scope = spec.scope == "all" or spec.scope == role
        _cache[role] = ChaosController(spec, role) if in_scope else None
    return _cache[role]


def reset() -> None:
    """Forget parsed state and controllers (tests flip the env between runs)."""
    global _parsed, _parsed_text, _role_override
    _parsed = None
    _parsed_text = None
    _role_override = None
    _cache.clear()


def describe(spec: ChaosSpec) -> str:
    """One-line schedule summary for logs."""
    parts = [f"seed={spec.seed}", f"scope={spec.scope}"]
    for field in dataclasses.fields(spec):
        if field.name in ("seed", "scope"):
            continue
        value = getattr(spec, field.name)
        if value not in (None, 0, 0.0):
            parts.append(f"{field.name}={value}")
    return ", ".join(parts)
