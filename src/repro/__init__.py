"""repro — reproduction of "Performance Analysis of Heterogeneous Multi-Cluster Systems".

The package implements the analytical queueing model of Javadi, Akbari and
Abawajy (ICPP Workshops 2005) for heterogeneous multi-cluster systems, the
blocking and non-blocking interconnect models it relies on, and the
discrete-event simulators used to validate it, plus the experiment harness
that regenerates every figure of the paper's evaluation.

Quickstart
----------
>>> from repro import AnalyticalModel, ModelConfig, paper_evaluation_system
>>> from repro.network import GIGABIT_ETHERNET, FAST_ETHERNET
>>> system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
>>> report = AnalyticalModel(system, ModelConfig(message_bytes=1024)).evaluate()
>>> report.mean_latency_ms > 0
True

Subpackages
-----------
``repro.des``
    Discrete-event simulation kernel (SimPy-compatible subset).
``repro.queueing``
    Queueing-theory substrate (M/M/1, M/M/c, M/G/1, Jackson, MVA, ...).
``repro.topology``
    Fat-tree, linear switch array and extension topologies.
``repro.network``
    Technologies, switches and the blocking / non-blocking service models.
``repro.cluster``
    The HMSCS system model (clusters, processors, presets).
``repro.core``
    The paper's analytical model (routing, traffic, fixed point, latency).
``repro.workload``
    Arrival processes, destination policies, message sizes and traces.
``repro.simulation``
    The validation simulator and analysis-vs-simulation comparison.
``repro.parallel``
    Process-pool sweep engine and deterministic per-task seeding.
``repro.experiments``
    Scenario tables, figure drivers, the blocking-ratio study and ablations.
``repro.stats``
    Confidence intervals, series comparison and streaming observation sinks.
``repro.cache``
    Content-addressed result cache (spec + code-version → stored outcome).
``repro.service``
    The ``repro serve`` HTTP API: warm worker pool over the result cache.
``repro.analysis``
    The ``repro lint`` domain linter (reproducibility static analysis).
``repro.viz``
    ASCII charts and table/CSV writers.

The rendered documentation lives in ``docs/`` (architecture map, spec
reference, CLI guide and HTTP service reference).
"""

from ._version import __version__
from .cluster import (
    ClusterSpec,
    MultiClusterSystem,
    ProcessorType,
    das2_like_system,
    llnl_like_system,
    paper_evaluation_system,
)
from .core import (
    AnalyticalModel,
    ClusterOfClustersModel,
    HeterogeneousModelConfig,
    HeterogeneousReport,
    ModelConfig,
    PerformanceReport,
)
from .errors import (
    ConfigurationError,
    ConvergenceError,
    ExperimentError,
    ReproError,
    SimulationError,
    StabilityError,
    TopologyError,
)
from .experiments import (
    CASE_1,
    CASE_2,
    PAPER_PARAMETERS,
    FigureResult,
    run_blocking_ratio_study,
    run_figure,
)
from .network import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    BlockingNetworkModel,
    NetworkTechnology,
    NonBlockingNetworkModel,
    SwitchFabric,
)
from .simulation import (
    MultiClusterSimulator,
    SimulationConfig,
    SimulationResult,
    validate_against_analysis,
)

__all__ = [
    "__version__",
    # system model
    "ProcessorType",
    "ClusterSpec",
    "MultiClusterSystem",
    "paper_evaluation_system",
    "das2_like_system",
    "llnl_like_system",
    # analytical model
    "AnalyticalModel",
    "ModelConfig",
    "PerformanceReport",
    "ClusterOfClustersModel",
    "HeterogeneousModelConfig",
    "HeterogeneousReport",
    # networks
    "NetworkTechnology",
    "SwitchFabric",
    "GIGABIT_ETHERNET",
    "FAST_ETHERNET",
    "NonBlockingNetworkModel",
    "BlockingNetworkModel",
    # simulation
    "MultiClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "validate_against_analysis",
    # experiments
    "run_figure",
    "FigureResult",
    "run_blocking_ratio_study",
    "CASE_1",
    "CASE_2",
    "PAPER_PARAMETERS",
    # errors
    "ReproError",
    "ConfigurationError",
    "StabilityError",
    "ConvergenceError",
    "TopologyError",
    "SimulationError",
    "ExperimentError",
]
