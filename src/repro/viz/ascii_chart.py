"""ASCII line charts for terminal-friendly reproduction of the paper's figures.

The paper's figures plot average message latency against the number of
clusters for several (series, message-size) combinations; ``line_chart``
renders the same data as a character grid so the examples and the CLI can
show the curve shapes without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 70,
    height: int = 20,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
) -> str:
    """Render one or more series over a shared x axis as ASCII art.

    Parameters
    ----------
    x_values:
        Shared x coordinates.
    series:
        Mapping of series name to y values (same length as ``x_values``).
    width, height:
        Plot area size in characters.
    logx:
        Place x positions on a log scale (the figures use powers of two).
    """
    if not x_values:
        return "(no data)"
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length {len(ys)} != x length {len(x_values)}")
    if width < 10 or height < 5:
        raise ValueError("chart must be at least 10x5 characters")

    xs = [math.log(x) if logx else float(x) for x in x_values]
    all_y = [y for ys in series.values() for y in ys if math.isfinite(y)]
    if not all_y:
        return "(no finite data)"
    y_min, y_max = min(all_y), max(all_y)
    if math.isclose(y_min, y_max):
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if math.isclose(x_min, x_max):
        x_max = x_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return (height - 1) - int(round((y - y_min) / (y_max - y_min) * (height - 1)))

    for idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        cols = [to_col(x) for x in xs]
        rows = [to_row(y) if math.isfinite(y) else None for y in ys]
        # Draw straight segments between consecutive points.
        for i in range(len(cols) - 1):
            if rows[i] is None or rows[i + 1] is None:
                continue
            _draw_segment(grid, cols[i], rows[i], cols[i + 1], rows[i + 1], marker)
        for c, r in zip(cols, rows):
            if r is not None:
                grid[r][c] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_axis_width = max(len(f"{y_max:.3g}"), len(f"{y_min:.3g}"))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = f"{y_max:.3g}".rjust(y_axis_width)
        elif row_idx == height - 1:
            label = f"{y_min:.3g}".rjust(y_axis_width)
        else:
            label = " " * y_axis_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * y_axis_width + " +" + "-" * width)
    x_left = f"{x_values[0]:g}"
    x_right = f"{x_values[-1]:g}"
    padding = max(width - len(x_left) - len(x_right), 1)
    lines.append(" " * (y_axis_width + 2) + x_left + " " * padding + x_right)
    if x_label:
        lines.append(" " * (y_axis_width + 2) + x_label.center(width))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series.keys())
    )
    lines.append("legend: " + legend)
    if y_label:
        lines.insert(1 if title else 0, f"[y: {y_label}]")
    return "\n".join(lines)


def _draw_segment(grid: List[List[str]], c0: int, r0: int, c1: int, r1: int, marker: str) -> None:
    """Bresenham-style line between two grid cells using a dim marker."""
    steps = max(abs(c1 - c0), abs(r1 - r0))
    if steps == 0:
        return
    for s in range(steps + 1):
        t = s / steps
        c = int(round(c0 + (c1 - c0) * t))
        r = int(round(r0 + (r1 - r0) * t))
        if grid[r][c] == " ":
            grid[r][c] = "."


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
) -> str:
    """Render a horizontal bar chart (used for utilisation summaries)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(no data)"
    finite = [v for v in values if math.isfinite(v)]
    maximum = max(finite) if finite else 1.0
    if maximum <= 0:
        maximum = 1.0
    label_width = max(len(str(lbl)) for lbl in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar_len = int(round(value / maximum * width)) if math.isfinite(value) else 0
        lines.append(f"{str(label).rjust(label_width)} | {'#' * bar_len} {value:.4g}")
    return "\n".join(lines)
