"""Terminal-friendly visualisation: ASCII charts and table/CSV writers."""

from .ascii_chart import bar_chart, line_chart
from .tables import (
    format_fixed_width_table,
    format_markdown_table,
    rows_to_csv_text,
    write_csv,
)

__all__ = [
    "line_chart",
    "bar_chart",
    "format_markdown_table",
    "format_fixed_width_table",
    "rows_to_csv_text",
    "write_csv",
]
