"""Plain-text table and CSV rendering for experiment results."""

from __future__ import annotations

import csv
import io
from typing import Mapping, Optional, Sequence

__all__ = ["format_markdown_table", "format_fixed_width_table", "write_csv", "rows_to_csv_text"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_markdown_table(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dictionaries as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    header = "| " + " | ".join(cols) + " |"
    separator = "| " + " | ".join("---" for _ in cols) + " |"
    body = [
        "| " + " | ".join(_format_cell(row.get(col, "")) for col in cols) + " |" for row in rows
    ]
    return "\n".join([header, separator, *body])


def format_fixed_width_table(
    rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None
) -> str:
    """Render a list of dictionaries as an aligned fixed-width text table."""
    if not rows:
        return "(no data)"
    cols = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(cols)
    ]
    lines = [
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(cols)),
        "  ".join("-" * widths[i] for i in range(len(cols))),
    ]
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def rows_to_csv_text(rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (header + data rows)."""
    if not rows:
        return ""
    cols = list(columns) if columns is not None else list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=cols, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({col: row.get(col, "") for col in cols})
    return buffer.getvalue()


def write_csv(path: str, rows: Sequence[Mapping], columns: Optional[Sequence[str]] = None) -> None:
    """Write rows to a CSV file at ``path``."""
    text = rows_to_csv_text(rows, columns)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        handle.write(text)
