"""Command-line interface: regenerate the paper's figures and studies.

Usage examples::

    python -m repro figure 4                 # analysis-only reproduction of Figure 4
    python -m repro figure 6 --simulate      # include the validation simulator
    python -m repro figure 6 --simulate --jobs 0   # ... fanned out over all CPU cores
    python -m repro ratio                    # blocking/non-blocking ratio study (§6 claim)
    python -m repro validate --clusters 8    # analysis vs simulation at one point
    python -m repro ablation switch-ports    # one of the ablation studies
    python -m repro info                     # paper parameters and scenarios

    # the open scenario registry and the declarative pipeline
    python -m repro scenarios                # list every registered scenario
    python -m repro run hotspot --clusters 4 --sizes 512 --messages 1000
    python -m repro run SPEC.json            # run a JSON experiment spec
    python -m repro run bursty-hyper --smoke # the scenario's tiny CI smoke spec

    # explicit execution backend: serial, local process pool, or TCP work queue
    python -m repro figure 6 --simulate --backend pool --jobs 4
    python -m repro figure 6 --simulate --backend socket --workers 4
    #   ... --workers N spawns N local socket workers; a HOST:PORT list
    #   connects to worker daemons on other machines instead:
    python -m repro figure 6 --simulate --backend socket \\
        --workers hostA:7777,hostB:7777
    # (start each daemon with: python -m repro.parallel.worker --listen 0.0.0.0:7777)
    # ... or let the coordinator launch (and tear down) the daemons itself
    # over SSH — one worker per listed host, no manual daemon management:
    python -m repro figure 6 --simulate --backend ssh --workers user@hostA,user@hostB

    # fault tolerance: journal completed tasks, resume after a crash/kill
    python -m repro figure 6 --simulate --jobs 4 --checkpoint fig6.journal
    python -m repro figure 6 --simulate --jobs 4 --resume fig6.journal

    # content-addressed result cache: repeated campaigns are free
    python -m repro run SPEC.json --cache ~/.cache/repro   # cold: computes + stores
    python -m repro run SPEC.json --cache ~/.cache/repro   # warm: served from disk
    python -m repro cache stats --cache ~/.cache/repro     # hit/miss counters
    # simulation-as-a-service: a resident server with a warm worker pool
    python -m repro serve --cache ~/.cache/repro --pool 4

Simulation-heavy commands accept ``--jobs N`` to run the independent
simulations of a sweep on ``N`` worker processes (``0`` = one per CPU
core) via :class:`repro.parallel.SweepEngine`, plus ``--backend
{serial,pool,socket,ssh}`` / ``--workers SPEC`` to pick the execution
substrate; results are bit-identical for every backend because per-run
seeds depend only on the sweep definition, never on the schedule.
``--checkpoint PATH`` journals every completed task to an append-only
file; ``--resume PATH`` restores it, re-executing only unfinished tasks
(bit-identical to an uninterrupted run).  The SSH backend honours the
``REPRO_SSH_COMMAND``, ``REPRO_SSH_PYTHON`` and ``REPRO_SSH_PYTHONPATH``
environment variables (ssh argv prefix, remote interpreter, remote
``PYTHONPATH``).

``figure``, ``report`` and ``run`` also take ``--cache DIR`` (or the
``REPRO_CACHE_DIR`` environment variable; ``--no-cache`` overrides it) to
memoise whole campaigns in a content-addressed result store — a repeated
invocation is served from disk, byte-identically.  ``repro cache`` inspects
and maintains the store; ``repro serve`` exposes the same cache plus a warm
worker pool as an HTTP API.  The full walk-through lives in ``docs/cli.md``
and ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import os
import shlex
import sys
from pathlib import Path
from typing import Optional, Sequence

from dataclasses import replace as dataclass_replace

from . import __version__
from .core.model import AnalyticalModel, ModelConfig
from .errors import CheckpointError, ConfigurationError, ExperimentError
from .experiments.ablations import (
    fixed_point_vs_exact_mva,
    sweep_generation_rate,
    sweep_message_size,
    sweep_switch_latency,
    sweep_switch_ports,
)
from .experiments.blocking_ratio import run_blocking_ratio_study
from .experiments.figures import FIGURE_SPECS, run_figure
from .experiments.pipeline import (
    ENGINE_MODES,
    ExperimentRunner,
    ExperimentSpec,
    build_plan,
    smoke_spec,
)
from .experiments.scenarios import (
    CASE_1,
    CASE_2,
    PAPER_PARAMETERS,
    SCENARIO_REGISTRY,
    SCENARIOS,
    build_scenario_system,
    get_scenario,
)
from .parallel import (
    BACKEND_NAMES,
    SweepEngine,
    SweepJournal,
    resolve_jobs,
    socket_backend_from_spec,
    ssh_backend_from_spec,
    stderr_progress,
)
from .simulation.runner import validate_against_analysis
from .simulation.simulator import SimulationConfig
from .stats.sinks import STATS_MODES, validate_histogram_range
from .viz.tables import format_fixed_width_table, write_csv

__all__ = [
    "main",
    "build_parser",
    "build_cache",
    "build_engine",
    "build_journal",
    "jobs_count",
    "add_jobs_flag",
    "add_backend_flags",
    "add_cache_flags",
    "add_stats_mode_flag",
    "add_histogram_range_flag",
]


def jobs_count(text: str) -> int:
    """argparse type for ``--jobs``: non-negative int (0 = one per core)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (or 0 for one worker per CPU core), got {value}"
        )
    return value


def add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--jobs N`` option to ``parser``."""
    parser.add_argument(
        "--jobs", type=jobs_count, default=1, metavar="N",
        help="worker processes for independent simulation runs "
             "(1 = in-process serial, 0 = one per CPU core); "
             "results are identical for every value",
    )


def histogram_range_spec(text: str) -> tuple:
    """argparse type for ``--histogram-range``: parse ``LO:HI`` into floats."""
    lo, sep, hi = text.partition(":")
    if not sep:
        raise argparse.ArgumentTypeError(f"expected LO:HI, got {text!r}")
    try:
        return validate_histogram_range((lo, hi))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def add_histogram_range_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--histogram-range LO:HI`` option to ``parser``."""
    parser.add_argument(
        "--histogram-range", type=histogram_range_spec, default=None,
        metavar="LO:HI", dest="histogram_range",
        help="explicit quantile-histogram range in seconds for "
             "--stats-mode online (e.g. 0:0.5); a fixed range makes "
             "online-mode quantile histograms exactly mergeable across "
             "parallel backend shards (rejected with --stats-mode array)",
    )


def add_stats_mode_flag(parser: argparse.ArgumentParser, default: Optional[str] = "array") -> None:
    """Attach the shared ``--stats-mode`` option to ``parser``.

    ``default=None`` means "defer to the spec file" (used by ``repro run``,
    where an explicit flag overrides the spec but its absence must not).
    """
    parser.add_argument(
        "--stats-mode", choices=list(STATS_MODES), default=default,
        help="observation sinks for simulation runs: 'array' retains every "
             "sample (bit-identical legacy behaviour, exact percentiles), "
             "'online' streams through bounded-memory accumulators so run "
             "length is bounded by CPU instead of RAM (default: array)",
    )


def add_backend_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared execution-backend options (``--jobs`` included)."""
    add_jobs_flag(parser)
    parser.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="execution backend for sweep tasks (default: serial for "
             "--jobs 1, a local process pool otherwise); 'socket' runs a "
             "TCP work queue feeding repro.parallel.worker processes, "
             "'ssh' additionally launches those workers itself over ssh — "
             "results are bit-identical for every backend",
    )
    parser.add_argument(
        "--workers", type=str, default=None, metavar="SPEC",
        help="socket-backend workers: an integer N spawns N local worker "
             "processes (default: --jobs); a comma-separated HOST:PORT list "
             "connects to daemons started with "
             "'python -m repro.parallel.worker --listen HOST:PORT'; with "
             "--backend ssh, a comma-separated [user@]HOST list of machines "
             "to launch one worker on each",
    )
    journal = parser.add_mutually_exclusive_group()
    journal.add_argument(
        "--checkpoint", type=str, default=None, metavar="PATH",
        help="journal every completed task to this append-only file so an "
             "interrupted run can be resumed (the file is created if "
             "missing and continued if present)",
    )
    journal.add_argument(
        "--resume", type=str, default=None, metavar="PATH",
        help="resume the campaign journaled at PATH (which must exist): "
             "restore completed tasks, re-execute only unfinished ones — "
             "bit-identical to an uninterrupted run — and keep journaling",
    )


def add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--cache DIR`` / ``--no-cache`` options."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--cache", type=str, default=None, metavar="DIR",
        help="content-addressed result cache directory (default: the "
             "REPRO_CACHE_DIR environment variable, if set): a campaign "
             "whose (spec, code-version) key has an entry is served from "
             "disk, byte-identically, instead of recomputed",
    )
    group.add_argument(
        "--no-cache", action="store_true", dest="no_cache",
        help="ignore REPRO_CACHE_DIR and compute without the result cache",
    )


def build_cache(args: argparse.Namespace):
    """Open the result cache requested by ``--cache``/``REPRO_CACHE_DIR``.

    Returns ``None`` when no cache is configured, when ``--no-cache``
    disables it, or when ``--resume`` is given — resuming a journal means
    "finish the interrupted execution", which a cache hit would silently
    skip (tripping the idle-journal check with a misleading error).
    """
    if getattr(args, "no_cache", False) or getattr(args, "resume", None) is not None:
        return None
    target = getattr(args, "cache", None) or os.environ.get("REPRO_CACHE_DIR")
    if not target:
        return None
    from .cache import CacheError, ResultCache

    try:
        return ResultCache(target)
    except CacheError as exc:
        raise SystemExit(str(exc)) from exc


def build_journal(args: argparse.Namespace) -> Optional[SweepJournal]:
    """Open the journal requested by ``--checkpoint``/``--resume`` (if any)."""
    checkpoint = getattr(args, "checkpoint", None)
    resume = getattr(args, "resume", None)
    path = resume or checkpoint
    if path is None:
        return None
    if resume is not None and not os.path.exists(resume):
        raise SystemExit(
            f"--resume {resume}: no such journal (use --checkpoint to start one)"
        )
    try:
        return SweepJournal(path)
    except OSError as exc:
        raise SystemExit(f"could not open sweep journal {path!r}: {exc}") from exc


def check_idle_journal(engine: SweepEngine) -> None:
    """Reject a foreign ``--resume`` journal on a command that ran no sweeps.

    Closed-form commands (``ratio``, the analysis ablations, analysis-only
    ``figure``/``report``/``run``) evaluate in-process vectorized passes and
    start no engine runs, so the engine's fingerprint check never sees the
    journal.  Resuming a journal that *does* record sweep runs with such a
    command would silently succeed while matching nothing — raise the same
    :class:`CheckpointError` the fingerprint check would have.
    """
    journal = getattr(engine, "journal", None)
    if journal is not None and journal.runs_started == 0 and journal.recorded_runs > 0:
        raise CheckpointError(
            f"journal {journal.path!r} records {journal.recorded_runs} sweep "
            "run(s), but this command executed its sweeps as in-process "
            "vectorized passes and journaled nothing — the journal belongs "
            "to a different campaign (resume it with the command that "
            "created it)"
        )


def build_engine(args: argparse.Namespace, progress=None) -> SweepEngine:
    """Construct the :class:`SweepEngine` selected by the parsed CLI flags."""
    backend = getattr(args, "backend", None)
    workers = getattr(args, "workers", None)
    try:
        if backend == "socket":
            # resolve_jobs keeps --jobs 0 meaning "one per CPU core" here too.
            backend = socket_backend_from_spec(workers, default_workers=resolve_jobs(args.jobs))
        elif backend == "ssh":
            ssh_kwargs = {}
            if os.environ.get("REPRO_SSH_COMMAND"):
                ssh_kwargs["ssh_command"] = shlex.split(os.environ["REPRO_SSH_COMMAND"])
            if os.environ.get("REPRO_SSH_PYTHON"):
                ssh_kwargs["remote_python"] = os.environ["REPRO_SSH_PYTHON"]
            if os.environ.get("REPRO_SSH_PYTHONPATH"):
                ssh_kwargs["remote_pythonpath"] = os.environ["REPRO_SSH_PYTHONPATH"]
            backend = ssh_backend_from_spec(workers, **ssh_kwargs)
        elif workers is not None:
            raise SystemExit("--workers requires --backend socket or --backend ssh")
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    return SweepEngine(
        jobs=args.jobs, progress=progress, backend=backend, journal=build_journal(args)
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-multicluster",
        description="Reproduce the evaluation of 'Performance Analysis of "
        "Heterogeneous Multi-Cluster Systems' (ICPP-W 2005).",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="reproduce one of Figures 4-7")
    fig.add_argument("number", type=int, choices=sorted(FIGURE_SPECS), help="figure number")
    fig.add_argument("--simulate", action="store_true", help="also run the validation simulator")
    fig.add_argument("--messages", type=int, default=PAPER_PARAMETERS.simulation_messages,
                     help="simulated messages per point (default: paper's 10000)")
    fig.add_argument("--clusters", type=int, nargs="*", default=None,
                     help="override the cluster-count sweep")
    fig.add_argument("--sizes", type=int, nargs="*", default=None,
                     help="override the message-size sweep (bytes)")
    fig.add_argument("--csv", type=str, default=None, help="write the points to a CSV file")
    fig.add_argument("--chart", action="store_true", help="print an ASCII chart")
    fig.add_argument("--replications", type=int, default=1,
                     help="independent simulation replications per point")
    add_stats_mode_flag(fig)
    add_histogram_range_flag(fig)
    add_backend_flags(fig)
    add_cache_flags(fig)

    ratio = sub.add_parser("ratio", help="blocking vs non-blocking latency ratio study")
    ratio.add_argument("--csv", type=str, default=None, help="write the points to a CSV file")
    add_backend_flags(ratio)

    val = sub.add_parser("validate", help="analysis vs simulation at one configuration")
    val.add_argument("--case", choices=sorted(SCENARIOS), default="case-1")
    val.add_argument("--clusters", type=int, default=16)
    val.add_argument("--architecture", choices=["non-blocking", "blocking"],
                     default="non-blocking")
    val.add_argument("--message-bytes", type=float, default=1024.0)
    val.add_argument("--messages", type=int, default=PAPER_PARAMETERS.simulation_messages)
    val.add_argument("--replications", type=int, default=1)
    add_stats_mode_flag(val)
    add_backend_flags(val)

    abl = sub.add_parser("ablation", help="run one ablation study")
    abl.add_argument(
        "study",
        choices=["switch-ports", "switch-latency", "generation-rate", "message-size",
                 "fixed-point-vs-mva"],
    )
    add_backend_flags(abl)

    rep = sub.add_parser("report", help="generate the full paper-vs-measured report")
    rep.add_argument("--output", type=str, default=None,
                     help="write the Markdown report to this path (default: stdout)")
    rep.add_argument("--simulate", action="store_true",
                     help="include validation simulations (slower)")
    rep.add_argument("--messages", type=int, default=2_000,
                     help="simulated messages per point when --simulate is given")
    rep.add_argument("--clusters", type=int, nargs="*", default=None,
                     help="override the cluster-count sweep")
    add_stats_mode_flag(rep)
    add_backend_flags(rep)
    add_cache_flags(rep)

    runp = sub.add_parser(
        "run", help="run a declarative experiment spec (SPEC.json) or a registered scenario"
    )
    runp.add_argument(
        "spec", metavar="SPEC",
        help="path to a SPEC.json experiment spec, or the name of a "
             "registered scenario (see 'repro scenarios')",
    )
    runp.add_argument("--mode", choices=["analysis", "simulate", "both"], default=None,
                      help="override the spec's mode")
    runp.add_argument("--clusters", type=int, nargs="*", default=None,
                      help="override the cluster-count axis")
    runp.add_argument("--sizes", type=int, nargs="*", default=None,
                      help="override the message-size axis (bytes)")
    runp.add_argument("--rates", type=float, nargs="*", default=None,
                      help="override the generation-rate axis (msg/s)")
    runp.add_argument("--messages", type=int, default=None,
                      help="override the simulated messages per point")
    runp.add_argument("--replications", type=int, default=None,
                      help="override the simulation replications per point")
    runp.add_argument("--seed", type=int, default=None, help="override the campaign seed")
    runp.add_argument("--smoke", action="store_true",
                      help="use the scenario's tiny smoke spec (scenario-name form only)")
    runp.add_argument("--csv", type=str, default=None, help="write the points to a CSV file")
    runp.add_argument(
        "--engine-mode", choices=list(ENGINE_MODES), default=None, dest="engine_mode",
        help="override the spec's simulation engine: 'auto' picks the "
             "vectorized closed-loop engine for state-independent workloads "
             "(bit-identical, faster) and the DES otherwise; 'des' forces "
             "the event-driven simulator; 'vectorized' fails fast when the "
             "workload is not vectorizable",
    )
    add_stats_mode_flag(runp, default=None)
    add_histogram_range_flag(runp)
    add_backend_flags(runp)
    add_cache_flags(runp)

    scen = sub.add_parser("scenarios", help="list the registered experiment scenarios")
    scen.add_argument("--names", action="store_true",
                      help="print one scenario name per line (for shell loops)")
    scen.add_argument("--json", action="store_true", help="machine-readable JSON listing")
    scen.add_argument(
        "--write-smoke-specs", type=str, default=None, metavar="DIR",
        help="write each scenario's tiny smoke spec as DIR/<name>.json "
             "(the CI scenario matrix feeds these to 'repro run')",
    )

    point = sub.add_parser("analyze", help="evaluate the analytical model at one point")
    point.add_argument("--case", choices=sorted(SCENARIOS), default="case-1")
    point.add_argument("--clusters", type=int, default=16)
    point.add_argument("--architecture", choices=["non-blocking", "blocking"],
                       default="non-blocking")
    point.add_argument("--message-bytes", type=float, default=1024.0)
    point.add_argument("--rate", type=float, default=PAPER_PARAMETERS.generation_rate)

    cachep = sub.add_parser(
        "cache", help="inspect or maintain the content-addressed result cache"
    )
    cachep.add_argument(
        "action",
        choices=["stats", "list", "show", "evict", "evict-stale", "clear"],
        help="stats: hit/miss counters and sizes; list: every entry; "
             "show KEY: one entry's metadata; evict KEY: remove one entry; "
             "evict-stale: remove entries written by older code versions; "
             "clear: remove everything",
    )
    cachep.add_argument("key", nargs="?", default=None,
                        help="cache entry key (required by show/evict)")
    cachep.add_argument(
        "--cache", type=str, default=None, metavar="DIR",
        help="cache directory (default: the REPRO_CACHE_DIR environment variable)",
    )
    cachep.add_argument("--json", action="store_true", help="machine-readable JSON output")

    srv = sub.add_parser(
        "serve", help="start the HTTP simulation service (see docs/service.md)"
    )
    srv.add_argument("--host", type=str, default="127.0.0.1",
                     help="bind address (default: loopback; the API is unauthenticated, "
                          "expose it only on trusted networks)")
    srv.add_argument("--port", type=int, default=8765,
                     help="bind port (default: 8765; 0 picks an ephemeral port)")
    srv.add_argument(
        "--pool", type=jobs_count, default=1, metavar="N",
        help="warm worker-pool size: simulation processes kept alive across "
             "requests (1 = one warm worker, 0 = one per CPU core)",
    )
    srv.add_argument(
        "--cache", type=str, default=None, metavar="DIR",
        help="result cache directory backing the service (default: the "
             "REPRO_CACHE_DIR environment variable; required)",
    )
    srv.add_argument(
        "--state-dir", type=str, default=None, metavar="DIR", dest="state_dir",
        help="directory for in-flight job journals (default: <cache>/service); "
             "a job interrupted by a crash resumes from its journal when the "
             "same spec is resubmitted",
    )
    srv.add_argument(
        "--max-queued", type=int, default=16, metavar="N", dest="max_queued",
        help="load-shedding bound: refuse submissions (HTTP 503 with a "
             "Retry-After header) once this many jobs are queued; 0 removes "
             "the bound (default: 16)",
    )
    srv.add_argument("--verbose", action="store_true",
                     help="log one line per HTTP request to stderr")

    sub.add_parser("info", help="print the paper's parameters and scenarios")

    lint = sub.add_parser("lint", help="run the repro domain linter (static analysis)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to scan (default: src)")
    lint.add_argument("--format", choices=["text", "json", "github"], default="text",
                      dest="lint_format", help="output format (default: text)")
    lint.add_argument("--select", type=str, default=None,
                      help="comma-separated rule-id prefixes to enable (e.g. REP1,REP301)")
    lint.add_argument("--ignore", type=str, default=None,
                      help="comma-separated rule-id prefixes to disable")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    return parser


def _cmd_figure(args: argparse.Namespace) -> int:
    # Built even for analysis-only runs so inconsistent backend flags fail
    # fast; backends are lazy, so no pool/worker is started until a
    # simulation sweep actually executes.  Per-task progress goes to stderr
    # to keep the table output on stdout clean.
    engine = build_engine(args, progress=stderr_progress if args.simulate else None)
    result = run_figure(
        args.number,
        include_simulation=args.simulate,
        cluster_counts=args.clusters,
        message_sizes=args.sizes,
        simulation_messages=args.messages,
        replications=args.replications,
        engine=engine,
        stats_mode=args.stats_mode,
        histogram_range=args.histogram_range,
        cache=build_cache(args),
    )
    check_idle_journal(engine)
    print(result.spec.title)
    print()
    print(result.to_text_table())
    summary = result.accuracy_summary()
    if summary is not None:
        print()
        print(f"Analysis vs simulation: {summary}")
    if args.chart:
        print()
        print(result.to_chart())
    if args.csv:
        write_csv(args.csv, result.to_rows())
        print(f"\nWrote {len(result.points)} points to {args.csv}")
    return 0


def _cmd_ratio(args: argparse.Namespace) -> int:
    engine = build_engine(args)
    study = run_blocking_ratio_study(engine=engine)
    check_idle_journal(engine)
    print("Blocking vs non-blocking mean latency ratio (paper section 6 claim)")
    print()
    print(format_fixed_width_table(study.to_rows()))
    print()
    print(
        f"Observed band: {study.min_ratio:.2f} - {study.max_ratio:.2f} "
        f"(mean {study.mean_ratio:.2f}); paper reports "
        f"{study.paper_band[0]} - {study.paper_band[1]}."
    )
    if args.csv:
        write_csv(args.csv, study.to_rows())
        print(f"\nWrote {len(study.points)} points to {args.csv}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    scenario = SCENARIOS[args.case]
    system = build_scenario_system(scenario, args.clusters)
    model_config = ModelConfig(
        architecture=args.architecture,
        message_bytes=args.message_bytes,
        generation_rate=PAPER_PARAMETERS.generation_rate,
    )
    sim_config = SimulationConfig(
        architecture=args.architecture,
        message_bytes=args.message_bytes,
        generation_rate=PAPER_PARAMETERS.generation_rate,
        num_messages=args.messages,
        stats_mode=args.stats_mode,
    )
    point = validate_against_analysis(
        system, model_config, sim_config, args.replications,
        engine=build_engine(args),
    )
    print(f"System: {system}")
    print(f"Architecture: {args.architecture}, M = {args.message_bytes:g} bytes")
    print(f"  analysis   : {point.analysis_latency_ms:.4f} ms")
    print(f"  simulation : {point.simulation_latency_ms:.4f} ms "
          f"({args.replications} replication(s), {args.messages} messages each)")
    print(f"  rel. error : {point.relative_error * 100:.2f}%")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    studies = {
        "switch-ports": sweep_switch_ports,
        "switch-latency": sweep_switch_latency,
        "generation-rate": sweep_generation_rate,
        "message-size": sweep_message_size,
        "fixed-point-vs-mva": fixed_point_vs_exact_mva,
    }
    # Every ablation flows through the pipeline's ExperimentRunner, so the
    # full --jobs/--backend/--checkpoint policy applies uniformly (the
    # fixed-point-vs-MVA comparison used to reject backend flags outright).
    engine = build_engine(args)
    study = studies[args.study](engine=engine)
    check_idle_journal(engine)
    print(study.name)
    print()
    print(format_fixed_width_table(study.to_rows()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import generate_report

    engine = build_engine(args, progress=stderr_progress if args.simulate else None)
    report = generate_report(
        include_simulation=args.simulate,
        cluster_counts=args.clusters,
        simulation_messages=args.messages,
        engine=engine,
        stats_mode=args.stats_mode,
        cache=build_cache(args),
    )
    check_idle_journal(engine)
    if args.output:
        report.write(args.output)
        print(f"Wrote reproduction report to {args.output}")
    else:
        print(report.to_markdown())
    return 0


def _load_run_spec(args: argparse.Namespace) -> ExperimentSpec:
    """Resolve the ``repro run`` SPEC argument into an :class:`ExperimentSpec`."""
    target = args.spec
    if os.path.exists(target):
        if args.smoke:
            raise SystemExit(
                "--smoke applies to scenario names only; edit the spec file instead"
            )
        spec = ExperimentSpec.from_file(target)
    elif target in SCENARIO_REGISTRY:
        scenario = get_scenario(target)
        if args.smoke:
            spec = smoke_spec(scenario)
        else:
            spec = ExperimentSpec(
                scenario=scenario.name,
                mode="both" if scenario.analysis_capable else "simulate",
            )
    else:
        raise SystemExit(
            f"{target!r} is neither a spec file nor a registered scenario; "
            "'repro scenarios' lists the registered names"
        )
    overrides = {}
    if args.mode is not None:
        overrides["mode"] = args.mode
    if args.clusters is not None:
        overrides["cluster_counts"] = tuple(args.clusters)
    if args.sizes is not None:
        overrides["message_sizes"] = tuple(args.sizes)
    if args.rates is not None:
        overrides["generation_rates"] = tuple(args.rates)
    if args.messages is not None:
        overrides["simulation_messages"] = args.messages
    if args.replications is not None:
        overrides["replications"] = args.replications
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.stats_mode is not None:
        overrides["stats_mode"] = args.stats_mode
    if args.histogram_range is not None:
        overrides["histogram_range"] = args.histogram_range
    if args.engine_mode is not None:
        overrides["engine_mode"] = args.engine_mode
    return dataclass_replace(spec, **overrides) if overrides else spec


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _load_run_spec(args)
    plan = build_plan(spec)
    engine = build_engine(
        args, progress=stderr_progress if spec.include_simulation else None
    )
    cache = build_cache(args)
    if cache is not None:
        # Stdout stays byte-identical between hit and miss (the bit-identity
        # contract); the hit/miss note goes to stderr.
        key = cache.key_for_plan(plan)
        hit = key is not None and cache.get_entry(key) is not None
        print(f"[cache {'hit' if hit else 'miss'}] {key}", file=sys.stderr)
    result = ExperimentRunner(engine=engine, cache=cache).run(plan)
    check_idle_journal(engine)
    print(plan.scenario.describe())
    print(
        f"Architecture: {plan.architecture}, mode: {spec.mode}, "
        f"seed: {spec.seed}"
        + (
            f", {spec.simulation_messages} messages x "
            f"{spec.replications} replication(s) per point"
            if spec.include_simulation
            else ""
        )
    )
    print()
    print(result.to_text_table())
    summary = result.accuracy_summary()
    if summary is not None:
        print()
        print(f"Analysis vs simulation: {summary}")
    if args.csv:
        write_csv(args.csv, result.to_rows())
        print(f"\nWrote {len(result.points)} points to {args.csv}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.write_smoke_specs:
        os.makedirs(args.write_smoke_specs, exist_ok=True)
        for name, scenario in SCENARIO_REGISTRY.items():
            path = os.path.join(args.write_smoke_specs, f"{name}.json")
            smoke_spec(scenario).to_file(path)
            print(f"wrote {path}")
        return 0
    if args.names:
        for name in SCENARIO_REGISTRY:
            print(name)
        return 0
    if args.json:
        import json

        listing = [
            {
                "name": scenario.name,
                "description": scenario.description,
                "paper": scenario.paper,
                "supports_analysis": scenario.supports_analysis,
                "heterogeneous_analysis": scenario.heterogeneous_analysis,
                "default_architecture": scenario.default_architecture,
                "custom_destinations": scenario.destination_policy is not None,
                "custom_arrivals": scenario.arrival_factory is not None,
            }
            for scenario in SCENARIO_REGISTRY.values()
        ]
        print(json.dumps(listing, indent=2))
        return 0
    rows = [
        {
            "name": scenario.name,
            "analysis": (
                "yes"
                if scenario.supports_analysis
                else ("het" if scenario.heterogeneous_analysis else "no")
            ),
            "architecture": scenario.default_architecture,
            "workload": ", ".join(
                part
                for part, present in (
                    ("destinations", scenario.destination_policy is not None),
                    ("arrivals", scenario.arrival_factory is not None),
                )
                if present
            )
            or "paper default",
            "description": scenario.description,
        }
        for scenario in SCENARIO_REGISTRY.values()
    ]
    print(format_fixed_width_table(rows))
    print()
    print("Run one with: python -m repro run NAME  (or write a SPEC.json; "
          "see the README's scenario cookbook)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    scenario = SCENARIOS[args.case]
    system = build_scenario_system(scenario, args.clusters)
    report = AnalyticalModel(
        system,
        ModelConfig(
            architecture=args.architecture,
            message_bytes=args.message_bytes,
            generation_rate=args.rate,
        ),
    ).evaluate()
    print(system.describe())
    print()
    print(f"Architecture         : {report.architecture}")
    print(f"Message size         : {report.message_bytes:g} bytes")
    print(f"Outgoing probability : {report.outgoing_probability:.4f}")
    print(f"Effective rate       : {report.effective_rate:.6g} msg/s "
          f"(nominal {report.nominal_rate:g})")
    print(f"Mean message latency : {report.mean_latency_ms:.4f} ms")
    print(f"  local  component   : {report.local_latency_s * 1e3:.4f} ms")
    print(f"  remote component   : {report.remote_latency_s * 1e3:.4f} ms")
    print("Utilisations         : "
          + ", ".join(f"{k}={v:.4f}" for k, v in report.utilizations.items()))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    print("Paper: Performance Analysis of Heterogeneous Multi-Cluster Systems (ICPP-W 2005)")
    print()
    print("Table 1 scenarios:")
    for scenario in (CASE_1, CASE_2):
        print(f"  {scenario.describe()}")
    print()
    p = PAPER_PARAMETERS
    print("Table 2 parameters:")
    print(f"  total processors      : {p.total_processors}")
    print(f"  cluster counts        : {list(p.cluster_counts)}")
    print(f"  message sizes (bytes) : {list(p.message_sizes)}")
    print(f"  generation rate       : {p.generation_rate} msg/s")
    print(f"  switch                : {p.switch}")
    print(f"  simulated messages    : {p.simulation_messages}")
    print()
    print("Figures:")
    for number, spec in sorted(FIGURE_SPECS.items()):
        print(f"  Figure {number}: {spec.description}")
    print()
    print(f"Registered scenarios ({len(SCENARIO_REGISTRY)}; see 'repro scenarios'): "
          + ", ".join(SCENARIO_REGISTRY))
    return 0


def _open_cli_cache(args: argparse.Namespace):
    """Open the cache named by ``--cache``/``REPRO_CACHE_DIR`` (required)."""
    from .cache import CacheError, ResultCache

    target = args.cache or os.environ.get("REPRO_CACHE_DIR")
    if not target:
        raise SystemExit(
            f"repro {args.command} needs a cache directory: pass --cache DIR "
            "or set REPRO_CACHE_DIR"
        )
    try:
        return ResultCache(target)
    except CacheError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    store = _open_cli_cache(args)
    if args.action in ("show", "evict") and not args.key:
        raise SystemExit(f"repro cache {args.action} needs a KEY ('repro cache list' shows them)")
    if args.action == "stats":
        stats = store.stats().as_dict()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            print(f"cache: {store.root}")
            for name, value in stats.items():
                print(f"  {name:<15}: {value}")
    elif args.action == "list":
        entries = store.entries()
        if args.json:
            print(json.dumps([entry.as_dict() for entry in entries], indent=2))
        elif not entries:
            print("cache is empty")
        else:
            rows = [
                {
                    "key": entry.key,
                    "scenario": entry.scenario,
                    "mode": entry.mode,
                    "hits": entry.hits,
                    "bytes": entry.size_bytes,
                    "stale": "yes" if entry.code_fingerprint != store.fingerprint else "no",
                }
                for entry in entries
            ]
            print(format_fixed_width_table(rows))
    elif args.action == "show":
        entry = store.get_entry(args.key)
        if entry is None:
            raise SystemExit(f"no cache entry {args.key!r}")
        print(json.dumps(entry.as_dict(), indent=2))
    elif args.action == "evict":
        if not store.evict(args.key):
            raise SystemExit(f"no cache entry {args.key!r}")
        print(f"evicted {args.key}")
    elif args.action == "evict-stale":
        print(f"evicted {store.evict_stale()} stale entries")
    else:  # clear
        print(f"removed {store.clear()} entries")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import threading

    from .service import JobManager, ReproService

    cache = _open_cli_cache(args)
    manager = JobManager(
        cache, jobs=args.pool, state_dir=args.state_dir, max_queued=args.max_queued
    )
    service = ReproService(manager, host=args.host, port=args.port, verbose=args.verbose)
    try:
        service.start()
    except OSError as exc:
        manager.close()
        raise SystemExit(f"could not bind {args.host}:{args.port}: {exc}") from exc
    host, port = service.address
    print(f"repro serve: http://{host}:{port}/v1 "
          f"(pool={manager.jobs} warm workers, cache={cache.root})")
    print("submit specs with: curl -X POST --data @SPEC.json "
          f"http://{host}:{port}/v1/experiments   (Ctrl-C to stop)")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        service.stop()
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis package is pure stdlib but entirely
    # unrelated to the numeric pipeline the other verbs load.
    from .analysis import format_report, lint_paths, rule_catalogue

    if args.list_rules:
        for row in rule_catalogue():
            print(f"{row['id']}  {row['name']:<22} {row['rationale']}")
        return 0

    def split(text: Optional[str]) -> Optional[list]:
        if text is None:
            return None
        return [part for part in text.split(",") if part.strip()]

    try:
        report = lint_paths(
            [Path(p) for p in args.paths],
            select=split(args.select),
            ignore=split(args.ignore),
        )
    except ValueError as exc:  # unknown --select/--ignore prefix
        print(f"error: {exc}", file=sys.stderr)
        return 2
    output = format_report(report, args.lint_format)
    if output:
        print(output)
    return report.exit_code()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "figure": _cmd_figure,
        "ratio": _cmd_ratio,
        "validate": _cmd_validate,
        "ablation": _cmd_ablation,
        "report": _cmd_report,
        "run": _cmd_run,
        "scenarios": _cmd_scenarios,
        "analyze": _cmd_analyze,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "info": _cmd_info,
        "lint": _cmd_lint,
    }
    # Uniform --resume validation at the CLI boundary: every verb reports a
    # missing journal with the same one-line error, before any work starts
    # (historically each command surfaced it wherever its engine happened to
    # be built — which for lazy engines could be after minutes of analysis).
    resume = getattr(args, "resume", None)
    if resume is not None and not os.path.exists(resume):
        raise SystemExit(
            f"--resume {resume}: no such journal (use --checkpoint to start one)"
        )
    try:
        return handlers[args.command](args)
    except CheckpointError as exc:
        # The designed user error of --resume (journal belongs to a
        # different campaign) deserves its one-line message, not a
        # traceback.
        raise SystemExit(f"checkpoint error: {exc}") from exc
    except (ExperimentError, ConfigurationError) as exc:
        # Spec/scenario/configuration mistakes (unknown scenario, invalid
        # spec JSON, analysis requested for a simulate-only scenario, a
        # cluster count a preset cannot be rescaled to) are user errors:
        # one line, no traceback.
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
