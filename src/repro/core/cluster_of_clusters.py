"""Analytical extension to Cluster-of-Clusters systems (the paper's future work).

Section 7 of the paper names two extensions it leaves open: network
*technology* heterogeneity (different α/β per cluster) and the
Cluster-of-Clusters family (clusters of different sizes and processor
types).  This module provides that extension, generalising Eqs. (1)–(8) and
(15)–(16):

* Per-cluster outgoing probability (generalised Eq. 8):
  ``P_i = (N − N_i) / (N − 1)``.
* Per-cluster ICN1 arrival rate (generalised Eq. 1):
  ``λ_I1,i = N_i·(1 − P_i)·λ_i``.
* ECN1 forward rate ``N_i·P_i·λ_i`` and return rate
  ``(N_i/(N−1))·Σ_{j≠i} N_j·λ_j`` (a message leaving cluster j picks its
  destination uniformly among the ``N − N_j`` outside nodes, of which
  ``N_i`` are in cluster i).
* ICN2 rate ``Σ_i N_i·P_i·λ_i`` (generalised Eq. 3).
* Mean message latency: the Eq. (15) average now runs over source clusters
  (weighted by their share of generated traffic) and, for remote messages,
  over destination clusters (weighted by their share of the outside nodes),
  using the *destination* cluster's ECN1 on the return hop.

The finite-source correction is applied per cluster:
``λ_eff,i = (N_i − L_i)/N_i · λ_i`` where ``L_i`` attributes to cluster *i*
the waiting processors at its own ICN1/ECN1 plus its traffic share of the
ICN2 and of remote ECN1 queues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.system import MultiClusterSystem
from ..errors import ConfigurationError, StabilityError
from ..network.models import CommunicationNetworkModel, build_network_model
from .latency import waiting_time
from .model import PAPER_GENERATION_RATE
from .vectorized import GridEvaluation

__all__ = [
    "HeterogeneousModelConfig",
    "HeterogeneousReport",
    "ClusterOfClustersModel",
    "evaluate_heterogeneous_grid",
]


@dataclass(frozen=True)
class HeterogeneousModelConfig:
    """Configuration of a Cluster-of-Clusters evaluation."""

    architecture: str = "non-blocking"
    message_bytes: float = 1024.0
    generation_rate: float = PAPER_GENERATION_RATE
    finite_source_correction: bool = True
    max_iterations: int = 5_000
    tolerance: float = 1e-10

    def __post_init__(self) -> None:
        if self.message_bytes <= 0:
            raise ConfigurationError(f"message size must be positive, got {self.message_bytes!r}")
        if self.generation_rate < 0:
            raise ConfigurationError(
                f"generation rate must be non-negative, got {self.generation_rate!r}"
            )


@dataclass(frozen=True)
class HeterogeneousReport:
    """Outcome of a Cluster-of-Clusters evaluation."""

    system_name: str
    architecture: str
    num_clusters: int
    total_processors: int
    message_bytes: float
    mean_latency_s: float
    per_cluster_local_latency_s: Dict[str, float]
    per_cluster_remote_latency_s: Dict[str, float]
    per_cluster_effective_rate: Dict[str, float]
    per_cluster_outgoing_probability: Dict[str, float]
    utilizations: Dict[str, float]
    iterations: int

    @property
    def mean_latency_ms(self) -> float:
        """Mean message latency in milliseconds."""
        return self.mean_latency_s * 1e3


class ClusterOfClustersModel:
    """Analytical model for heterogeneous (unequal) multi-cluster systems."""

    def __init__(
        self,
        system: MultiClusterSystem,
        config: Optional[HeterogeneousModelConfig] = None,
    ) -> None:
        self.system = system
        self.config = config if config is not None else HeterogeneousModelConfig()
        self._sizes = np.array([c.num_processors for c in system.clusters], dtype=float)
        self._total = float(self._sizes.sum())
        if self._total < 2:
            raise ConfigurationError("a cluster-of-clusters model needs at least 2 processors")
        # Per-cluster base generation rates scaled by processor speed.
        self._base_rates = np.array(
            [
                c.processor_type.scaled_rate(self.config.generation_rate)
                for c in system.clusters
            ],
            dtype=float,
        )
        # Per-cluster network models.
        arch = self.config.architecture
        switch = system.switch
        self._icn1_models: List[CommunicationNetworkModel] = [
            build_network_model(arch, c.icn_technology, switch, c.num_processors)
            for c in system.clusters
        ]
        self._ecn1_models: List[CommunicationNetworkModel] = [
            build_network_model(arch, c.ecn_technology, switch, c.num_processors)
            for c in system.clusters
        ]
        self._icn2_model: CommunicationNetworkModel = build_network_model(
            arch, system.icn2_technology, switch, max(system.num_clusters, 1)
        )

    # -- helpers -----------------------------------------------------------------------

    def _outgoing_probabilities(self) -> np.ndarray:
        """Generalised Eq. (8): ``P_i = (N − N_i)/(N − 1)``."""
        return (self._total - self._sizes) / (self._total - 1.0)

    def _service_rates(self) -> Tuple[np.ndarray, np.ndarray, float]:
        m = self.config.message_bytes
        icn1 = np.array([mdl.service_rate(m) for mdl in self._icn1_models])
        ecn1 = np.array([mdl.service_rate(m) for mdl in self._ecn1_models])
        icn2 = self._icn2_model.service_rate(m)
        return icn1, ecn1, icn2

    def _arrival_rates(self, rates: np.ndarray) -> Tuple[np.ndarray, np.ndarray, float]:
        """Per-cluster ICN1 and ECN1 arrival rates plus the ICN2 rate."""
        p = self._outgoing_probabilities()
        sizes = self._sizes
        lam_icn1 = sizes * (1.0 - p) * rates
        forward = sizes * p * rates
        total_outflow = forward.sum()
        # Return traffic into cluster i: share N_i/(N − N_j) of each cluster j's outflow.
        returns = np.zeros_like(forward)
        for i in range(len(sizes)):
            others = np.arange(len(sizes)) != i
            denom = self._total - sizes[others]
            returns[i] = float(np.sum(forward[others] * sizes[i] / denom))
        lam_ecn1 = forward + returns
        lam_icn2 = float(total_outflow)
        return lam_icn1, lam_ecn1, lam_icn2

    @staticmethod
    def _queue_length(lam: float, mu: float) -> float:
        if lam >= mu:
            return math.inf
        rho = lam / mu
        return rho / (1.0 - rho)

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self) -> HeterogeneousReport:
        """Run the heterogeneous model and return a :class:`HeterogeneousReport`."""
        cfg = self.config
        sizes = self._sizes
        n_clusters = len(sizes)
        mu_icn1, mu_ecn1, mu_icn2 = self._service_rates()
        p_out = self._outgoing_probabilities()

        rates = self._base_rates.copy()
        iterations = 0
        if cfg.finite_source_correction:
            for iterations in range(1, cfg.max_iterations + 1):
                lam_icn1, lam_ecn1, lam_icn2 = self._arrival_rates(rates)
                l_icn1 = np.array(
                    [self._queue_length(lam_icn1[i], mu_icn1[i]) for i in range(n_clusters)]
                )
                l_ecn1 = np.array(
                    [self._queue_length(lam_ecn1[i], mu_ecn1[i]) for i in range(n_clusters)]
                )
                l_icn2 = self._queue_length(lam_icn2, mu_icn2)
                # Attribute waiting processors to source clusters:
                #   * own ICN1 and own ECN1 queues entirely,
                #   * the ICN2 queue proportionally to the cluster's outflow share.
                outflow = sizes * p_out * rates
                total_outflow = outflow.sum()
                share = outflow / total_outflow if total_outflow > 0 else np.zeros_like(outflow)
                waiting = l_icn1 + l_ecn1 + share * (l_icn2 if math.isfinite(l_icn2) else self._total)
                waiting = np.minimum(np.where(np.isfinite(waiting), waiting, sizes), sizes)
                proposed = (sizes - waiting) / sizes * self._base_rates
                updated = 0.5 * proposed + 0.5 * rates
                if np.max(np.abs(updated - rates)) <= cfg.tolerance * max(
                    float(self._base_rates.max()), 1e-300
                ):
                    rates = updated
                    break
                rates = updated

        lam_icn1, lam_ecn1, lam_icn2 = self._arrival_rates(rates)
        if lam_icn2 >= mu_icn2 or np.any(lam_icn1 >= mu_icn1) or np.any(lam_ecn1 >= mu_ecn1):
            raise StabilityError(
                "cluster-of-clusters configuration is saturated at the solved rates"
            )

        w_icn1 = np.array(
            [waiting_time(lam_icn1[i], mu_icn1[i]) for i in range(n_clusters)]
        )
        w_ecn1 = np.array(
            [waiting_time(lam_ecn1[i], mu_ecn1[i]) for i in range(n_clusters)]
        )
        w_icn2 = waiting_time(lam_icn2, mu_icn2)

        # Remote latency from cluster i: own ECN1 + ICN2 + destination ECN1,
        # averaged over destination clusters weighted by their outside-node share.
        remote = np.zeros(n_clusters)
        for i in range(n_clusters):
            others = np.arange(n_clusters) != i
            weights = sizes[others] / (self._total - sizes[i])
            remote[i] = w_ecn1[i] + w_icn2 + float(np.sum(weights * w_ecn1[others]))
        local = w_icn1

        per_cluster_latency = (1.0 - p_out) * local + p_out * remote
        # Weight source clusters by their share of generated messages.
        generation = sizes * rates
        total_generation = generation.sum()
        if total_generation <= 0:
            mean_latency = float(np.mean(per_cluster_latency))
        else:
            mean_latency = float(np.sum(per_cluster_latency * generation) / total_generation)

        names = [c.name for c in self.system.clusters]
        utilizations = {
            **{f"icn1[{names[i]}]": float(lam_icn1[i] / mu_icn1[i]) for i in range(n_clusters)},
            **{f"ecn1[{names[i]}]": float(lam_ecn1[i] / mu_ecn1[i]) for i in range(n_clusters)},
            "icn2": float(lam_icn2 / mu_icn2),
        }

        return HeterogeneousReport(
            system_name=self.system.name,
            architecture=self._icn2_model.architecture,
            num_clusters=n_clusters,
            total_processors=int(self._total),
            message_bytes=cfg.message_bytes,
            mean_latency_s=mean_latency,
            per_cluster_local_latency_s={names[i]: float(local[i]) for i in range(n_clusters)},
            per_cluster_remote_latency_s={names[i]: float(remote[i]) for i in range(n_clusters)},
            per_cluster_effective_rate={names[i]: float(rates[i]) for i in range(n_clusters)},
            per_cluster_outgoing_probability={
                names[i]: float(p_out[i]) for i in range(n_clusters)
            },
            utilizations=utilizations,
            iterations=iterations,
        )


def evaluate_heterogeneous_grid(
    evaluations: Sequence[Tuple[MultiClusterSystem, HeterogeneousModelConfig]],
) -> GridEvaluation:
    """Evaluate the Cluster-of-Clusters model at every ``(system, config)`` point.

    The counterpart of :func:`repro.core.vectorized.evaluate_latency_grid`
    for scenarios whose systems the §4 homogeneous model cannot describe
    (unequal cluster sizes, per-cluster technologies): the experiment
    pipeline's analysis pass feeds either function into the same
    :class:`~repro.core.vectorized.GridEvaluation` consumers.

    Per-cluster quantities are folded to one scalar per point by weighting
    source clusters with their share of generated traffic
    (``N_i λ_eff,i``), the same weighting :meth:`ClusterOfClustersModel.
    evaluate` uses for the overall mean latency.  Every point is solved by
    the scalar model, so ``scalar_fallback`` lists every index.
    """
    n = len(evaluations)
    mean = np.empty(n)
    local = np.empty(n)
    remote = np.empty(n)
    effective = np.empty(n)
    outgoing = np.empty(n)
    iterations = np.empty(n, dtype=int)
    icn2_util = np.empty(n)
    throttling = np.empty(n)

    for i, (system, config) in enumerate(evaluations):
        report = ClusterOfClustersModel(system, config).evaluate()
        names = [c.name for c in system.clusters]
        sizes = np.array([c.num_processors for c in system.clusters], dtype=float)
        rates = np.array([report.per_cluster_effective_rate[name] for name in names])
        nominal = np.array(
            [
                c.processor_type.scaled_rate(config.generation_rate)
                for c in system.clusters
            ]
        )
        generation = sizes * rates
        total = generation.sum()
        weights = generation / total if total > 0 else np.full(len(sizes), 1.0 / len(sizes))

        mean[i] = report.mean_latency_s
        local[i] = float(np.sum(weights * [report.per_cluster_local_latency_s[n_] for n_ in names]))
        remote[i] = float(np.sum(weights * [report.per_cluster_remote_latency_s[n_] for n_ in names]))
        effective[i] = float(np.sum(weights * rates))
        outgoing[i] = float(
            np.sum(weights * [report.per_cluster_outgoing_probability[n_] for n_ in names])
        )
        iterations[i] = report.iterations
        icn2_util[i] = report.utilizations["icn2"]
        nominal_weighted = float(np.sum(weights * nominal))
        throttling[i] = effective[i] / nominal_weighted if nominal_weighted > 0 else 1.0

    return GridEvaluation(
        mean_latency_s=mean,
        local_latency_s=local,
        remote_latency_s=remote,
        effective_rate=effective,
        outgoing_probability=outgoing,
        iterations=iterations,
        icn2_utilization=icn2_util,
        throttling_factor=throttling,
        scalar_fallback=tuple(range(n)),
    )
