"""Finite-source fixed-point iteration for the effective request rate.

Assumption 4 of the paper: a processor that is waiting for a reply cannot
generate new requests, so the *effective* per-processor rate is lower than
the nominal λ.  Equations (6)–(7):

* total waiting processors ``L = C·(2·L_E1 + L_I1) + L_I2`` where each
  ``L_x`` is the M/M/1 mean queue length of the corresponding centre, and
* ``λ_eff = (N − L)/N · λ``,

iterated "until no considerable change is observed between two consecutive
steps".  The implementation adds two robustness measures over the paper's
plain iteration:

1. damping of the update (Picard iteration with relaxation), and
2. a bisection fallback on the monotone residual when the plain iteration
   does not converge (e.g. close to saturation, where the undamped map
   oscillates).

The result reports whether the nominal load is feasible at all: if even
``λ_eff → 0`` leaves a centre saturated, the configuration is declared
unstable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConvergenceError, StabilityError
from .service_centers import ServiceCenterModels
from .traffic import TrafficRates, compute_traffic_rates

__all__ = ["FixedPointResult", "QueueLengths", "solve_effective_rate", "queue_lengths_at"]


@dataclass(frozen=True)
class QueueLengths:
    """Mean M/M/1 queue lengths at the three centre kinds (per centre)."""

    icn1: float
    ecn1: float
    icn2: float

    def total(self, num_clusters: int) -> float:
        """The paper's Eq. (6): ``L = C·(2·L_E1 + L_I1) + L_I2``."""
        return num_clusters * (2.0 * self.ecn1 + self.icn1) + self.icn2


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of the Eq. (7) iteration."""

    effective_rate: float
    nominal_rate: float
    total_waiting: float
    iterations: int
    converged: bool
    traffic: TrafficRates
    queue_lengths: QueueLengths

    @property
    def throttling_factor(self) -> float:
        """``λ_eff / λ`` — 1.0 means the finite-source effect is negligible."""
        if self.nominal_rate == 0:
            return 1.0
        return self.effective_rate / self.nominal_rate


def _mm1_queue_length(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean number in system; +inf when saturated."""
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be non-negative, got {arrival_rate!r}")
    if arrival_rate >= service_rate:
        return math.inf
    rho = arrival_rate / service_rate
    return rho / (1.0 - rho)


def queue_lengths_at(
    effective_rate: float,
    num_clusters: int,
    processors_per_cluster: int,
    centers: ServiceCenterModels,
) -> QueueLengths:
    """Queue lengths of all centres when the per-processor rate is ``effective_rate``."""
    traffic = compute_traffic_rates(num_clusters, processors_per_cluster, effective_rate)
    return QueueLengths(
        icn1=_mm1_queue_length(traffic.icn1, centers.icn1_service_rate),
        ecn1=_mm1_queue_length(traffic.ecn1, centers.ecn1_service_rate),
        icn2=_mm1_queue_length(traffic.icn2, centers.icn2_service_rate),
    )


def solve_effective_rate(
    nominal_rate: float,
    num_clusters: int,
    processors_per_cluster: int,
    centers: ServiceCenterModels,
    tolerance: float = 1e-10,
    max_iterations: int = 10_000,
    damping: float = 0.5,
) -> FixedPointResult:
    """Solve the Eq. (7) fixed point ``λ_eff = (N − L(λ_eff))/N · λ``.

    Parameters
    ----------
    nominal_rate:
        The nominal per-processor generation rate λ.
    num_clusters, processors_per_cluster:
        System shape (C, N0).
    centers:
        Service-centre models (provide the service rates µ).
    tolerance:
        Convergence threshold on successive λ_eff values (relative).
    max_iterations:
        Iteration budget for the damped Picard iteration before switching to
        bisection.
    damping:
        Relaxation factor in (0, 1]; 1.0 reproduces the paper's plain
        iteration.

    Raises
    ------
    StabilityError
        If the system cannot be stabilised even as λ_eff → 0 (i.e. a centre
        has a non-positive service rate — impossible for valid inputs — or
        the population constraint cannot hold).
    ConvergenceError
        If neither the damped iteration nor bisection converges.
    """
    if nominal_rate < 0:
        raise ValueError(f"nominal rate must be non-negative, got {nominal_rate!r}")
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must lie in (0, 1], got {damping!r}")

    population = num_clusters * processors_per_cluster

    if nominal_rate == 0:
        zero_traffic = compute_traffic_rates(num_clusters, processors_per_cluster, 0.0)
        zero_lengths = QueueLengths(0.0, 0.0, 0.0)
        return FixedPointResult(
            effective_rate=0.0,
            nominal_rate=0.0,
            total_waiting=0.0,
            iterations=0,
            converged=True,
            traffic=zero_traffic,
            queue_lengths=zero_lengths,
        )

    def waiting_at(rate: float) -> float:
        lengths = queue_lengths_at(rate, num_clusters, processors_per_cluster, centers)
        total = lengths.total(num_clusters)
        # The number of waiting processors can never exceed the population.
        return min(total, float(population)) if math.isfinite(total) else float(population)

    def next_rate(rate: float) -> float:
        return (population - waiting_at(rate)) / population * nominal_rate

    # --- damped Picard iteration (the paper's scheme, plus relaxation) ----------
    current = nominal_rate
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        proposed = next_rate(current)
        updated = damping * proposed + (1.0 - damping) * current
        if abs(updated - current) <= tolerance * max(nominal_rate, 1e-300):
            current = updated
            converged = True
            break
        current = updated

    if not converged:
        # --- bisection fallback on g(x) = next_rate(x) − x --------------------------
        lo, hi = 0.0, nominal_rate
        g_lo = next_rate(lo) - lo
        g_hi = next_rate(hi) - hi
        if g_lo < 0:
            raise StabilityError(
                "system cannot be stabilised: queues saturate even at zero effective rate"
            )
        if g_hi >= 0:
            current = hi
            converged = True
        else:
            for _ in range(200):
                mid = 0.5 * (lo + hi)
                g_mid = next_rate(mid) - mid
                if abs(g_mid) <= tolerance * max(nominal_rate, 1e-300):
                    break
                if g_mid > 0:
                    lo = mid
                else:
                    hi = mid
            current = 0.5 * (lo + hi)
            converged = True

    if not converged:  # pragma: no cover - defensive, bisection always sets it
        raise ConvergenceError("effective-rate iteration failed to converge")

    final_lengths = queue_lengths_at(current, num_clusters, processors_per_cluster, centers)
    final_traffic = compute_traffic_rates(num_clusters, processors_per_cluster, current)
    total_waiting = final_lengths.total(num_clusters)
    if not math.isfinite(total_waiting):
        raise StabilityError(
            "effective-rate solution still saturates a service centre; "
            "the offered load is infeasible for this configuration"
        )

    return FixedPointResult(
        effective_rate=current,
        nominal_rate=nominal_rate,
        total_waiting=total_waiting,
        iterations=iterations,
        converged=converged,
        traffic=final_traffic,
        queue_lengths=final_lengths,
    )
