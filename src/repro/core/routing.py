"""Routing probability of the HMSCS under uniform traffic (paper Eq. 8).

Assumption 3 says the destination of each request is uniformly distributed
over all *other* nodes of the system.  With ``C`` clusters of ``N0``
processors each, a source node has ``C·N0 − 1`` possible destinations of
which ``(C − 1)·N0`` lie outside its own cluster, hence the probability that
a request leaves its cluster is

    P = (C − 1)·N0 / (C·N0 − 1).
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["outgoing_probability", "local_probability", "remote_destinations", "local_destinations"]


def outgoing_probability(num_clusters: int, processors_per_cluster: int) -> float:
    """Probability ``P`` that a request targets a node in another cluster (Eq. 8).

    Degenerate cases: a single cluster gives P = 0; a single node in a
    single cluster has no valid destination at all and also returns 0.
    """
    _validate(num_clusters, processors_per_cluster)
    total = num_clusters * processors_per_cluster
    if total <= 1:
        return 0.0
    return (num_clusters - 1) * processors_per_cluster / (total - 1)


def local_probability(num_clusters: int, processors_per_cluster: int) -> float:
    """Probability ``1 − P`` that a request stays inside its own cluster."""
    return 1.0 - outgoing_probability(num_clusters, processors_per_cluster)


def remote_destinations(num_clusters: int, processors_per_cluster: int) -> int:
    """Number of possible destinations outside the source's cluster."""
    _validate(num_clusters, processors_per_cluster)
    return (num_clusters - 1) * processors_per_cluster


def local_destinations(num_clusters: int, processors_per_cluster: int) -> int:
    """Number of possible destinations inside the source's cluster (excluding itself)."""
    _validate(num_clusters, processors_per_cluster)
    return processors_per_cluster - 1


def _validate(num_clusters: int, processors_per_cluster: int) -> None:
    if num_clusters < 1:
        raise ConfigurationError(f"num_clusters must be >= 1, got {num_clusters!r}")
    if processors_per_cluster < 1:
        raise ConfigurationError(
            f"processors_per_cluster must be >= 1, got {processors_per_cluster!r}"
        )
