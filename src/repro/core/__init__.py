"""The paper's analytical performance model (primary contribution)."""

from .cluster_of_clusters import (
    ClusterOfClustersModel,
    HeterogeneousModelConfig,
    HeterogeneousReport,
    evaluate_heterogeneous_grid,
)
from .fixed_point import FixedPointResult, QueueLengths, queue_lengths_at, solve_effective_rate
from .latency import LatencyBreakdown, WaitingTimes, mean_message_latency, waiting_time
from .model import PAPER_GENERATION_RATE, AnalyticalModel, ModelConfig, PerformanceReport
from .routing import (
    local_destinations,
    local_probability,
    outgoing_probability,
    remote_destinations,
)
from .service_centers import ServiceCenterModels, build_service_centers
from .traffic import TrafficRates, compute_traffic_rates
from .vectorized import GridEvaluation, evaluate_latency_grid

__all__ = [
    "AnalyticalModel",
    "ModelConfig",
    "PerformanceReport",
    "PAPER_GENERATION_RATE",
    "ClusterOfClustersModel",
    "HeterogeneousModelConfig",
    "HeterogeneousReport",
    "evaluate_heterogeneous_grid",
    "outgoing_probability",
    "local_probability",
    "remote_destinations",
    "local_destinations",
    "TrafficRates",
    "compute_traffic_rates",
    "ServiceCenterModels",
    "build_service_centers",
    "GridEvaluation",
    "evaluate_latency_grid",
    "FixedPointResult",
    "QueueLengths",
    "solve_effective_rate",
    "queue_lengths_at",
    "WaitingTimes",
    "LatencyBreakdown",
    "waiting_time",
    "mean_message_latency",
]
