"""Traffic equations of the Super-Cluster queueing model (paper Eqs. 1–5).

Figure 2 of the paper routes each processor request either to its cluster's
ICN1 (probability ``1 − P``) or, for inter-cluster traffic (probability
``P``), through the cluster's ECN1, the system-level ICN2 and back through
an ECN1.  Summing the contributions of all ``N0`` processors of a cluster
(and all ``C`` clusters at the ICN2) gives the per-centre arrival rates:

* Eq. (1)  ``λ_I1      = N0·(1 − P)·λ``          (each cluster's ICN1)
* Eq. (2)  ``λ_E1^(1)  = N0·P·λ``                (ECN1, forward path)
* Eq. (3)  ``λ_I2      = C·N0·P·λ``              (the single ICN2)
* Eq. (4)  ``λ_E1^(2)  = λ_I2 / C = N0·P·λ``     (ECN1, return path)
* Eq. (5)  ``λ_E1      = λ_E1^(1) + λ_E1^(2) = 2·N0·P·λ``

These are *per-service-centre total* arrival rates, with λ the (effective)
per-processor generation rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .routing import outgoing_probability

__all__ = ["TrafficRates", "compute_traffic_rates"]


@dataclass(frozen=True)
class TrafficRates:
    """Arrival rates at the three kinds of service centres (per centre).

    Attributes
    ----------
    icn1:
        Total arrival rate at each cluster's ICN1 (Eq. 1).
    ecn1_forward:
        Arrival rate at each ECN1 due to outgoing requests (Eq. 2).
    ecn1_return:
        Arrival rate at each ECN1 due to returning replies (Eq. 4).
    ecn1:
        Total ECN1 arrival rate (Eq. 5).
    icn2:
        Total arrival rate at the system-level ICN2 (Eq. 3).
    outgoing_probability:
        The routing probability ``P`` used (Eq. 8).
    per_processor_rate:
        The per-processor rate λ these totals were computed from.
    """

    icn1: float
    ecn1_forward: float
    ecn1_return: float
    ecn1: float
    icn2: float
    outgoing_probability: float
    per_processor_rate: float

    @property
    def total_network_load(self) -> float:
        """Aggregate arrival rate over all centres of a ``C``-cluster system.

        Only meaningful when multiplied out by the caller (it needs C);
        provided for completeness of reports.
        """
        return self.icn1 + self.ecn1 + self.icn2


def compute_traffic_rates(
    num_clusters: int,
    processors_per_cluster: int,
    per_processor_rate: float,
    outgoing_prob: float | None = None,
) -> TrafficRates:
    """Evaluate Eqs. (1)–(5) for the given system shape and request rate.

    Parameters
    ----------
    num_clusters:
        Number of clusters ``C``.
    processors_per_cluster:
        Processors per cluster ``N0``.
    per_processor_rate:
        Per-processor request rate λ (an *effective* rate may be passed
        during the Eq. 7 fixed-point iteration).
    outgoing_prob:
        Override for ``P``; by default Eq. (8) is used.
    """
    if per_processor_rate < 0:
        raise ConfigurationError(
            f"per-processor rate must be non-negative, got {per_processor_rate!r}"
        )
    if outgoing_prob is None:
        p = outgoing_probability(num_clusters, processors_per_cluster)
    else:
        if not 0.0 <= outgoing_prob <= 1.0:
            raise ConfigurationError(
                f"outgoing probability must lie in [0, 1], got {outgoing_prob!r}"
            )
        p = float(outgoing_prob)

    n0 = processors_per_cluster
    c = num_clusters
    lam = per_processor_rate

    icn1 = n0 * (1.0 - p) * lam
    ecn1_fwd = n0 * p * lam
    icn2 = c * n0 * p * lam
    ecn1_ret = icn2 / c if c > 0 else 0.0
    ecn1 = ecn1_fwd + ecn1_ret

    return TrafficRates(
        icn1=icn1,
        ecn1_forward=ecn1_fwd,
        ecn1_return=ecn1_ret,
        ecn1=ecn1,
        icn2=icn2,
        outgoing_probability=p,
        per_processor_rate=lam,
    )
