"""Mean message latency of the Super-Cluster model (paper Eqs. 9, 15–16).

Once the per-centre arrival rates are known, every centre behaves as an
M/M/1 queue (assumption 2 + exponential service), so its mean sojourn time
is ``W_i = 1/(µ_i − λ_i)`` (Eq. 16).  A local message only visits its ICN1;
a remote message visits its ECN1, the ICN2 and an ECN1 again, giving the
mean message latency

    T_W = (1 − P)·W_I1 + P·(W_I2 + 2·W_E1)           (Eq. 15)

For the non-blocking network the blocking time is zero, so ``T_C = T_W``
(Eq. 9); for the blocking network the contention is already folded into the
service time of each centre (Eq. 21), so the same expression applies with
the larger service times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StabilityError
from .traffic import TrafficRates

__all__ = ["WaitingTimes", "LatencyBreakdown", "waiting_time", "mean_message_latency"]


def waiting_time(arrival_rate: float, service_rate: float) -> float:
    """M/M/1 mean sojourn time ``W = 1/(µ − λ)`` (paper Eq. 16)."""
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be non-negative, got {arrival_rate!r}")
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate!r}")
    if arrival_rate >= service_rate:
        raise StabilityError(
            f"service centre saturated: λ={arrival_rate:.6g} >= µ={service_rate:.6g}"
        )
    return 1.0 / (service_rate - arrival_rate)


@dataclass(frozen=True)
class WaitingTimes:
    """Mean sojourn times at the three centre kinds (seconds)."""

    icn1: float
    ecn1: float
    icn2: float

    @classmethod
    def from_rates(
        cls,
        traffic: TrafficRates,
        icn1_service_rate: float,
        ecn1_service_rate: float,
        icn2_service_rate: float,
    ) -> "WaitingTimes":
        """Evaluate Eq. (16) for all three centres.

        A centre that receives no traffic still reports its no-load sojourn
        time (the bare service time), which keeps Eq. (15) well-defined in
        the degenerate C = 1 and N0 = 1 corners.
        """
        return cls(
            icn1=waiting_time(traffic.icn1, icn1_service_rate),
            ecn1=waiting_time(traffic.ecn1, ecn1_service_rate),
            icn2=waiting_time(traffic.icn2, icn2_service_rate),
        )


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean message latency and its local/remote components (seconds)."""

    local_latency: float
    remote_latency: float
    outgoing_probability: float
    mean_latency: float

    @property
    def local_weight(self) -> float:
        """Fraction of messages that are intra-cluster (1 − P)."""
        return 1.0 - self.outgoing_probability

    @property
    def remote_weight(self) -> float:
        """Fraction of messages that are inter-cluster (P)."""
        return self.outgoing_probability


def mean_message_latency(waits: WaitingTimes, outgoing_probability: float) -> LatencyBreakdown:
    """Evaluate Eq. (15): ``T_W = (1 − P)·W_I1 + P·(W_I2 + 2·W_E1)``."""
    if not 0.0 <= outgoing_probability <= 1.0:
        raise ValueError(
            f"outgoing probability must lie in [0, 1], got {outgoing_probability!r}"
        )
    local = waits.icn1
    remote = waits.icn2 + 2.0 * waits.ecn1
    mean = (1.0 - outgoing_probability) * local + outgoing_probability * remote
    if not math.isfinite(mean):
        raise StabilityError("mean latency is not finite; a service centre is saturated")
    return LatencyBreakdown(
        local_latency=local,
        remote_latency=remote,
        outgoing_probability=outgoing_probability,
        mean_latency=mean,
    )
