"""High-level facade of the paper's analytical performance model.

:class:`AnalyticalModel` ties together the routing probability (Eq. 8), the
traffic equations (Eqs. 1–5), the architecture-specific service-time models
(Eqs. 10–21), the finite-source fixed point (Eqs. 6–7) and the latency
expression (Eqs. 9, 15–16) into a single call::

    from repro import AnalyticalModel, ModelConfig, paper_evaluation_system
    from repro.network import GIGABIT_ETHERNET, FAST_ETHERNET

    system = paper_evaluation_system(16, GIGABIT_ETHERNET, FAST_ETHERNET)
    report = AnalyticalModel(system, ModelConfig(architecture="non-blocking",
                                                 message_bytes=1024)).evaluate()
    print(report.mean_latency_ms)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.system import MultiClusterSystem
from ..errors import ConfigurationError
from .fixed_point import FixedPointResult, solve_effective_rate
from .latency import LatencyBreakdown, WaitingTimes, mean_message_latency
from .routing import outgoing_probability
from .service_centers import ServiceCenterModels, build_service_centers
from .traffic import TrafficRates, compute_traffic_rates

__all__ = ["ModelConfig", "PerformanceReport", "AnalyticalModel"]

#: The paper's message generation rate (Table 2): 0.25 messages per second.
PAPER_GENERATION_RATE = 0.25


@dataclass(frozen=True)
class ModelConfig:
    """Configuration of one analytical evaluation.

    Parameters
    ----------
    architecture:
        ``"non-blocking"`` (multi-stage fat-tree, §5.2) or ``"blocking"``
        (linear switch array, §5.3).
    message_bytes:
        Fixed message length M in bytes (assumption 6; the paper uses 512
        and 1024).
    generation_rate:
        Per-processor message generation rate λ in messages/second
        (Table 2: 0.25).
    finite_source_correction:
        Apply the Eq. (7) fixed point.  Disabling it evaluates the open
        (infinite-source) model, which is one of the ablations.
    """

    architecture: str = "non-blocking"
    message_bytes: float = 1024.0
    generation_rate: float = PAPER_GENERATION_RATE
    finite_source_correction: bool = True

    def __post_init__(self) -> None:
        if self.message_bytes <= 0:
            raise ConfigurationError(f"message size must be positive, got {self.message_bytes!r}")
        if self.generation_rate < 0:
            raise ConfigurationError(
                f"generation rate must be non-negative, got {self.generation_rate!r}"
            )


@dataclass(frozen=True)
class PerformanceReport:
    """Complete output of one analytical evaluation."""

    system_name: str
    architecture: str
    num_clusters: int
    processors_per_cluster: int
    total_processors: int
    message_bytes: float
    nominal_rate: float
    effective_rate: float
    outgoing_probability: float
    traffic: TrafficRates
    waits: WaitingTimes
    latency: LatencyBreakdown
    service_times: Dict[str, float]
    utilizations: Dict[str, float]
    total_waiting_processors: float
    fixed_point_iterations: int

    # -- convenience accessors -----------------------------------------------------

    @property
    def mean_latency_s(self) -> float:
        """Mean message latency in seconds (the paper's primary metric)."""
        return self.latency.mean_latency

    @property
    def mean_latency_ms(self) -> float:
        """Mean message latency in milliseconds (the unit of Figures 4–7)."""
        return self.latency.mean_latency * 1e3

    @property
    def local_latency_s(self) -> float:
        """Mean latency of intra-cluster messages (seconds)."""
        return self.latency.local_latency

    @property
    def remote_latency_s(self) -> float:
        """Mean latency of inter-cluster messages (seconds)."""
        return self.latency.remote_latency

    @property
    def throttling_factor(self) -> float:
        """``λ_eff / λ`` from the finite-source correction."""
        if self.nominal_rate == 0:
            return 1.0
        return self.effective_rate / self.nominal_rate

    def as_dict(self) -> Dict[str, float]:
        """Flatten the headline metrics into a dictionary (for tables/CSV)."""
        return {
            "num_clusters": self.num_clusters,
            "processors_per_cluster": self.processors_per_cluster,
            "message_bytes": self.message_bytes,
            "architecture_blocking": 1.0 if self.architecture == "blocking" else 0.0,
            "outgoing_probability": self.outgoing_probability,
            "effective_rate": self.effective_rate,
            "mean_latency_ms": self.mean_latency_ms,
            "local_latency_ms": self.local_latency_s * 1e3,
            "remote_latency_ms": self.remote_latency_s * 1e3,
            "icn1_utilization": self.utilizations["icn1"],
            "ecn1_utilization": self.utilizations["ecn1"],
            "icn2_utilization": self.utilizations["icn2"],
            "total_waiting_processors": self.total_waiting_processors,
        }


class AnalyticalModel:
    """The paper's analytical model for a Super-Cluster system."""

    def __init__(self, system: MultiClusterSystem, config: Optional[ModelConfig] = None) -> None:
        self.system = system
        self.config = config if config is not None else ModelConfig()
        # Validation happens eagerly so misuse fails at construction time.
        self.system.validate_super_cluster_assumptions()
        self._centers: ServiceCenterModels = build_service_centers(
            system, self.config.architecture, self.config.message_bytes
        )

    # -- inspection ------------------------------------------------------------------

    @property
    def service_centers(self) -> ServiceCenterModels:
        """The ICN1/ECN1/ICN2 service models used by this evaluation."""
        return self._centers

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self) -> PerformanceReport:
        """Run the full model and return a :class:`PerformanceReport`."""
        system = self.system
        cfg = self.config
        c = system.num_clusters
        n0 = system.processors_per_cluster
        n_total = system.total_processors
        p_out = outgoing_probability(c, n0)

        if cfg.finite_source_correction:
            fp: FixedPointResult = solve_effective_rate(
                nominal_rate=cfg.generation_rate,
                num_clusters=c,
                processors_per_cluster=n0,
                centers=self._centers,
            )
            effective_rate = fp.effective_rate
            traffic = fp.traffic
            total_waiting = fp.total_waiting
            iterations = fp.iterations
        else:
            effective_rate = cfg.generation_rate
            traffic = compute_traffic_rates(c, n0, effective_rate)
            iterations = 0
            total_waiting = float("nan")

        waits = WaitingTimes.from_rates(
            traffic,
            self._centers.icn1_service_rate,
            self._centers.ecn1_service_rate,
            self._centers.icn2_service_rate,
        )
        latency = mean_message_latency(waits, p_out)

        if not cfg.finite_source_correction:
            # Report the open-model queue population for completeness.
            total_waiting = c * (
                2.0 * traffic.ecn1 * waits.ecn1 + traffic.icn1 * waits.icn1
            ) + traffic.icn2 * waits.icn2

        utilizations = {
            "icn1": traffic.icn1 / self._centers.icn1_service_rate,
            "ecn1": traffic.ecn1 / self._centers.ecn1_service_rate,
            "icn2": traffic.icn2 / self._centers.icn2_service_rate,
        }
        service_times = {
            "icn1": self._centers.icn1_service_time,
            "ecn1": self._centers.ecn1_service_time,
            "icn2": self._centers.icn2_service_time,
        }

        return PerformanceReport(
            system_name=system.name,
            architecture=self._centers.icn1.architecture,
            num_clusters=c,
            processors_per_cluster=n0,
            total_processors=n_total,
            message_bytes=cfg.message_bytes,
            nominal_rate=cfg.generation_rate,
            effective_rate=effective_rate,
            outgoing_probability=p_out,
            traffic=traffic,
            waits=waits,
            latency=latency,
            service_times=service_times,
            utilizations=utilizations,
            total_waiting_processors=total_waiting,
            fixed_point_iterations=iterations,
        )

    def mean_latency_s(self) -> float:
        """Shortcut returning just the mean message latency in seconds."""
        return self.evaluate().mean_latency_s

    def __repr__(self) -> str:
        return (
            f"<AnalyticalModel system={self.system.name!r} "
            f"architecture={self.config.architecture!r} M={self.config.message_bytes}>"
        )
