"""Construction of the three service-centre service models for a system.

The Super-Cluster queueing model (Figure 2) has three kinds of service
centres; their mean service times come from the architecture-specific
network models of :mod:`repro.network.models`:

* **ICN1** — connects the ``N0`` processors of one cluster; uses the
  cluster's ICN technology.
* **ECN1** — connects the ``N0`` processors of one cluster to the ICN2;
  uses the cluster's ECN technology.
* **ICN2** — connects the ``C`` clusters; uses the system's ICN2 technology.

The number of attached endpoints determines the fat-tree stage count
(non-blocking) or the chain length and contention factor (blocking), which
is what produces the paper's "different behaviour at C = 16" observation
(both C and N0 drop to or below the 24 switch ports there).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.system import MultiClusterSystem
from ..errors import ConfigurationError
from ..network.models import CommunicationNetworkModel, build_network_model

__all__ = ["ServiceCenterModels", "build_service_centers"]


@dataclass(frozen=True)
class ServiceCenterModels:
    """The three per-kind network service models plus their mean service times."""

    icn1: CommunicationNetworkModel
    ecn1: CommunicationNetworkModel
    icn2: CommunicationNetworkModel
    message_bytes: float

    @property
    def icn1_service_time(self) -> float:
        """Mean service time of each ICN1 centre (seconds)."""
        return self.icn1.service_time(self.message_bytes)

    @property
    def ecn1_service_time(self) -> float:
        """Mean service time of each ECN1 centre (seconds)."""
        return self.ecn1.service_time(self.message_bytes)

    @property
    def icn2_service_time(self) -> float:
        """Mean service time of the ICN2 centre (seconds)."""
        return self.icn2.service_time(self.message_bytes)

    @property
    def icn1_service_rate(self) -> float:
        """Service rate µ of each ICN1 centre."""
        return self.icn1.service_rate(self.message_bytes)

    @property
    def ecn1_service_rate(self) -> float:
        """Service rate µ of each ECN1 centre."""
        return self.ecn1.service_rate(self.message_bytes)

    @property
    def icn2_service_rate(self) -> float:
        """Service rate µ of the ICN2 centre."""
        return self.icn2.service_rate(self.message_bytes)

    def as_dict(self) -> dict:
        """Service times and rates as a dictionary (for reports)."""
        return {
            "icn1_service_time": self.icn1_service_time,
            "ecn1_service_time": self.ecn1_service_time,
            "icn2_service_time": self.icn2_service_time,
            "icn1_service_rate": self.icn1_service_rate,
            "ecn1_service_rate": self.ecn1_service_rate,
            "icn2_service_rate": self.icn2_service_rate,
        }


def build_service_centers(
    system: MultiClusterSystem,
    architecture: str,
    message_bytes: float,
) -> ServiceCenterModels:
    """Build the ICN1/ECN1/ICN2 service models for a Super-Cluster system.

    Parameters
    ----------
    system:
        The system description; must satisfy the Super-Cluster assumptions.
    architecture:
        ``"non-blocking"`` (fat-tree) or ``"blocking"`` (linear array),
        applied to *all* networks of the system, as in the paper's §6.
    message_bytes:
        Fixed message length M (assumption 6).
    """
    if message_bytes <= 0:
        raise ConfigurationError(f"message size must be positive, got {message_bytes!r}")
    system.validate_super_cluster_assumptions()

    template = system.clusters[0]
    n0 = system.processors_per_cluster
    c = system.num_clusters

    icn1 = build_network_model(architecture, template.icn_technology, system.switch, n0)
    ecn1 = build_network_model(architecture, template.ecn_technology, system.switch, n0)
    # The ICN2 interconnects the C cluster-level ECN uplinks.
    icn2 = build_network_model(architecture, system.icn2_technology, system.switch, max(c, 1))

    return ServiceCenterModels(icn1=icn1, ecn1=ecn1, icn2=icn2, message_bytes=float(message_bytes))
