"""Vectorized evaluation of the analytical model over parameter grids.

The figure sweeps (§6, Figures 4–7) evaluate the closed-form model at every
(message size, cluster count) grid point.  :class:`AnalyticalModel` solves
each point independently — dataclass construction plus a damped fixed-point
iteration per point — which caps the sweep at a few thousand evaluations
per second.  :func:`evaluate_latency_grid` runs the *same* iteration for
all points simultaneously on NumPy arrays:

* per-point service rates and routing probabilities are assembled once,
* the Eq. (7) fixed point advances every unconverged point per step,
  freezing each point at exactly the iterate where the scalar solver would
  have stopped, and
* Eqs. (1)–(5), (15)–(16) are evaluated elementwise on the whole grid.

Because every update uses the same IEEE-754 double operations as the
scalar solver, the grid evaluation is *bit-identical* to calling
``AnalyticalModel(system, config).evaluate()`` point by point (asserted by
the test suite).  Points the vectorized iteration cannot finish — the
iteration budget is exhausted (the scalar solver's bisection fallback) or
a centre saturates — are delegated to the scalar solver so error behaviour
and edge-case results also match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..cluster.system import MultiClusterSystem
from .model import AnalyticalModel, ModelConfig
from .routing import outgoing_probability
from .service_centers import build_service_centers

__all__ = ["GridEvaluation", "evaluate_latency_grid"]

#: Defaults mirrored from :func:`repro.core.fixed_point.solve_effective_rate`.
_TOLERANCE = 1e-10
_MAX_ITERATIONS = 10_000
_DAMPING = 0.5


@dataclass(frozen=True)
class GridEvaluation:
    """Per-point results of one vectorized analytical sweep.

    All arrays are aligned with the ``evaluations`` sequence passed to
    :func:`evaluate_latency_grid`.
    """

    mean_latency_s: np.ndarray
    local_latency_s: np.ndarray
    remote_latency_s: np.ndarray
    effective_rate: np.ndarray
    outgoing_probability: np.ndarray
    iterations: np.ndarray
    #: ICN2 utilisation per point (``λ_I2 / µ_I2``, the same division the
    #: scalar report performs) — used by the offered-load ablation sweep.
    icn2_utilization: np.ndarray
    #: ``λ_eff / λ`` per point (1.0 at zero nominal rate, like the scalar
    #: report's ``throttling_factor`` property).
    throttling_factor: np.ndarray
    #: Indices that were delegated to the scalar solver (non-converged or
    #: degenerate points); empty for ordinary figure grids.
    scalar_fallback: Tuple[int, ...]

    @property
    def mean_latency_ms(self) -> np.ndarray:
        """Mean latency per point in milliseconds (the figures' unit)."""
        return self.mean_latency_s * 1e3

    def __len__(self) -> int:
        return int(self.mean_latency_s.size)


def _scalar_point(
    system: MultiClusterSystem, config: ModelConfig
) -> Tuple[float, float, float, float, int, float, float]:
    """Evaluate one point through the scalar model (fallback path)."""
    report = AnalyticalModel(system, config).evaluate()
    return (
        report.mean_latency_s,
        report.local_latency_s,
        report.remote_latency_s,
        report.effective_rate,
        report.fixed_point_iterations,
        report.utilizations["icn2"],
        report.throttling_factor,
    )


def evaluate_latency_grid(
    evaluations: Sequence[Tuple[MultiClusterSystem, ModelConfig]],
) -> GridEvaluation:
    """Evaluate the analytical model at every ``(system, config)`` point.

    Parameters
    ----------
    evaluations:
        The grid, one ``(system, config)`` pair per point.  Systems must
        satisfy the Super-Cluster assumptions (as for
        :class:`AnalyticalModel`).

    Returns
    -------
    GridEvaluation
        Latencies and fixed-point diagnostics, bit-identical per point to
        the scalar :meth:`AnalyticalModel.evaluate`.
    """
    n_points = len(evaluations)
    if n_points == 0:
        empty = np.empty(0, dtype=np.float64)
        return GridEvaluation(empty, empty.copy(), empty.copy(), empty.copy(),
                              empty.copy(), np.empty(0, dtype=np.int64),
                              empty.copy(), empty.copy(), ())

    # -- assemble per-point inputs (cheap scalar work) ---------------------
    c_arr = np.empty(n_points, dtype=np.float64)
    n0_arr = np.empty(n_points, dtype=np.float64)
    p_arr = np.empty(n_points, dtype=np.float64)
    mu_icn1 = np.empty(n_points, dtype=np.float64)
    mu_ecn1 = np.empty(n_points, dtype=np.float64)
    mu_icn2 = np.empty(n_points, dtype=np.float64)
    nominal = np.empty(n_points, dtype=np.float64)
    fallback: List[int] = []

    for i, (system, config) in enumerate(evaluations):
        centers = build_service_centers(system, config.architecture, config.message_bytes)
        c = system.num_clusters
        n0 = system.processors_per_cluster
        c_arr[i] = float(c)
        n0_arr[i] = float(n0)
        p_arr[i] = outgoing_probability(c, n0)
        mu_icn1[i] = centers.icn1_service_rate
        mu_ecn1[i] = centers.ecn1_service_rate
        mu_icn2[i] = centers.icn2_service_rate
        nominal[i] = config.generation_rate
        if not config.finite_source_correction or config.generation_rate == 0:
            # The open model and the zero-rate corner take dedicated scalar
            # branches in AnalyticalModel; not worth vectorizing.
            fallback.append(i)

    population = c_arr * n0_arr
    threshold = _TOLERANCE * np.maximum(nominal, 1e-300)

    # -- the Eq. (7) fixed point, advanced for all points at once ----------
    # ``active`` points still iterate; a point freezes at the exact iterate
    # where the scalar loop would have returned.
    current = nominal.copy()
    iterations = np.zeros(n_points, dtype=np.int64)
    active = np.ones(n_points, dtype=bool)
    for idx in fallback:
        active[idx] = False

    def waiting_at(rate: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Vector form of the scalar solver's ``waiting_at`` on ``mask``."""
        lam_icn1 = n0_arr[mask] * (1.0 - p_arr[mask]) * rate
        lam_ecn1_fwd = n0_arr[mask] * p_arr[mask] * rate
        lam_icn2 = c_arr[mask] * n0_arr[mask] * p_arr[mask] * rate
        lam_ecn1 = lam_ecn1_fwd + lam_icn2 / c_arr[mask]
        with np.errstate(divide="ignore", invalid="ignore"):
            l_icn1 = _queue_length(lam_icn1, mu_icn1[mask])
            l_ecn1 = _queue_length(lam_ecn1, mu_ecn1[mask])
            l_icn2 = _queue_length(lam_icn2, mu_icn2[mask])
        total = c_arr[mask] * (2.0 * l_ecn1 + l_icn1) + l_icn2
        pop = population[mask]
        return np.where(np.isfinite(total), np.minimum(total, pop), pop)

    for step in range(1, _MAX_ITERATIONS + 1):
        if not active.any():
            break
        cur = current[active]
        waiting = waiting_at(cur, active)
        proposed = (population[active] - waiting) / population[active] * nominal[active]
        updated = _DAMPING * proposed + (1.0 - _DAMPING) * cur
        done = np.abs(updated - cur) <= threshold[active]
        current[active] = updated
        iterations[active] = step
        still = active.copy()
        still[active] = ~done
        active = still

    # Points that exhausted the budget need the scalar solver's bisection.
    for idx in np.nonzero(active)[0]:
        fallback.append(int(idx))

    # -- Eqs. (1)–(5), (15)–(16) at the solution ---------------------------
    # lam_ecn1 must be built as forward + return (icn2/c), NOT the
    # algebraically equal 2*n0*p*lam: the scalar compute_traffic_rates sums
    # the two components, and the different rounding breaks bit-identity
    # for non-power-of-two cluster counts.
    lam_icn1 = n0_arr * (1.0 - p_arr) * current
    lam_icn2 = c_arr * n0_arr * p_arr * current
    lam_ecn1 = n0_arr * p_arr * current + lam_icn2 / c_arr
    saturated = (
        (lam_icn1 >= mu_icn1) | (lam_ecn1 >= mu_ecn1) | (lam_icn2 >= mu_icn2)
    )
    for idx in np.nonzero(saturated)[0]:
        if int(idx) not in fallback:
            # Let the scalar path raise its StabilityError (or resolve the
            # point through bisection) exactly as a per-point evaluation
            # would.
            fallback.append(int(idx))

    with np.errstate(divide="ignore", invalid="ignore"):
        w_icn1 = 1.0 / (mu_icn1 - lam_icn1)
        w_ecn1 = 1.0 / (mu_ecn1 - lam_ecn1)
        w_icn2 = 1.0 / (mu_icn2 - lam_icn2)
    local = w_icn1
    remote = w_icn2 + 2.0 * w_ecn1
    mean = (1.0 - p_arr) * local + p_arr * remote
    icn2_util = lam_icn2 / mu_icn2
    with np.errstate(divide="ignore", invalid="ignore"):
        throttling = np.where(nominal == 0.0, 1.0, current / nominal)

    result = GridEvaluation(
        mean_latency_s=mean,
        local_latency_s=local,
        remote_latency_s=remote,
        effective_rate=current,
        outgoing_probability=p_arr,
        iterations=iterations,
        icn2_utilization=icn2_util,
        throttling_factor=throttling,
        scalar_fallback=tuple(sorted(set(fallback))),
    )
    for idx in result.scalar_fallback:
        system, config = evaluations[idx]
        mean_s, local_s, remote_s, eff, iters, util_icn2, throttle = _scalar_point(
            system, config
        )
        result.mean_latency_s[idx] = mean_s
        result.local_latency_s[idx] = local_s
        result.remote_latency_s[idx] = remote_s
        result.effective_rate[idx] = eff
        result.iterations[idx] = iters
        result.icn2_utilization[idx] = util_icn2
        result.throttling_factor[idx] = throttle
    return result


def _queue_length(lam: np.ndarray, mu: np.ndarray) -> np.ndarray:
    """Vector M/M/1 mean number in system; ``inf`` when saturated.

    The stable branch computes ``rho / (1 - rho)`` with ``rho = lam/mu`` —
    the same two operations, in the same order, as the scalar
    ``_mm1_queue_length`` — so unsaturated points match it bit-for-bit.
    """
    rho = lam / mu
    out = rho / (1.0 - rho)
    return np.where(lam >= mu, np.inf, out)
