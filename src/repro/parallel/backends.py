"""Execution backends for :class:`repro.parallel.SweepEngine`.

A *backend* owns the mechanics of getting independent
:class:`~repro.parallel.engine.SweepTask`\\ s executed — in-process, across a
local process pool, or over a TCP work queue spanning machines — while the
engine owns the policy: result ordering, progress reporting and error
attribution.  The contract is a single generator method::

    Backend.execute(tasks) -> Iterator[TaskOutcome]

yielding exactly one :class:`TaskOutcome` per task (until the first error
outcome, after which the backend may stop early).  Outcomes may arrive in
any order; the engine reassembles them into task order.  Because per-task
seeds are a pure function of the sweep definition
(:mod:`repro.parallel.seeding`), every backend produces bit-identical
results for the same task list — which backend to use is purely a question
of where the CPU time should be spent.

Three implementations:

:class:`SerialBackend`
    Runs tasks in-process, in order — zero overhead, no pickling.
:class:`ProcessPoolBackend`
    Fans tasks out across a :class:`concurrent.futures.ProcessPoolExecutor`
    with deterministic error attribution (completed futures are inspected in
    task order within each ``wait`` batch).
:class:`SocketBackend`
    A TCP work-queue coordinator.  Workers are ``python -m
    repro.parallel.worker`` processes — spawned locally, dialled out to
    (``--listen`` daemons on other machines), or accepted as inbound
    ``--connect`` clients — that pull pickled tasks and stream results
    back.  A lost worker's in-flight task is requeued onto the remaining
    workers; repeated loss (or losing every worker) surfaces as
    :class:`~repro.errors.WorkerError`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import socket
import subprocess
import sys
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import BrokenExecutor, FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import WorkerError
from .protocol import ProtocolError, parse_address, recv_message, send_message

__all__ = [
    "Backend",
    "TaskOutcome",
    "SerialBackend",
    "ProcessPoolBackend",
    "SocketBackend",
    "socket_backend_from_spec",
]


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task.

    ``error is None`` means success (``value`` holds the result).
    ``infrastructure=True`` marks failures of the execution substrate itself
    (dead worker, broken pool) rather than of the task's own code — the
    engine turns those into :class:`~repro.errors.WorkerError` instead of
    re-raising the original exception type.
    """

    index: int
    value: Any = None
    error: Optional[BaseException] = None
    infrastructure: bool = False


def invoke_task(task) -> Any:
    """Run one task — the unit of work every backend ultimately executes."""
    return task.fn(*task.args, **task.kwargs)


class Backend(ABC):
    """Interface every sweep-execution backend implements."""

    #: Human-readable backend name (used in benchmarks and reprs).
    name = "abstract"

    @abstractmethod
    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        """Yield one :class:`TaskOutcome` per task, in any order.

        After yielding an outcome with ``error`` set, the backend may stop;
        the engine raises and closes the generator (its ``finally`` blocks
        must release pools/sockets/processes).
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class SerialBackend(Backend):
    """Run every task in the calling process, in task order."""

    name = "serial"

    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        for index, task in enumerate(tasks):
            try:
                value = invoke_task(task)
            except Exception as exc:
                yield TaskOutcome(index, error=exc)
                return
            yield TaskOutcome(index, value=value)


class ProcessPoolBackend(Backend):
    """Fan tasks out across a local :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Number of worker processes (capped at the task count per run).
    mp_context:
        Name of the multiprocessing start method (``"fork"``, ``"spawn"``,
        ...); ``None`` uses the platform default.
    """

    name = "pool"

    def __init__(self, jobs: int, mp_context: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = int(jobs)
        self.mp_context = mp_context

    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        context = multiprocessing.get_context(self.mp_context) if self.mp_context else None
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks)), mp_context=context)
        finished = False
        try:
            future_index = {pool.submit(invoke_task, task): i for i, task in enumerate(tasks)}
            pending = set(future_index)
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                # Deterministic error attribution: inspect completed futures
                # in task order within the batch.
                for future in sorted(done, key=future_index.__getitem__):
                    index = future_index[future]
                    exc = future.exception()
                    if exc is not None:
                        # BrokenExecutor means the pool itself broke (a
                        # worker died before reporting back).
                        yield TaskOutcome(
                            index, error=exc, infrastructure=isinstance(exc, BrokenExecutor)
                        )
                        return
                    yield TaskOutcome(index, value=future.result())
            finished = True
        finally:
            if finished:
                pool.shutdown(wait=True)
            else:
                # Drop queued tasks and surface the failure immediately
                # rather than draining the in-flight simulations first.
                pool.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:
        return f"<ProcessPoolBackend jobs={self.jobs} context={self.mp_context or 'default'}>"


class SocketBackend(Backend):
    """TCP work-queue coordinator distributing tasks to socket workers.

    Workers run ``python -m repro.parallel.worker`` and can join a run in
    three ways, combinable within one backend:

    * ``spawn_workers=N`` — the coordinator spawns ``N`` local worker
      processes that dial back into its listening socket (the zero-setup
      path, also what ``--backend socket --workers N`` uses);
    * ``worker_addresses=[(host, port), ...]`` — the coordinator dials out
      to worker daemons already listening there (``worker --listen``), the
      multi-host path behind ``--workers HOST:PORT,...``;
    * ``expected_workers=N`` — the coordinator waits for ``N`` inbound
      connections from externally started ``worker --connect HOST:PORT``
      processes (requires a routable ``bind`` address).

    The listening socket stays open for the whole run, so replacement
    workers may join (reconnect) at any time.  A worker lost mid-task gets
    its task requeued onto the remaining workers, up to
    ``max_task_attempts`` executions per task; exhausting the budget — or
    running out of live workers with no way to gain new ones — surfaces as
    :class:`~repro.errors.WorkerError`.  Results are bit-identical to the
    serial and pool backends because tasks carry their own seeds.

    Every :meth:`execute` call establishes its own fleet, so a campaign
    that issues many separate runs (e.g. ``report --simulate``: one per
    figure plus the ratio study) pays worker start-up per run in
    ``spawn_workers`` mode.  ``worker_addresses`` daemons amortise that
    cost: they stay alive between runs and serve sessions back to back.
    """

    name = "socket"

    def __init__(
        self,
        spawn_workers: Optional[int] = None,
        worker_addresses: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        bind: Union[str, Tuple[str, int]] = ("127.0.0.1", 0),
        expected_workers: int = 0,
        accept_timeout: float = 30.0,
        max_task_attempts: int = 3,
    ) -> None:
        if spawn_workers is not None and spawn_workers < 1:
            raise ValueError(f"spawn_workers must be >= 1, got {spawn_workers!r}")
        if expected_workers < 0:
            raise ValueError(f"expected_workers must be >= 0, got {expected_workers!r}")
        if max_task_attempts < 1:
            raise ValueError(f"max_task_attempts must be >= 1, got {max_task_attempts!r}")
        addresses = [
            parse_address(a) if isinstance(a, str) else (str(a[0]), int(a[1]))
            for a in (worker_addresses or [])
        ]
        if spawn_workers is None and not addresses and expected_workers == 0:
            spawn_workers = 1
        self.spawn_workers = spawn_workers or 0
        self.worker_addresses = addresses
        self.bind = parse_address(bind) if isinstance(bind, str) else (str(bind[0]), int(bind[1]))
        self.expected_workers = int(expected_workers)
        self.accept_timeout = float(accept_timeout)
        self.max_task_attempts = int(max_task_attempts)

    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        return _SocketRun(self, tasks).outcomes()

    def __repr__(self) -> str:
        parts = []
        if self.spawn_workers:
            parts.append(f"spawn={self.spawn_workers}")
        if self.worker_addresses:
            parts.append(f"addresses={self.worker_addresses!r}")
        if self.expected_workers:
            parts.append(f"expected={self.expected_workers}")
        return f"<SocketBackend {' '.join(parts) or 'idle'}>"


class _SocketRun:
    """State of one :meth:`SocketBackend.execute` call.

    One thread per connected worker drives the send-task/receive-result
    conversation; a shared condition variable guards the pending queue and
    the finished/attempt bookkeeping; completed outcomes flow to the
    coordinating generator through a thread-safe queue.
    """

    def __init__(self, backend: SocketBackend, tasks: Sequence) -> None:
        self._backend = backend
        self._tasks = list(tasks)
        self._cond = threading.Condition()
        self._pending: deque = deque(range(len(self._tasks)))
        self._attempts = [0] * len(self._tasks)
        self._finished = [False] * len(self._tasks)
        self._unfinished = len(self._tasks)
        self._live_workers = 0
        self._workers_joined = 0
        self._no_worker_since: Optional[float] = None
        self._closing = False
        self._outcomes: "queue.Queue[TaskOutcome]" = queue.Queue()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._serve_threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._processes: List[subprocess.Popen] = []

    # -- lifecycle ---------------------------------------------------------

    def outcomes(self) -> Iterator[TaskOutcome]:
        """The generator handed to the engine: yield outcomes, clean up."""
        try:
            self._start()
            delivered = 0
            while delivered < len(self._tasks):
                try:
                    outcome = self._outcomes.get(timeout=0.2)
                except queue.Empty:
                    if self._stalled():
                        index = self._first_unfinished()
                        yield TaskOutcome(
                            index,
                            error=ConnectionError(
                                "all socket workers were lost and no replacement can join"
                            ),
                            infrastructure=True,
                        )
                        return
                    continue
                delivered += 1
                yield outcome
                if outcome.error is not None:
                    return
        finally:
            self._shutdown()

    def _start(self) -> None:
        backend = self._backend
        if backend.spawn_workers or backend.expected_workers:
            self._listener = socket.create_server(backend.bind, backlog=16)
            self._listener.settimeout(0.2)
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="sweep-socket-accept", daemon=True
            )
            self._accept_thread.start()
        for _ in range(backend.spawn_workers):
            self._spawn_local_worker()
        for address in backend.worker_addresses:
            self._add_worker(self._dial(address), address=address)
        self._await_initial_workers()

    def _spawn_local_worker(self) -> None:
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        if host in ("0.0.0.0", "::"):
            host = "127.0.0.1"
        env = dict(os.environ)
        # Make sure the child can import this package even when the parent
        # relies on a cwd-relative PYTHONPATH or an installed checkout.
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        self._processes.append(
            subprocess.Popen(
                [sys.executable, "-m", "repro.parallel.worker", "--connect", f"{host}:{port}"],
                env=env,
                stdout=subprocess.DEVNULL,
            )
        )

    def _dial(self, address: Tuple[str, int]) -> socket.socket:
        try:
            conn = socket.create_connection(address, timeout=self._backend.accept_timeout)
        except OSError as exc:
            raise WorkerError(
                self._first_unfinished(),
                self._label(self._first_unfinished()),
                ConnectionError(f"could not reach socket worker at {address[0]}:{address[1]}: {exc}"),
            ) from exc
        return conn

    def _accept_loop(self) -> None:
        """Accept inbound workers for the whole run (late joins welcome)."""
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            # Handshake on a separate thread: a stray connection that never
            # sends its hello (port scanner, health probe) must not block
            # legitimate workers from joining for accept_timeout seconds.
            threading.Thread(
                target=self._add_worker,
                args=(conn,),
                name="sweep-socket-handshake",
                daemon=True,
            ).start()

    def _handshake(self, conn: socket.socket) -> bool:
        """Consume the worker's hello frame; close the socket on failure."""
        try:
            conn.settimeout(self._backend.accept_timeout)
            hello = recv_message(conn)
            if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
                raise ProtocolError(f"expected a hello frame, got {hello!r}")
            conn.settimeout(None)
            return True
        except (OSError, ConnectionError):
            try:
                conn.close()
            except OSError:
                pass
            return False

    def _add_worker(self, conn: socket.socket, address: Optional[Tuple[str, int]] = None) -> None:
        if not self._handshake(conn):
            return
        with self._cond:
            if self._closing:
                conn.close()
                return
            self._live_workers += 1
            self._workers_joined += 1
            self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve,
                args=(conn, address),
                name="sweep-socket-worker",
                daemon=True,
            )
            self._serve_threads.append(thread)
            # Start before releasing the lock: _shutdown acquires it to set
            # _closing, so every thread it finds in _serve_threads has been
            # started and is safe to join.
            thread.start()
            self._cond.notify_all()

    def _await_initial_workers(self) -> None:
        """Block until the initially requested workers joined (or time out).

        Workers that join start pulling tasks immediately, and a fast sweep
        may even finish — its serve threads exiting and ``_live_workers``
        dropping back to zero — while this method still waits, so the exit
        conditions are phrased in terms of workers *ever joined* and work
        left, never just the instantaneous live count.
        """
        backend = self._backend
        wanted = backend.spawn_workers + backend.expected_workers + len(backend.worker_addresses)
        deadline = time.monotonic() + backend.accept_timeout
        spawn_only = (
            backend.spawn_workers > 0
            and backend.expected_workers == 0
            and not backend.worker_addresses
        )
        with self._cond:
            while time.monotonic() < deadline:
                if self._unfinished == 0 or self._workers_joined >= wanted:
                    return
                if (
                    spawn_only
                    and self._workers_joined == 0
                    and all(process.poll() is not None for process in self._processes)
                ):
                    # Every spawned worker died before connecting (e.g. its
                    # interpreter crashed on startup): fail now instead of
                    # sitting out the whole accept timeout.
                    break
                self._cond.wait(timeout=0.1)
            if self._workers_joined == 0:
                raise WorkerError(
                    self._first_unfinished(),
                    self._label(self._first_unfinished()),
                    ConnectionError(
                        f"no socket worker connected within {backend.accept_timeout:.1f}s"
                    ),
                )

    def _shutdown(self) -> None:
        with self._cond:
            self._closing = True
            self._pending.clear()
            self._unfinished = 0
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # Closing the connections first unblocks serve threads stuck in a
        # recv for an in-flight task (abort path); on the success path the
        # threads have already sent their shutdown frames and exited.
        for conn in self._connections:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._serve_threads:
            thread.join(timeout=2.0)
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=2.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    # -- worker conversation ----------------------------------------------

    def _serve(self, conn: socket.socket, address: Optional[Tuple[str, int]]) -> None:
        redials = 1 if address is not None else 0
        try:
            while True:
                index = self._next_index()
                if index is None:
                    try:
                        send_message(conn, ("shutdown",))
                    except OSError:
                        pass
                    return
                try:
                    try:
                        send_message(conn, ("task", index, self._tasks[index]))
                    except (pickle.PicklingError, TypeError, AttributeError) as exc:
                        # The task itself cannot be serialised (e.g. a
                        # lambda).  Frames are pickled before any byte hits
                        # the wire, so the worker is still healthy: report
                        # a task error — matching the pool backend — and
                        # keep serving.
                        self._complete(TaskOutcome(index, error=exc))
                        continue
                    except (OSError, ConnectionError) as exc:
                        conn = self._handle_loss(conn, index, exc, address, redials)
                        if conn is None:
                            return
                        redials -= 1
                        continue
                    try:
                        reply = recv_message(conn)
                    except ProtocolError as exc:
                        # The reply arrived but would not deserialise (e.g.
                        # version skew between hosts): re-running the task
                        # elsewhere fails identically, so report a task
                        # error instead of burning the requeue budget.  The
                        # stream may be out of frame-alignment, so drop the
                        # connection too.
                        self._complete(TaskOutcome(index, error=exc))
                        try:
                            conn.close()
                        except OSError:
                            pass
                        return
                    except (OSError, ConnectionError) as exc:
                        conn = self._handle_loss(conn, index, exc, address, redials)
                        if conn is None:
                            return
                        redials -= 1
                        continue
                except BaseException as exc:
                    # Last resort: whatever happens, a claimed index must
                    # never be orphaned — an unreported task would hang the
                    # coordinating generator forever.
                    self._complete(TaskOutcome(index, error=exc))
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                if (
                    isinstance(reply, tuple)
                    and len(reply) == 3
                    and reply[0] in ("result", "error")
                    and reply[1] == index
                ):
                    kind, _idx, payload = reply
                    if kind == "result":
                        self._complete(TaskOutcome(index, value=payload))
                    else:
                        self._complete(TaskOutcome(index, error=payload))
                else:
                    self._requeue(
                        index, ProtocolError(f"worker sent an invalid reply: {reply!r}")
                    )
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
        finally:
            with self._cond:
                self._live_workers -= 1
                self._cond.notify_all()

    def _handle_loss(
        self,
        conn: socket.socket,
        index: int,
        cause: BaseException,
        address: Optional[Tuple[str, int]],
        redials: int,
    ) -> Optional[socket.socket]:
        """Requeue a lost task; for dialled daemons try one reconnect.

        Returns the replacement connection, or ``None`` when this serve
        thread should give the worker up.
        """
        self._requeue(index, cause)
        try:
            conn.close()
        except OSError:
            pass
        # Dialled daemons survive a dropped session (e.g. the network
        # blipped or the daemon restarted); spawned/inbound workers whose
        # process died cannot be redialled.
        if address is None or redials <= 0 or self._closing:
            return None
        try:
            replacement = socket.create_connection(address, timeout=5.0)
        except OSError:
            return None
        if not self._handshake(replacement):
            return None
        with self._cond:
            if self._closing:
                try:
                    replacement.close()
                except OSError:
                    pass
                return None
            self._connections.append(replacement)
        return replacement

    def _next_index(self) -> Optional[int]:
        """Claim the next pending task; block while requeues may still come."""
        with self._cond:
            while not self._closing:
                if self._pending:
                    return self._pending.popleft()
                if self._unfinished == 0:
                    return None
                # Tasks are in flight on other workers; wait in case one
                # is requeued after a worker loss.
                self._cond.wait(timeout=0.2)
            return None

    def _complete(self, outcome: TaskOutcome) -> None:
        with self._cond:
            if self._finished[outcome.index]:
                return
            self._finished[outcome.index] = True
            self._unfinished -= 1
            self._cond.notify_all()
        self._outcomes.put(outcome)

    def _requeue(self, index: int, cause: BaseException) -> None:
        with self._cond:
            if self._finished[index] or self._closing:
                return
            self._attempts[index] += 1
            if self._attempts[index] >= self._backend.max_task_attempts:
                self._finished[index] = True
                self._unfinished -= 1
                self._cond.notify_all()
                self._outcomes.put(TaskOutcome(index, error=cause, infrastructure=True))
            else:
                self._pending.appendleft(index)
                self._cond.notify_all()

    # -- bookkeeping -------------------------------------------------------

    def _stalled(self) -> bool:
        """True when unfinished work remains but no worker can ever run it."""
        with self._cond:
            if self._unfinished == 0 or self._live_workers > 0:
                self._no_worker_since = None
                return False
            now = time.monotonic()
            if self._no_worker_since is None:
                self._no_worker_since = now
            # A spawned worker process that is still running may simply be
            # between connect attempts.
            if any(process.poll() is None for process in self._processes):
                return False
            # Externally managed workers (--connect clients) may reconnect
            # through the open listener — but only within a bounded grace
            # period, otherwise a fully dead fleet hangs the run forever.
            if self._backend.expected_workers > 0:
                return now - self._no_worker_since >= self._backend.accept_timeout
            return True

    def _first_unfinished(self) -> int:
        with self._cond:
            for index, done in enumerate(self._finished):
                if not done:
                    return index
            return 0

    def _label(self, index: int) -> str:
        task = self._tasks[index]
        return getattr(task, "label", "")


def socket_backend_from_spec(
    spec: Optional[str], default_workers: int = 1, **kwargs
) -> SocketBackend:
    """Build a :class:`SocketBackend` from a CLI ``--workers`` value.

    ``spec`` is either an integer (``"4"`` — spawn that many local worker
    processes), a comma-separated ``HOST:PORT`` list (connect to worker
    daemons started with ``python -m repro.parallel.worker --listen ...``),
    or ``None`` (spawn ``default_workers`` local workers).
    """
    if spec is None or not spec.strip():
        return SocketBackend(spawn_workers=max(int(default_workers), 1), **kwargs)
    spec = spec.strip()
    if spec.lstrip("+-").isdigit():
        count = int(spec)
        if count < 1:
            raise ValueError(f"--workers needs a positive worker count, got {spec!r}")
        return SocketBackend(spawn_workers=count, **kwargs)
    addresses = [parse_address(part) for part in spec.split(",") if part.strip()]
    if not addresses:
        raise ValueError(f"--workers got no usable addresses in {spec!r}")
    return SocketBackend(worker_addresses=addresses, **kwargs)
