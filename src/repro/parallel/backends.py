"""Execution backends for :class:`repro.parallel.SweepEngine`.

A *backend* owns the mechanics of getting independent
:class:`~repro.parallel.engine.SweepTask`\\ s executed — in-process, across a
local process pool, or over a TCP work queue spanning machines — while the
engine owns the policy: result ordering, progress reporting and error
attribution.  The contract is a single generator method::

    Backend.execute(tasks) -> Iterator[TaskOutcome]

yielding exactly one :class:`TaskOutcome` per task (until the first error
outcome, after which the backend may stop early).  Outcomes may arrive in
any order; the engine reassembles them into task order.  Because per-task
seeds are a pure function of the sweep definition
(:mod:`repro.parallel.seeding`), every backend produces bit-identical
results for the same task list — which backend to use is purely a question
of where the CPU time should be spent.

Four implementations:

:class:`SerialBackend`
    Runs tasks in-process, in order — zero overhead, no pickling.
:class:`ProcessPoolBackend`
    Fans tasks out across a :class:`concurrent.futures.ProcessPoolExecutor`
    with deterministic error attribution (completed futures are inspected in
    task order within each ``wait`` batch).
:class:`SocketBackend`
    A TCP work-queue coordinator.  Workers are ``python -m
    repro.parallel.worker`` processes — spawned locally, dialled out to
    (``--listen`` daemons on other machines), or accepted as inbound
    ``--connect`` clients — that pull pickled tasks and stream results
    back.  A lost worker's in-flight task is requeued onto the remaining
    workers; repeated loss (or losing every worker) surfaces as
    :class:`~repro.errors.WorkerError`.
:class:`SSHBackend`
    The self-provisioning multi-host variant of :class:`SocketBackend`:
    instead of requiring worker daemons to be started by hand on every
    machine, the coordinator launches one ``python -m
    repro.parallel.worker --connect`` per host through an ``ssh HOST``
    subprocess, waits for the workers to dial back in, and tears the whole
    fleet down when the run ends.  Coordinator, requeue-on-loss and
    bit-identity semantics are inherited unchanged.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import shlex
import socket
import subprocess
import sys
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import BrokenExecutor, FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import WorkerError
from ..testing import chaos
from .protocol import ProtocolError, parse_address, recv_message, send_message
from .retry import backoff_delays

__all__ = [
    "Backend",
    "TaskOutcome",
    "SerialBackend",
    "ProcessPoolBackend",
    "PersistentPoolBackend",
    "SocketBackend",
    "SSHBackend",
    "socket_backend_from_spec",
    "ssh_backend_from_spec",
]


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task.

    ``error is None`` means success (``value`` holds the result).
    ``infrastructure=True`` marks failures of the execution substrate itself
    (dead worker, broken pool) rather than of the task's own code — the
    engine turns those into :class:`~repro.errors.WorkerError` instead of
    re-raising the original exception type.
    """

    index: int
    value: Any = None
    error: Optional[BaseException] = None
    infrastructure: bool = False


def invoke_task(task) -> Any:
    """Run one task — the unit of work every backend ultimately executes."""
    value = task.fn(*task.args, **task.kwargs)
    injector = chaos.controller()
    if injector is not None:
        # Chaos harness: a scheduled pool-worker kill fires here, after the
        # work but before the result reaches the executor (the pool breaks,
        # surfacing as a clean infrastructure WorkerError).  In-scope only
        # for worker processes, so serial runs are never killed in place.
        injector.maybe_kill()
    return value


class Backend(ABC):
    """Interface every sweep-execution backend implements."""

    #: Human-readable backend name (used in benchmarks and reprs).
    name = "abstract"

    @abstractmethod
    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        """Yield one :class:`TaskOutcome` per task, in any order.

        After yielding an outcome with ``error`` set, the backend may stop;
        the engine raises and closes the generator (its ``finally`` blocks
        must release pools/sockets/processes).
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class SerialBackend(Backend):
    """Run every task in the calling process, in task order."""

    name = "serial"

    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        for index, task in enumerate(tasks):
            try:
                value = invoke_task(task)
            except Exception as exc:
                yield TaskOutcome(index, error=exc)
                return
            yield TaskOutcome(index, value=value)


class ProcessPoolBackend(Backend):
    """Fan tasks out across a local :class:`ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Number of worker processes (capped at the task count per run).
    mp_context:
        Name of the multiprocessing start method (``"fork"``, ``"spawn"``,
        ...); ``None`` uses the platform default.
    """

    name = "pool"

    def __init__(self, jobs: int, mp_context: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        self.jobs = int(jobs)
        self.mp_context = mp_context

    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        # An unpicklable task must never reach the executor: its pickling
        # error would fire on the executor's queue-feeder thread, and on
        # CPython 3.11 that thread's error handler races the manager
        # thread's pending-work rebuild when the sweep is abandoned below
        # (shutdown(wait=False, cancel_futures=True)) — the lost update
        # strands an already-resolved future in pending_work_items, the
        # manager never sends its workers the shutdown sentinel, and
        # interpreter exit hangs in _python_exit joining the manager
        # thread.  Rejecting the task up front surfaces the same
        # original-type error while keeping that code path unreachable.
        for index, task in enumerate(tasks):
            try:
                pickle.dumps(task)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                yield TaskOutcome(index, error=exc)
                return
        context = multiprocessing.get_context(self.mp_context) if self.mp_context else None
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks)), mp_context=context)
        finished = False
        try:
            future_index = {pool.submit(invoke_task, task): i for i, task in enumerate(tasks)}
            pending = set(future_index)
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                # Deterministic error attribution: inspect completed futures
                # in task order within the batch.
                for future in sorted(done, key=future_index.__getitem__):
                    index = future_index[future]
                    exc = future.exception()
                    if exc is not None:
                        # BrokenExecutor means the pool itself broke (a
                        # worker died before reporting back).
                        yield TaskOutcome(
                            index, error=exc, infrastructure=isinstance(exc, BrokenExecutor)
                        )
                        return
                    yield TaskOutcome(index, value=future.result())
            finished = True
        finally:
            if finished:
                pool.shutdown(wait=True)
            else:
                # Drop queued tasks and surface the failure immediately
                # rather than draining the in-flight simulations first.
                pool.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:
        return f"<ProcessPoolBackend jobs={self.jobs} context={self.mp_context or 'default'}>"


class PersistentPoolBackend(ProcessPoolBackend):
    """A process-pool backend whose workers survive across ``execute`` calls.

    :class:`ProcessPoolBackend` starts (and tears down) a fresh
    :class:`ProcessPoolExecutor` per run — the right call for one-shot CLI
    sweeps, but a long-lived server would pay worker start-up (process
    spawn + interpreter boot + numpy import) on *every* request.  This
    variant lazily creates one executor on first use and keeps it warm: the
    second and every later run reuses the already-booted workers.
    ``pools_created`` counts executor births, so tests (and the service's
    stats endpoint) can assert that N requests shared one pool.

    Concurrent ``execute`` calls from several threads share the pool safely
    (``submit`` is thread-safe); an infrastructure failure
    (:class:`BrokenExecutor` — a worker died) discards the broken pool so
    the next run starts a fresh one instead of failing forever.  Call
    :meth:`close` (or use the backend as a context manager) to release the
    workers; results stay bit-identical to every other backend.
    """

    name = "persistent-pool"

    def __init__(self, jobs: int, mp_context: Optional[str] = None) -> None:
        super().__init__(jobs, mp_context)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self.pools_created = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                context = (
                    multiprocessing.get_context(self.mp_context) if self.mp_context else None
                )
                self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=context)
                self.pools_created += 1
            return self._pool

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken pool so the next run boots a fresh one."""
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        # Same up-front pickling guard as ProcessPoolBackend: an unpicklable
        # task must never reach the executor's queue-feeder thread (see the
        # comment there) — doubly so here, where the poisoned pool would be
        # reused by every later request.
        for index, task in enumerate(tasks):
            try:
                pickle.dumps(task)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                yield TaskOutcome(index, error=exc)
                return
        pool = self._ensure_pool()
        future_index = {pool.submit(invoke_task, task): i for i, task in enumerate(tasks)}
        pending = set(future_index)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in sorted(done, key=future_index.__getitem__):
                    index = future_index[future]
                    exc = future.exception()
                    if exc is not None:
                        if isinstance(exc, BrokenExecutor):
                            self._discard_pool(pool)
                        yield TaskOutcome(
                            index, error=exc, infrastructure=isinstance(exc, BrokenExecutor)
                        )
                        return
                    yield TaskOutcome(index, value=future.result())
        finally:
            # On abandonment cancel this run's queued work, but keep the
            # pool alive for the next request (unlike the per-run backend,
            # which shuts the whole executor down here).
            for future in pending:
                future.cancel()

    def close(self) -> None:
        """Shut the warm pool down (idempotent; a later run re-creates it)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "PersistentPoolBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<PersistentPoolBackend jobs={self.jobs} "
            f"context={self.mp_context or 'default'} pools={self.pools_created}>"
        )


class SocketBackend(Backend):
    """TCP work-queue coordinator distributing tasks to socket workers.

    Workers run ``python -m repro.parallel.worker`` and can join a run in
    three ways, combinable within one backend:

    * ``spawn_workers=N`` — the coordinator spawns ``N`` local worker
      processes that dial back into its listening socket (the zero-setup
      path, also what ``--backend socket --workers N`` uses);
    * ``worker_addresses=[(host, port), ...]`` — the coordinator dials out
      to worker daemons already listening there (``worker --listen``), the
      multi-host path behind ``--workers HOST:PORT,...``;
    * ``expected_workers=N`` — the coordinator waits for ``N`` inbound
      connections from externally started ``worker --connect HOST:PORT``
      processes (requires a routable ``bind`` address).

    The listening socket stays open for the whole run, so replacement
    workers may join (reconnect) at any time.  A worker lost mid-task gets
    its task requeued onto the remaining workers, up to
    ``max_task_attempts`` executions per task; exhausting the budget — or
    running out of live workers with no way to gain new ones — surfaces as
    :class:`~repro.errors.WorkerError`.  Results are bit-identical to the
    serial and pool backends because tasks carry their own seeds.

    Robustness knobs (all optional):

    * ``connect_timeout`` bounds each dial to a worker daemon, and
      ``dial_attempts`` retries failed dials with capped exponential
      backoff and jitter (:mod:`repro.parallel.retry`) before surfacing a
      :class:`~repro.errors.WorkerError` that names the unreachable host.
    * ``heartbeat_interval`` is passed to spawned workers (they ping
      ``("heartbeat", pid)`` while a task runs); ``dead_peer_timeout`` is
      how long the coordinator tolerates *total* frame silence from a
      worker with a task in flight before presuming it dead and requeueing
      (default: ``max(4 × heartbeat_interval, 20 s)``; heartbeats disabled
      also disable the dead-peer timer, since a long simulation would
      otherwise be indistinguishable from a hang).

    Every :meth:`execute` call establishes its own fleet, so a campaign
    that issues many separate runs (e.g. ``report --simulate``: one per
    figure plus the ratio study) pays worker start-up per run in
    ``spawn_workers`` mode.  ``worker_addresses`` daemons amortise that
    cost: they stay alive between runs and serve sessions back to back.
    """

    name = "socket"

    def __init__(
        self,
        spawn_workers: Optional[int] = None,
        worker_addresses: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        bind: Union[str, Tuple[str, int]] = ("127.0.0.1", 0),
        expected_workers: int = 0,
        accept_timeout: float = 30.0,
        max_task_attempts: int = 3,
        connect_timeout: float = 10.0,
        dial_attempts: int = 3,
        heartbeat_interval: float = 5.0,
        dead_peer_timeout: Optional[float] = None,
    ) -> None:
        if spawn_workers is not None and spawn_workers < 1:
            raise ValueError(f"spawn_workers must be >= 1, got {spawn_workers!r}")
        if expected_workers < 0:
            raise ValueError(f"expected_workers must be >= 0, got {expected_workers!r}")
        if max_task_attempts < 1:
            raise ValueError(f"max_task_attempts must be >= 1, got {max_task_attempts!r}")
        if connect_timeout <= 0:
            raise ValueError(f"connect_timeout must be positive, got {connect_timeout!r}")
        if dial_attempts < 1:
            raise ValueError(f"dial_attempts must be >= 1, got {dial_attempts!r}")
        if heartbeat_interval < 0:
            raise ValueError(f"heartbeat_interval must be >= 0, got {heartbeat_interval!r}")
        if dead_peer_timeout is not None and dead_peer_timeout <= 0:
            raise ValueError(
                f"dead_peer_timeout must be positive (or None for the default), "
                f"got {dead_peer_timeout!r}"
            )
        addresses = [
            parse_address(a) if isinstance(a, str) else (str(a[0]), int(a[1]))
            for a in (worker_addresses or [])
        ]
        if spawn_workers is None and not addresses and expected_workers == 0:
            spawn_workers = 1
        self.spawn_workers = spawn_workers or 0
        self.worker_addresses = addresses
        self.bind = parse_address(bind) if isinstance(bind, str) else (str(bind[0]), int(bind[1]))
        self.expected_workers = int(expected_workers)
        self.accept_timeout = float(accept_timeout)
        self.max_task_attempts = int(max_task_attempts)
        self.connect_timeout = float(connect_timeout)
        self.dial_attempts = int(dial_attempts)
        self.heartbeat_interval = float(heartbeat_interval)
        self.dead_peer_timeout = dead_peer_timeout if dead_peer_timeout is None else float(
            dead_peer_timeout
        )

    @property
    def effective_dead_peer_timeout(self) -> float:
        """Frame-silence budget for a worker with a task in flight (0 = off).

        Without heartbeats a long-running simulation is indistinguishable
        from a hung worker, so the timer is only armed when the keepalive
        is on.
        """
        if self.heartbeat_interval <= 0:
            return 0.0
        if self.dead_peer_timeout is not None:
            return self.dead_peer_timeout
        return max(4.0 * self.heartbeat_interval, 20.0)

    def execute(self, tasks: Sequence) -> Iterator[TaskOutcome]:
        return _SocketRun(self, tasks).outcomes()

    def worker_launch_commands(
        self, connect_host: str, connect_port: int
    ) -> List[Tuple[List[str], Optional[dict]]]:
        """``(argv, env)`` pairs for the worker processes this run launches.

        The base class spawns ``spawn_workers`` local interpreters that dial
        back into the coordinator's listener; :class:`SSHBackend` overrides
        this to launch one worker per remote host through ``ssh``.
        """
        env = dict(os.environ)
        # Make sure the child can import this package even when the parent
        # relies on a cwd-relative PYTHONPATH or an installed checkout.
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        argv = [
            sys.executable, "-m", "repro.parallel.worker",
            "--connect", f"{connect_host}:{connect_port}",
            "--heartbeat-interval", str(self.heartbeat_interval),
        ]
        return [(list(argv), env) for _ in range(self.spawn_workers)]

    def advertised_host(self, bound_host: str) -> str:
        """The address launched workers should dial back to."""
        if bound_host in ("0.0.0.0", "::"):
            return "127.0.0.1"
        return bound_host

    def __repr__(self) -> str:
        parts = []
        if self.spawn_workers:
            parts.append(f"spawn={self.spawn_workers}")
        if self.worker_addresses:
            parts.append(f"addresses={self.worker_addresses!r}")
        if self.expected_workers:
            parts.append(f"expected={self.expected_workers}")
        return f"<SocketBackend {' '.join(parts) or 'idle'}>"


class SSHBackend(SocketBackend):
    """Self-provisioning multi-host work queue: workers launched over SSH.

    Where a plain :class:`SocketBackend` in ``worker_addresses`` mode needs
    an operator to start (and later stop) a ``worker --listen`` daemon on
    every machine, this backend launches its own fleet: for each entry of
    ``hosts`` it runs::

        ssh HOST '<remote_python> -m repro.parallel.worker --connect COORD:PORT'

    as a local subprocess, and the remote workers dial back into the
    coordinator's listening socket.  Everything else — the work queue,
    requeue of a lost worker's in-flight task (capped by
    ``max_task_attempts``), mid-run joins through the open listener,
    bit-identical results — is inherited from :class:`SocketBackend`.
    Teardown is automatic: at the end of the run every worker receives a
    ``shutdown`` frame (or loses its socket), exits, and the ssh client
    processes are terminated.

    Parameters
    ----------
    hosts:
        SSH destinations (``host`` or ``user@host``), one worker each.  A
        host may appear several times for several workers.
    ssh_command:
        The argv prefix used to reach a host; replace it to add options
        (``("ssh", "-i", keyfile)``) or to substitute a stub in tests.
        ``BatchMode=yes`` keeps a misconfigured host from hanging the
        sweep on an interactive password prompt.
    remote_python:
        Python interpreter to run on the remote host (default
        ``"python3"``; it must be able to ``import repro``, see
        ``remote_pythonpath``).
    remote_pythonpath:
        Optional ``PYTHONPATH`` to prepend on the remote host — e.g. the
        checkout's ``src`` directory when ``repro`` is not installed there.
    advertise_host:
        Address the *remote* workers dial back to.  Defaults to this
        machine's hostname, or ``127.0.0.1`` when every host is local
        (``localhost`` / ``127.0.0.1`` / ``::1`` — the CI smoke-test
        configuration).
    bind, accept_timeout, max_task_attempts:
        As for :class:`SocketBackend`; ``bind`` defaults to all interfaces
        on an ephemeral port so remote workers can reach the listener —
        narrowed automatically to loopback when every host is local.  The
        listener speaks the pickle frame protocol, so in genuinely remote
        mode the usual trust model applies (see
        :mod:`repro.parallel.protocol`): run sweeps only on networks where
        every host that can reach the port is trusted.
    """

    name = "ssh"

    #: Hosts (after stripping a ``user@`` prefix) considered local for the
    #: default ``advertise_host``.
    _LOCAL_HOSTS = frozenset({"localhost", "127.0.0.1", "::1"})

    def __init__(
        self,
        hosts: Sequence[str],
        ssh_command: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
        remote_python: str = "python3",
        remote_pythonpath: Optional[str] = None,
        advertise_host: Optional[str] = None,
        bind: Union[str, Tuple[str, int]] = ("0.0.0.0", 0),
        accept_timeout: float = 30.0,
        max_task_attempts: int = 3,
        connect_timeout: float = 10.0,
        heartbeat_interval: float = 5.0,
        dead_peer_timeout: Optional[float] = None,
    ) -> None:
        hosts = [str(h) for h in hosts]
        if not hosts:
            raise ValueError("SSHBackend needs at least one host")
        for host in hosts:
            if not host.strip() or any(ch.isspace() for ch in host.strip()):
                raise ValueError(f"invalid SSH host {host!r}")
            if host.split("@")[-1].count(":") == 1:
                # Exactly one colon cannot be an IPv6 literal (those need
                # two or more), so it is socket-backend HOST:PORT syntax.
                raise ValueError(
                    f"invalid SSH host {host!r}: HOST:PORT is socket-backend "
                    "syntax — SSH workers are addressed by host name only"
                )
        if not ssh_command:
            raise ValueError("ssh_command must not be empty")
        stripped = [h.strip() for h in hosts]
        all_local = all(host.split("@")[-1] in self._LOCAL_HOSTS for host in stripped)
        if bind == ("0.0.0.0", 0) and all_local:
            # Workers on this machine dial back over loopback, so do not
            # expose the (pickle-speaking, trust-the-network) listener on
            # every interface when nothing remote needs to reach it.
            bind = ("127.0.0.1", 0)
        super().__init__(
            spawn_workers=len(hosts),
            bind=bind,
            accept_timeout=accept_timeout,
            max_task_attempts=max_task_attempts,
            connect_timeout=connect_timeout,
            heartbeat_interval=heartbeat_interval,
            dead_peer_timeout=dead_peer_timeout,
        )
        self.hosts = stripped
        self.ssh_command = [str(part) for part in ssh_command]
        self.remote_python = str(remote_python)
        self.remote_pythonpath = remote_pythonpath
        self.advertise_host = advertise_host

    def advertised_host(self, bound_host: str) -> str:
        if self.advertise_host:
            return self.advertise_host
        if all(host.split("@")[-1] in self._LOCAL_HOSTS for host in self.hosts):
            return "127.0.0.1"
        return socket.gethostname()

    def worker_launch_commands(
        self, connect_host: str, connect_port: int
    ) -> List[Tuple[List[str], Optional[dict]]]:
        # The remote side is one shell line (ssh hands it to the login
        # shell), so the interpreter/path go through shlex.quote.
        remote = (
            f"{shlex.quote(self.remote_python)} -m repro.parallel.worker "
            f"--connect {shlex.quote(f'{connect_host}:{connect_port}')} "
            f"--heartbeat-interval {self.heartbeat_interval}"
        )
        if self.remote_pythonpath:
            remote = f"PYTHONPATH={shlex.quote(self.remote_pythonpath)} {remote}"
        return [(self.ssh_command + [host, remote], None) for host in self.hosts]

    def __repr__(self) -> str:
        return f"<SSHBackend hosts={self.hosts!r}>"


class _SocketRun:
    """State of one :meth:`SocketBackend.execute` call.

    One thread per connected worker drives the send-task/receive-result
    conversation; a shared condition variable guards the pending queue and
    the finished/attempt bookkeeping; completed outcomes flow to the
    coordinating generator through a thread-safe queue.
    """

    def __init__(self, backend: SocketBackend, tasks: Sequence) -> None:
        self._backend = backend
        self._tasks = list(tasks)
        self._cond = threading.Condition()
        self._pending: deque = deque(range(len(self._tasks)))
        self._attempts = [0] * len(self._tasks)
        self._finished = [False] * len(self._tasks)
        self._unfinished = len(self._tasks)
        self._live_workers = 0
        self._workers_joined = 0
        self._no_worker_since: Optional[float] = None
        self._closing = False
        self._outcomes: "queue.Queue[TaskOutcome]" = queue.Queue()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._serve_threads: List[threading.Thread] = []
        self._connections: List[socket.socket] = []
        self._processes: List[subprocess.Popen] = []

    # -- lifecycle ---------------------------------------------------------

    def outcomes(self) -> Iterator[TaskOutcome]:
        """The generator handed to the engine: yield outcomes, clean up."""
        try:
            self._start()
            delivered = 0
            while delivered < len(self._tasks):
                try:
                    outcome = self._outcomes.get(timeout=0.2)
                except queue.Empty:
                    if self._stalled():
                        index = self._first_unfinished()
                        yield TaskOutcome(
                            index,
                            error=ConnectionError(
                                "all socket workers were lost and no replacement can join"
                            ),
                            infrastructure=True,
                        )
                        return
                    continue
                delivered += 1
                yield outcome
                if outcome.error is not None:
                    return
        finally:
            self._shutdown()

    def _start(self) -> None:
        backend = self._backend
        if backend.spawn_workers or backend.expected_workers:
            self._listener = socket.create_server(backend.bind, backlog=16)
            self._listener.settimeout(0.2)
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="sweep-socket-accept", daemon=True
            )
            self._accept_thread.start()
        if backend.spawn_workers:
            assert self._listener is not None
            bound_host, port = self._listener.getsockname()[:2]
            host = backend.advertised_host(bound_host)
            for argv, env in backend.worker_launch_commands(host, port):
                self._processes.append(
                    subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL)
                )
        for address in backend.worker_addresses:
            self._add_worker(self._dial(address), address=address)
        self._await_initial_workers()

    def _dial(self, address: Tuple[str, int]) -> socket.socket:
        try:
            return self._connect_with_retry(address)
        except OSError as exc:
            raise WorkerError(
                self._first_unfinished(),
                self._label(self._first_unfinished()),
                ConnectionError(
                    f"could not reach socket worker at {address[0]}:{address[1]} "
                    f"after {self._backend.dial_attempts} attempt(s): {exc}"
                ),
            ) from exc

    def _connect_with_retry(self, address: Tuple[str, int]) -> socket.socket:
        """Dial a worker daemon with capped, jittered backoff between attempts.

        Each attempt is bounded by the backend's ``connect_timeout``;
        exhausting ``dial_attempts`` re-raises the last :class:`OSError`.
        """
        backend = self._backend
        delays = backoff_delays(backend.dial_attempts - 1, salt=os.getpid() ^ address[1])
        last_error: Optional[OSError] = None
        for attempt in range(backend.dial_attempts):
            if self._closing:
                raise ConnectionError("run is shutting down")
            try:
                return socket.create_connection(address, timeout=backend.connect_timeout)
            except OSError as exc:
                last_error = exc
                if attempt < len(delays):
                    time.sleep(delays[attempt])
        assert last_error is not None
        raise last_error

    def _accept_loop(self) -> None:
        """Accept inbound workers for the whole run (late joins welcome)."""
        assert self._listener is not None
        while not self._closing:
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            # Handshake on a separate thread: a stray connection that never
            # sends its hello (port scanner, health probe) must not block
            # legitimate workers from joining for accept_timeout seconds.
            threading.Thread(
                target=self._add_worker,
                args=(conn,),
                name="sweep-socket-handshake",
                daemon=True,
            ).start()

    def _handshake(self, conn: socket.socket) -> bool:
        """Consume the worker's hello frame; close the socket on failure."""
        try:
            conn.settimeout(self._backend.accept_timeout)
            hello = recv_message(conn)
            if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
                raise ProtocolError(f"expected a hello frame, got {hello!r}")
            conn.settimeout(None)
            return True
        except (OSError, ConnectionError):
            try:
                conn.close()
            except OSError:
                pass
            return False

    def _add_worker(self, conn: socket.socket, address: Optional[Tuple[str, int]] = None) -> None:
        if not self._handshake(conn):
            return
        with self._cond:
            if self._closing:
                conn.close()
                return
            self._live_workers += 1
            self._workers_joined += 1
            self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve,
                args=(conn, address),
                name="sweep-socket-worker",
                daemon=True,
            )
            self._serve_threads.append(thread)
            # Start before releasing the lock: _shutdown acquires it to set
            # _closing, so every thread it finds in _serve_threads has been
            # started and is safe to join.
            thread.start()
            self._cond.notify_all()

    def _await_initial_workers(self) -> None:
        """Block until the initially requested workers joined (or time out).

        Workers that join start pulling tasks immediately, and a fast sweep
        may even finish — its serve threads exiting and ``_live_workers``
        dropping back to zero — while this method still waits, so the exit
        conditions are phrased in terms of workers *ever joined* and work
        left, never just the instantaneous live count.
        """
        backend = self._backend
        wanted = backend.spawn_workers + backend.expected_workers + len(backend.worker_addresses)
        deadline = time.monotonic() + backend.accept_timeout
        spawn_only = (
            backend.spawn_workers > 0
            and backend.expected_workers == 0
            and not backend.worker_addresses
        )
        with self._cond:
            while time.monotonic() < deadline:
                if self._unfinished == 0 or self._workers_joined >= wanted:
                    return
                if (
                    spawn_only
                    and self._workers_joined == 0
                    and all(process.poll() is not None for process in self._processes)
                ):
                    # Every spawned worker died before connecting (e.g. its
                    # interpreter crashed on startup): fail now instead of
                    # sitting out the whole accept timeout.
                    break
                self._cond.wait(timeout=0.1)
            if self._workers_joined == 0:
                detail = f"no socket worker connected within {backend.accept_timeout:.1f}s"
                hosts = getattr(backend, "hosts", None)
                if hosts:
                    detail += f"; ssh hosts: {', '.join(hosts)}"
                raise WorkerError(
                    self._first_unfinished(),
                    self._label(self._first_unfinished()),
                    ConnectionError(detail),
                )

    def _shutdown(self) -> None:
        with self._cond:
            self._closing = True
            self._pending.clear()
            self._unfinished = 0
            self._cond.notify_all()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        # Closing the connections first unblocks serve threads stuck in a
        # recv for an in-flight task (abort path); on the success path the
        # threads have already sent their shutdown frames and exited.
        for conn in self._connections:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._serve_threads:
            thread.join(timeout=2.0)
        for process in self._processes:
            if process.poll() is None:
                process.terminate()
        for process in self._processes:
            try:
                process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=2.0)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    # -- worker conversation ----------------------------------------------

    def _serve(self, conn: socket.socket, address: Optional[Tuple[str, int]]) -> None:
        redials = 1 if address is not None else 0
        try:
            while True:
                index = self._next_index()
                if index is None:
                    try:
                        send_message(conn, ("shutdown",))
                    except OSError:
                        pass
                    return
                try:
                    try:
                        send_message(conn, ("task", index, self._tasks[index]))
                    except (pickle.PicklingError, TypeError, AttributeError) as exc:
                        # The task itself cannot be serialised (e.g. a
                        # lambda).  Frames are pickled before any byte hits
                        # the wire, so the worker is still healthy: report
                        # a task error — matching the pool backend — and
                        # keep serving.
                        self._complete(TaskOutcome(index, error=exc))
                        continue
                    except (OSError, ConnectionError) as exc:
                        conn = self._handle_loss(conn, index, exc, address, redials)
                        if conn is None:
                            return
                        redials -= 1
                        continue
                    silence = self._backend.effective_dead_peer_timeout
                    try:
                        reply = self._recv_reply(conn, silence)
                    except ProtocolError as exc:
                        # The reply arrived but would not deserialise (e.g.
                        # version skew between hosts): re-running the task
                        # elsewhere fails identically, so report a task
                        # error instead of burning the requeue budget.  The
                        # stream may be out of frame-alignment, so drop the
                        # connection too.
                        self._complete(TaskOutcome(index, error=exc))
                        try:
                            conn.close()
                        except OSError:
                            pass
                        return
                    except TimeoutError:
                        # Not even a heartbeat arrived within the silence
                        # budget: presume the worker dead, requeue the task.
                        conn = self._handle_loss(
                            conn,
                            index,
                            ConnectionError(
                                f"worker sent no frame for {silence:.1f}s with a "
                                f"task in flight (presumed dead)"
                            ),
                            address,
                            redials,
                        )
                        if conn is None:
                            return
                        redials -= 1
                        continue
                    except (OSError, ConnectionError) as exc:
                        conn = self._handle_loss(conn, index, exc, address, redials)
                        if conn is None:
                            return
                        redials -= 1
                        continue
                except BaseException as exc:
                    # Last resort: whatever happens, a claimed index must
                    # never be orphaned — an unreported task would hang the
                    # coordinating generator forever.
                    self._complete(TaskOutcome(index, error=exc))
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                if (
                    isinstance(reply, tuple)
                    and len(reply) == 3
                    and reply[0] in ("result", "error")
                    and reply[1] == index
                ):
                    kind, _idx, payload = reply
                    if kind == "result":
                        self._complete(TaskOutcome(index, value=payload))
                    else:
                        self._complete(TaskOutcome(index, error=payload))
                else:
                    self._requeue(
                        index, ProtocolError(f"worker sent an invalid reply: {reply!r}")
                    )
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
        finally:
            with self._cond:
                self._live_workers -= 1
                self._cond.notify_all()

    def _recv_reply(self, conn: socket.socket, silence: float):
        """Receive the next non-heartbeat frame for an in-flight task.

        With a positive ``silence`` budget the socket read is bounded:
        every frame — including a keepalive heartbeat — resets the timer,
        so only *total* silence raises :class:`TimeoutError`.
        """
        if silence > 0:
            conn.settimeout(silence)
        try:
            while True:
                reply = recv_message(conn)
                if isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "heartbeat":
                    continue
                return reply
        finally:
            if silence > 0:
                try:
                    conn.settimeout(None)
                except OSError:
                    pass

    def _handle_loss(
        self,
        conn: socket.socket,
        index: int,
        cause: BaseException,
        address: Optional[Tuple[str, int]],
        redials: int,
    ) -> Optional[socket.socket]:
        """Requeue a lost task; for dialled daemons try one reconnect.

        Returns the replacement connection, or ``None`` when this serve
        thread should give the worker up.
        """
        self._requeue(index, cause)
        try:
            conn.close()
        except OSError:
            pass
        # Dialled daemons survive a dropped session (e.g. the network
        # blipped or the daemon restarted); spawned/inbound workers whose
        # process died cannot be redialled.
        if address is None or redials <= 0 or self._closing:
            return None
        try:
            replacement = self._connect_with_retry(address)
        except OSError:
            return None
        if not self._handshake(replacement):
            return None
        with self._cond:
            if self._closing:
                try:
                    replacement.close()
                except OSError:
                    pass
                return None
            self._connections.append(replacement)
        return replacement

    def _next_index(self) -> Optional[int]:
        """Claim the next pending task; block while requeues may still come."""
        with self._cond:
            while not self._closing:
                if self._pending:
                    return self._pending.popleft()
                if self._unfinished == 0:
                    return None
                # Tasks are in flight on other workers; wait in case one
                # is requeued after a worker loss.
                self._cond.wait(timeout=0.2)
            return None

    def _complete(self, outcome: TaskOutcome) -> None:
        with self._cond:
            if self._finished[outcome.index]:
                return
            self._finished[outcome.index] = True
            self._unfinished -= 1
            self._cond.notify_all()
        self._outcomes.put(outcome)

    def _requeue(self, index: int, cause: BaseException) -> None:
        with self._cond:
            if self._finished[index] or self._closing:
                return
            self._attempts[index] += 1
            if self._attempts[index] >= self._backend.max_task_attempts:
                self._finished[index] = True
                self._unfinished -= 1
                self._cond.notify_all()
                self._outcomes.put(TaskOutcome(index, error=cause, infrastructure=True))
            else:
                self._pending.appendleft(index)
                self._cond.notify_all()

    # -- bookkeeping -------------------------------------------------------

    def _stalled(self) -> bool:
        """True when unfinished work remains but no worker can ever run it."""
        with self._cond:
            if self._unfinished == 0 or self._live_workers > 0:
                self._no_worker_since = None
                return False
            now = time.monotonic()
            if self._no_worker_since is None:
                self._no_worker_since = now
            # A spawned worker process that is still running may simply be
            # between connect attempts.
            if any(process.poll() is None for process in self._processes):
                return False
            # Externally managed workers (--connect clients) may reconnect
            # through the open listener — but only within a bounded grace
            # period, otherwise a fully dead fleet hangs the run forever.
            if self._backend.expected_workers > 0:
                return now - self._no_worker_since >= self._backend.accept_timeout
            return True

    def _first_unfinished(self) -> int:
        with self._cond:
            for index, done in enumerate(self._finished):
                if not done:
                    return index
            return 0

    def _label(self, index: int) -> str:
        task = self._tasks[index]
        return getattr(task, "label", "")


def _split_spec(spec: str) -> List[str]:
    """Split a comma-separated ``--workers`` value, rejecting empty entries.

    An empty entry (``"a:1,,b:2"``, a trailing comma, or a blank spec) is
    almost always a typo that used to be dropped silently — or, worse,
    surface much later as a connection error deep inside the dial path.
    """
    parts = [part.strip() for part in spec.split(",")]
    if not parts or any(not part for part in parts):
        raise ValueError(
            f"--workers got an empty entry in {spec!r}; expected a "
            "comma-separated list without blanks"
        )
    return parts


def socket_backend_from_spec(
    spec: Optional[str], default_workers: int = 1, **kwargs
) -> SocketBackend:
    """Build a :class:`SocketBackend` from a CLI ``--workers`` value.

    ``spec`` is either an integer (``"4"`` — spawn that many local worker
    processes), a comma-separated ``HOST:PORT`` list (connect to worker
    daemons started with ``python -m repro.parallel.worker --listen ...``),
    or ``None`` (spawn ``default_workers`` local workers).  Malformed or
    empty entries raise :class:`ValueError` here, with the offending entry
    named, instead of surfacing as a connection failure mid-run.
    """
    if spec is None or not spec.strip():
        return SocketBackend(spawn_workers=max(int(default_workers), 1), **kwargs)
    spec = spec.strip()
    if spec.lstrip("+-").isdigit():
        count = int(spec)
        if count < 1:
            raise ValueError(f"--workers needs a positive worker count, got {spec!r}")
        return SocketBackend(spawn_workers=count, **kwargs)
    addresses = []
    for part in _split_spec(spec):
        try:
            host, port = parse_address(part)
        except ValueError as exc:
            raise ValueError(f"--workers entry {part!r} is not a valid HOST:PORT: {exc}") from exc
        if port == 0:
            raise ValueError(
                f"--workers entry {part!r} has port 0; a dialled worker daemon "
                "needs its concrete listening port"
            )
        addresses.append((host, port))
    return SocketBackend(worker_addresses=addresses, **kwargs)


def ssh_backend_from_spec(spec: Optional[str], **kwargs) -> SSHBackend:
    """Build an :class:`SSHBackend` from a CLI ``--workers`` host list.

    ``spec`` is a comma-separated list of SSH destinations (``host`` or
    ``user@host``; repeat a host for several workers on it).  Empty or
    malformed entries — including ``HOST:PORT``, which is socket-backend
    syntax — raise :class:`ValueError` naming the offending entry.
    """
    if spec is None or not spec.strip():
        raise ValueError("--backend ssh needs --workers HOST[,HOST...]")
    hosts = _split_spec(spec)
    for host in hosts:
        if host.lstrip("+-").isdigit():
            # '--workers 4' is the *socket* backend's spawn-count syntax; as
            # an SSH destination it would only fail much later, as a
            # confusing hostname-resolution WorkerError.
            raise ValueError(
                f"--workers entry {host!r} looks like a worker count, which is "
                "socket-backend syntax; the ssh backend takes [user@]HOST names "
                "(repeat a host to run several workers on it)"
            )
    try:
        return SSHBackend(hosts=hosts, **kwargs)
    except ValueError as exc:
        raise ValueError(f"--workers: {exc}") from exc
