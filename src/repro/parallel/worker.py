"""Socket sweep worker: executes pickled tasks for a remote coordinator.

This is the worker half of :class:`repro.parallel.backends.SocketBackend`.
It speaks the frame protocol of :mod:`repro.parallel.protocol` and supports
both connection directions:

``--connect HOST:PORT``
    Dial a coordinator that is already listening (this is also the command
    line the coordinator itself uses for locally spawned workers).  The
    worker serves one session and exits when the coordinator sends
    ``shutdown`` or closes the connection.

``--listen HOST:PORT``
    Run as a daemon: bind the address, print ``listening on HOST:PORT``
    (so wrappers and tests can discover an ephemeral port), and serve
    coordinator sessions one after another — the multi-host deployment
    mode behind the CLI's ``--workers HOST:PORT,...`` flag::

        # on each worker machine
        PYTHONPATH=src python -m repro.parallel.worker --listen 0.0.0.0:7777
        # on the coordinating machine
        python -m repro figure 6 --simulate --backend socket \\
            --workers hostA:7777,hostB:7777

Tasks arrive as pickled :class:`~repro.parallel.engine.SweepTask`\\ s, so the
worker's Python environment must be able to import the task functions (for
this package: a checkout with ``PYTHONPATH=src`` or an installed ``repro``).
Results — or the task's exception, pickled with its original type — are
streamed back one frame per task.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import time
from typing import Optional, Sequence

from .protocol import ProtocolError, parse_address, recv_message, send_message

__all__ = ["serve_session", "main"]


def _hello() -> tuple:
    return ("hello", {"pid": os.getpid(), "host": socket.gethostname()})


def _send_reply(conn: socket.socket, kind: str, index: int, payload: object) -> None:
    """Send a reply frame, degrading unpicklable payloads to a description."""
    try:
        send_message(conn, (kind, index, payload))
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        send_message(
            conn,
            ("error", index, RuntimeError(f"task produced an unpicklable {kind}: {exc!r}")),
        )


def serve_session(conn: socket.socket) -> int:
    """Serve one coordinator session; returns the number of tasks executed."""
    executed = 0
    send_message(conn, _hello())
    while True:
        try:
            message = recv_message(conn)
        except (ConnectionError, OSError):
            return executed
        if not isinstance(message, tuple) or not message:
            raise ProtocolError(f"coordinator sent an invalid frame: {message!r}")
        kind = message[0]
        if kind == "shutdown":
            return executed
        if kind != "task" or len(message) != 3:
            raise ProtocolError(f"coordinator sent an unexpected frame: {message!r}")
        _kind, index, task = message
        try:
            value = task.fn(*task.args, **task.kwargs)
        except Exception as exc:
            _send_reply(conn, "error", index, exc)
        else:
            _send_reply(conn, "result", index, value)
        executed += 1


def _run_connect(address: str, retries: int, retry_delay: float) -> int:
    host, port = parse_address(address)
    last_error: Optional[OSError] = None
    for attempt in range(max(retries, 1)):
        try:
            conn = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            last_error = exc
            if attempt + 1 < max(retries, 1):
                time.sleep(retry_delay)
            continue
        with conn:
            try:
                serve_session(conn)
            except (ProtocolError, ConnectionError, OSError) as exc:
                # Same one-line diagnostic as the --listen path instead of
                # an unhandled traceback.
                print(f"worker: dropped session from {host}:{port}: {exc}", file=sys.stderr)
                return 1
        return 0
    print(f"worker: could not reach coordinator at {host}:{port}: {last_error}", file=sys.stderr)
    return 1


def _run_listen(address: str, max_sessions: Optional[int]) -> int:
    host, port = parse_address(address, default_host="0.0.0.0")
    with socket.create_server((host, port), backlog=4) as server:
        actual_host, actual_port = server.getsockname()[:2]
        print(f"listening on {actual_host}:{actual_port}", flush=True)
        sessions = 0
        while max_sessions is None or sessions < max_sessions:
            conn, peer = server.accept()
            with conn:
                try:
                    executed = serve_session(conn)
                except (ProtocolError, ConnectionError, OSError) as exc:
                    print(f"worker: dropped session from {peer}: {exc}", file=sys.stderr)
                else:
                    print(f"worker: session from {peer}: {executed} task(s)", flush=True)
            sessions += 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.parallel.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro.parallel.worker",
        description="Sweep worker for the socket execution backend.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", metavar="HOST:PORT",
                      help="dial a listening coordinator, serve one session, exit")
    mode.add_argument("--listen", metavar="HOST:PORT",
                      help="serve coordinator sessions as a daemon (port 0 = ephemeral)")
    parser.add_argument("--retries", type=int, default=5,
                        help="connection attempts in --connect mode (default: 5)")
    parser.add_argument("--retry-delay", type=float, default=0.5,
                        help="seconds between connection attempts (default: 0.5)")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="exit after serving this many sessions in --listen mode")
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.connect:
        return _run_connect(args.connect, args.retries, args.retry_delay)
    return _run_listen(args.listen, args.max_sessions)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
