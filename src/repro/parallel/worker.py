"""Socket sweep worker: executes pickled tasks for a remote coordinator.

This is the worker half of :class:`repro.parallel.backends.SocketBackend`.
It speaks the frame protocol of :mod:`repro.parallel.protocol` and supports
both connection directions:

``--connect HOST:PORT``
    Dial a coordinator that is already listening (this is also the command
    line the coordinator itself uses for locally spawned workers).  The
    worker serves one session and exits when the coordinator sends
    ``shutdown`` or closes the connection.  Failed dials are retried with
    capped exponential backoff (:mod:`repro.parallel.retry`), the first
    delay set by ``--retry-delay``.

``--listen HOST:PORT``
    Run as a daemon: bind the address, print ``listening on HOST:PORT``
    (so wrappers and tests can discover an ephemeral port), and serve
    coordinator sessions one after another — the multi-host deployment
    mode behind the CLI's ``--workers HOST:PORT,...`` flag::

        # on each worker machine
        PYTHONPATH=src python -m repro.parallel.worker --listen 0.0.0.0:7777
        # on the coordinating machine
        python -m repro figure 6 --simulate --backend socket \\
            --workers hostA:7777,hostB:7777

Tasks arrive as pickled :class:`~repro.parallel.engine.SweepTask`\\ s, so the
worker's Python environment must be able to import the task functions (for
this package: a checkout with ``PYTHONPATH=src`` or an installed ``repro``).
Results — or the task's exception, pickled with its original type — are
streamed back one frame per task.

While a task runs, a background thread sends ``("heartbeat", pid)`` frames
every ``--heartbeat-interval`` seconds so the coordinator can tell a slow
simulation from a hung worker (its dead-peer timeout only fires when the
heartbeats stop too).  ``--heartbeat-interval 0`` disables the keepalive.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import threading
import time
from typing import Optional, Sequence

from ..testing import chaos
from .protocol import ProtocolError, parse_address, recv_message, send_message
from .retry import DEFAULT_BASE_DELAY, DEFAULT_CAP_DELAY, backoff_delays

__all__ = ["serve_session", "main"]


def _hello() -> tuple:
    return ("hello", {"pid": os.getpid(), "host": socket.gethostname()})


class _Heartbeat:
    """Keepalive pinger: ``("heartbeat", pid)`` frames while a task runs.

    All frame sends on the session socket go through :attr:`lock` so a
    heartbeat can never interleave with a reply frame mid-stream.  With a
    non-positive interval no thread is started and the lock is the only
    thing this class provides.
    """

    def __init__(self, conn: socket.socket, interval: float) -> None:
        self.conn = conn
        self.interval = interval
        self.lock = threading.Lock()
        self._busy = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if interval > 0:
            self._thread = threading.Thread(
                target=self._loop, name="repro-worker-heartbeat", daemon=True
            )
            self._thread.start()

    def busy(self) -> None:
        """A task started: begin pinging after each interval."""
        self._busy.set()

    def idle(self) -> None:
        """The task finished: go quiet until the next one."""
        self._busy.clear()

    def stop(self) -> None:
        self._stop.set()
        self._busy.set()  # unblock an idle wait so the thread sees _stop
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self._busy.wait(timeout=0.2):
                continue
            if self._stop.wait(timeout=self.interval):
                return
            if not self._busy.is_set():
                continue
            try:
                with self.lock:
                    send_message(self.conn, ("heartbeat", os.getpid()))
            except (ConnectionError, OSError):
                return


def _send_reply(
    conn: socket.socket, lock: threading.Lock, kind: str, index: int, payload: object
) -> None:
    """Send a reply frame, degrading unpicklable payloads to a description."""
    with lock:
        try:
            send_message(conn, (kind, index, payload))
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            send_message(
                conn,
                ("error", index, RuntimeError(f"task produced an unpicklable {kind}: {exc!r}")),
            )


def serve_session(conn: socket.socket, heartbeat_interval: float = 0.0) -> int:
    """Serve one coordinator session; returns the number of tasks executed."""
    executed = 0
    injector = chaos.controller()
    heartbeat = _Heartbeat(conn, heartbeat_interval)
    try:
        with heartbeat.lock:
            send_message(conn, _hello())
        while True:
            try:
                message = recv_message(conn)
            except (ConnectionError, OSError):
                return executed
            if not isinstance(message, tuple) or not message:
                raise ProtocolError(f"coordinator sent an invalid frame: {message!r}")
            kind = message[0]
            if kind == "shutdown":
                return executed
            if kind != "task" or len(message) != 3:
                raise ProtocolError(f"coordinator sent an unexpected frame: {message!r}")
            _kind, index, task = message
            heartbeat.busy()
            try:
                value = task.fn(*task.args, **task.kwargs)
            except Exception as exc:
                reply = ("error", index, exc)
            else:
                reply = ("result", index, value)
            finally:
                heartbeat.idle()
            if injector is not None:
                # The chaos hook fires between computing the result and
                # delivering it: a killed worker loses the reply frame, so
                # the coordinator must requeue the task for bit-identity.
                action = injector.after_task()
                if action == "kill":
                    os._exit(137)
                if action == "hang":
                    heartbeat.stop()
                    injector.hang()
                    return executed
            _send_reply(conn, heartbeat.lock, *reply)
            executed += 1
    finally:
        heartbeat.stop()


def _run_connect(
    address: str, retries: int, retry_delay: float, heartbeat_interval: float
) -> int:
    host, port = parse_address(address)
    attempts = max(retries, 1)
    base = retry_delay if retry_delay > 0 else DEFAULT_BASE_DELAY
    delays = backoff_delays(
        attempts - 1, base=base, cap=max(DEFAULT_CAP_DELAY, base), salt=os.getpid()
    )
    last_error: Optional[OSError] = None
    for attempt in range(attempts):
        try:
            conn = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            last_error = exc
            if attempt < len(delays):
                time.sleep(delays[attempt])
            continue
        with conn:
            try:
                serve_session(conn, heartbeat_interval=heartbeat_interval)
            except (ProtocolError, ConnectionError, OSError) as exc:
                # Same one-line diagnostic as the --listen path instead of
                # an unhandled traceback.
                print(f"worker: dropped session from {host}:{port}: {exc}", file=sys.stderr)
                return 1
        return 0
    print(
        f"worker: could not reach coordinator at {host}:{port} "
        f"after {attempts} attempt(s): {last_error}",
        file=sys.stderr,
    )
    return 1


def _run_listen(address: str, max_sessions: Optional[int], heartbeat_interval: float) -> int:
    host, port = parse_address(address, default_host="0.0.0.0")
    with socket.create_server((host, port), backlog=4) as server:
        actual_host, actual_port = server.getsockname()[:2]
        print(f"listening on {actual_host}:{actual_port}", flush=True)
        sessions = 0
        while max_sessions is None or sessions < max_sessions:
            conn, peer = server.accept()
            with conn:
                try:
                    executed = serve_session(conn, heartbeat_interval=heartbeat_interval)
                except (ProtocolError, ConnectionError, OSError) as exc:
                    print(f"worker: dropped session from {peer}: {exc}", file=sys.stderr)
                else:
                    print(f"worker: session from {peer}: {executed} task(s)", flush=True)
            sessions += 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.parallel.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro.parallel.worker",
        description="Sweep worker for the socket execution backend.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--connect", metavar="HOST:PORT",
                      help="dial a listening coordinator, serve one session, exit")
    mode.add_argument("--listen", metavar="HOST:PORT",
                      help="serve coordinator sessions as a daemon (port 0 = ephemeral)")
    parser.add_argument("--retries", type=int, default=5,
                        help="connection attempts in --connect mode (default: 5)")
    parser.add_argument("--retry-delay", type=float, default=0.5,
                        help="first retry delay in seconds; later retries back off "
                             "exponentially with jitter (default: 0.5)")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="exit after serving this many sessions in --listen mode")
    parser.add_argument("--heartbeat-interval", type=float, default=5.0,
                        help="seconds between keepalive frames while a task runs; "
                             "0 disables heartbeats (default: 5)")
    args = parser.parse_args(list(argv) if argv is not None else None)
    chaos.set_role("worker")
    if args.connect:
        return _run_connect(args.connect, args.retries, args.retry_delay,
                            args.heartbeat_interval)
    return _run_listen(args.listen, args.max_sessions, args.heartbeat_interval)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
