"""Capped exponential backoff with deterministic jitter.

Every reconnection loop in the distributed layer (worker dial-in,
coordinator dial-out, daemon redial) shares this one policy, so retry
behaviour is uniform and — unlike the constant-delay loops it replaced —
backs off under sustained failure instead of hammering a dead peer on a
fixed period (see lint rule REP701).

The jitter is *deterministic*: a SplitMix64-style integer hash of
``(salt, attempt)`` scales each delay into ``[(1 - jitter) * d, d]``.
Determinism keeps retry schedules reproducible under the chaos harness
and keeps this module clean under the REP101 no-global-RNG rule, while
still de-synchronising workers that dial the same coordinator (each
passes its own ``salt``, e.g. its PID).
"""

from __future__ import annotations

from typing import List

__all__ = ["backoff_delays", "DEFAULT_BASE_DELAY", "DEFAULT_CAP_DELAY"]

#: Default first-retry delay (seconds).
DEFAULT_BASE_DELAY = 0.2
#: Default ceiling on any single delay (seconds).
DEFAULT_CAP_DELAY = 5.0

_MASK = (1 << 64) - 1


def _mix(value: int) -> float:
    """SplitMix64 finaliser: map an integer to a uniform float in [0, 1)."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    value ^= value >> 31
    return value / 2**64


def backoff_delays(
    attempts: int,
    base: float = DEFAULT_BASE_DELAY,
    cap: float = DEFAULT_CAP_DELAY,
    jitter: float = 0.5,
    salt: int = 0,
) -> List[float]:
    """Delays for ``attempts`` retries: capped doubling with jittered shrink.

    Delay ``i`` is ``min(cap, base * 2**i)`` scaled by a deterministic
    factor in ``[1 - jitter, 1]`` derived from ``(salt, i)``.  ``attempts``
    of 0 returns an empty list (no retries).
    """
    if attempts < 0:
        raise ValueError(f"attempts must be non-negative, got {attempts!r}")
    if base <= 0:
        raise ValueError(f"base delay must be positive, got {base!r}")
    if cap < base:
        raise ValueError(f"cap ({cap!r}) must be >= base ({base!r})")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must lie in [0, 1), got {jitter!r}")
    delays = []
    for attempt in range(attempts):
        delay = min(cap, base * (2.0**attempt))
        factor = 1.0 - jitter * _mix((salt << 20) ^ attempt)
        delays.append(delay * factor)
    return delays
