"""Pluggable sweep executor for embarrassingly parallel experiments.

The paper's validation sweeps (Figures 4-7) are dozens of *independent*
(scenario x message size x cluster count x replication) simulations; nothing
couples one run to another except the aggregation at the end.  That makes
them the textbook case for fan-out execution: ship the runs to workers,
collect the results in submission order, and keep every run's random seed a
pure function of the sweep definition so every execution backend is
bit-identical to every other.

:class:`SweepEngine` is the policy layer over the execution backends of
:mod:`repro.parallel.backends`:

* ``jobs=1`` (the default) runs every task in-process with zero overhead —
  behaviourally identical to the pre-engine serial loops;
* ``jobs>1`` fans tasks out across a local process pool; results are still
  returned in task order;
* ``jobs=None`` (or ``0``) uses one pool worker per available CPU core;
* ``backend=`` overrides the jobs-based choice: ``"serial"``, ``"pool"``,
  ``"socket"`` or any :class:`~repro.parallel.backends.Backend` instance —
  e.g. a :class:`~repro.parallel.backends.SocketBackend` whose workers live
  on other machines;
* a task exception aborts the sweep and is re-raised *unchanged* (so
  ``except SimulationError`` and friends keep working exactly as with the
  pre-engine serial loops), annotated with the failing task's index and
  label; :class:`~repro.errors.WorkerError` is raised only when the
  execution infrastructure itself breaks (a pool worker process died, a
  socket worker was lost and the task could not be requeued);
* an optional ``progress`` callback is invoked as ``progress(done, total,
  label)`` after every completed task (from the submitting process, so it is
  safe to print from it).

Because tasks are shipped to workers with :mod:`pickle`, task functions must
be module-level callables and their arguments picklable — which every
configuration dataclass in this package is.  Socket workers are separate
Python processes (not forks), so task functions must also be *importable*
in the worker's environment.

Example
-------
>>> from repro.parallel import SweepEngine, SweepTask
>>> engine = SweepEngine(jobs=1)
>>> engine.map(abs, [-1, -2, 3])
[1, 2, 3]
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import WorkerError
from .backends import Backend, ProcessPoolBackend, SerialBackend, SocketBackend
from .checkpoint import SweepJournal

__all__ = ["SweepTask", "SweepEngine", "resolve_engine", "resolve_jobs", "stderr_progress"]

#: Names accepted by ``SweepEngine(backend=...)`` and the CLI ``--backend``.
#: ``"ssh"`` is CLI-only sugar: it needs a host list, so the engine accepts
#: the name but ``run`` demands a pre-built
#: :class:`~repro.parallel.backends.SSHBackend` instance instead.
BACKEND_NAMES = ("serial", "pool", "socket", "ssh")


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work: ``fn(*args, **kwargs)``.

    ``fn`` must be picklable (a module-level callable) when the engine runs
    with ``jobs > 1`` or a distributed backend; ``label`` is used for
    progress reporting and error messages.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""


def _annotate(exc: BaseException, index: int, label: str) -> BaseException:
    """Attach the failing task's identity to ``exc`` without changing its type."""
    note = f"raised by sweep task #{index}" + (f" ({label})" if label else "")
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:  # Python >= 3.11
        add_note(note)
    return exc


def _coerce_journal(
    journal: Optional[Union[str, "os.PathLike", SweepJournal]],
) -> Optional[SweepJournal]:
    """Accept a ready journal, a path to open one, or ``None``."""
    if isinstance(journal, (str, os.PathLike)):
        return SweepJournal(journal)
    return journal


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means one per CPU core."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 or None = one worker per CPU core), got {jobs!r}"
        )
    return int(jobs)


def stderr_progress(done: int, total: int, label: str) -> None:
    """A ready-made progress callback: one status line on stderr per task."""
    sys.stderr.write(f"\r[sweep {done}/{total}] {label[:60]:<60}")
    if done == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


class SweepEngine:
    """Executor that fans independent sweep tasks out across a backend.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` executes in-process (no pool,
        no pickling), ``None`` or ``0`` uses all CPU cores.  Also the
        default worker count for ``backend="socket"``.
    progress:
        Optional ``progress(done, total, label)`` callback invoked after
        every completed task.  Tasks are reported in the order the engine
        collects them: strictly task order for the serial backend, task
        order within each batch of completed futures for the pool backend,
        and arrival order for the socket backend.
    mp_context:
        Name of the multiprocessing start method (``"fork"``,
        ``"spawn"``, ...) for the pool backend.  Defaults to ``fork`` on
        Linux (cheap start-up, modules already imported) and the platform
        default elsewhere — notably *not* fork on macOS, where forked
        children crash in system libraries (the reason CPython switched
        that platform to spawn).  Results do not depend on the start
        method.
    backend:
        ``None`` (default) picks ``serial`` or ``pool`` from ``jobs``
        exactly like the pre-backend engine; a name from
        :data:`BACKEND_NAMES` forces that backend; a
        :class:`~repro.parallel.backends.Backend` instance is used as-is
        (the way to configure a multi-host
        :class:`~repro.parallel.backends.SocketBackend` or an
        :class:`~repro.parallel.backends.SSHBackend`).
    journal:
        Optional :class:`~repro.parallel.checkpoint.SweepJournal` (or a
        path, coerced to one).  Every completed task is journaled as it
        arrives; tasks already recorded by a previous incarnation of the
        same campaign are restored instead of re-executed, so a killed
        sweep resumes bit-identically to an uninterrupted run on every
        backend.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[Callable[[int, int, str], None]] = None,
        mp_context: Optional[str] = None,
        backend: Optional[Union[str, Backend]] = None,
        journal: Optional[Union[str, SweepJournal]] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.progress = progress
        if mp_context is None and sys.platform == "linux":
            mp_context = "fork"
        self._mp_context = mp_context
        if isinstance(backend, str) and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKEND_NAMES} "
                "or a Backend instance"
            )
        self.backend = backend
        self.journal = _coerce_journal(journal)

    # -- execution ---------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Execute ``tasks`` and return their results in task order.

        Raises
        ------
        BaseException
            The first task failure the backend reports is re-raised with
            its original type — identical to running the tasks in a plain
            loop — annotated with the task index/label; queued tasks are
            cancelled.
        WorkerError
            If the execution infrastructure itself fails (a pool worker
            process died before delivering a result, or every socket
            worker was lost).
        """
        tasks = list(tasks)
        if not tasks:
            return []
        total = len(tasks)
        results: List[Any] = [None] * total
        seen = [False] * total
        done = 0
        recorder = None
        remaining = list(range(total))
        if self.journal is not None:
            run_journal = self.journal.begin_run(tasks)
            recorder = run_journal.record
            for index in sorted(run_journal.completed):
                results[index] = run_journal.completed[index]
                seen[index] = True
                done += 1
                self._report(done, total, tasks[index].label)
            remaining = [index for index in range(total) if not seen[index]]
            if not remaining:
                return results
        # The backend only sees the unfinished tasks; its outcome indices
        # are positions in that sub-list and are mapped back to sweep
        # indices here, so journaled resumes work on every backend.
        backend = self._resolve_backend(len(remaining))
        outcomes = backend.execute([tasks[index] for index in remaining])
        try:
            for outcome in outcomes:
                index = remaining[outcome.index]
                if outcome.error is not None:
                    if outcome.infrastructure:
                        raise WorkerError(
                            index, tasks[index].label, outcome.error
                        ) from outcome.error
                    raise _annotate(outcome.error, index, tasks[index].label)
                if seen[index]:
                    # A duplicate outcome from a misbehaving backend must
                    # not count toward the delivered-everything check.
                    continue
                results[index] = outcome.value
                seen[index] = True
                done += 1
                if recorder is not None:
                    recorder(index, outcome.value)
                self._report(done, total, tasks[index].label)
        finally:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
        if done != total:
            missing = seen.index(False)
            raise WorkerError(
                missing,
                tasks[missing].label,
                RuntimeError(
                    f"backend {backend.name!r} delivered {done} of {total} outcomes"
                ),
            )
        return results

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        label: Optional[Callable[[int, Any], str]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item (each item is one positional argument).

        ``label`` optionally maps ``(index, item)`` to a progress label.
        """
        tasks = [
            SweepTask(fn=fn, args=(item,), label=label(i, item) if label else f"task[{i}]")
            for i, item in enumerate(items)
        ]
        return self.run(tasks)

    # -- internals ---------------------------------------------------------

    def _report(self, done: int, total: int, label: str) -> None:
        if self.progress is not None:
            self.progress(done, total, label)

    def _resolve_backend(self, task_count: int) -> Backend:
        """Materialise the backend for one ``run`` call."""
        spec = self.backend
        if isinstance(spec, Backend):
            return spec
        if spec is None:
            # Legacy auto mode: single tasks and jobs<=1 stay in-process.
            spec = "serial" if self.jobs <= 1 or task_count == 1 else "pool"
        if spec == "serial":
            return SerialBackend()
        if spec == "pool":
            return ProcessPoolBackend(jobs=self.jobs, mp_context=self._mp_context)
        if spec == "socket":
            return SocketBackend(spawn_workers=max(self.jobs, 1))
        if spec == "ssh":
            raise ValueError(
                "backend 'ssh' needs a host list and cannot be resolved from a "
                "bare name; pass an SSHBackend instance (e.g. "
                "SweepEngine(backend=SSHBackend(hosts=[...]))) or use the CLI's "
                "--backend ssh --workers HOST,HOST,..."
            )
        raise ValueError(f"unknown backend {spec!r}")

    def __repr__(self) -> str:
        backend = self.backend if self.backend is not None else "auto"
        return (
            f"<SweepEngine jobs={self.jobs} backend={backend!r} "
            f"context={self._mp_context or 'default'}>"
        )


def resolve_engine(
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    progress: Optional[Callable[[int, int, str], None]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> SweepEngine:
    """The shared ``jobs``/``engine``/``backend`` policy of every sweep driver.

    A caller-supplied ``engine`` wins; otherwise one is built from ``jobs``
    and ``backend``.  Experiment entry points accept the whole triple (plus
    an optional ``checkpoint`` journal/path) and funnel it through here so
    the precedence stays in one place.  ``checkpoint`` attaches a
    :class:`~repro.parallel.checkpoint.SweepJournal` to the engine — also
    to a caller-supplied one.  Passing the *same* journal again is a no-op
    (so one engine can drive a whole campaign of driver calls that all
    name the campaign's journal); asking an engine that already journals
    to use a *different* journal is ambiguous (which file would the
    campaign resume from?) and raises :class:`ValueError` rather than
    silently ignoring either.
    """
    if engine is not None:
        if checkpoint is not None:
            if engine.journal is None:
                engine.journal = _coerce_journal(checkpoint)
            else:
                requested = (
                    checkpoint.path
                    if isinstance(checkpoint, SweepJournal)
                    else os.fspath(checkpoint)
                )
                if str(requested) != engine.journal.path:
                    raise ValueError(
                        "the supplied engine already has a journal "
                        f"({engine.journal.path!r}); passing checkpoint="
                        f"{str(requested)!r} as well is ambiguous — drop one of "
                        "the two"
                    )
                # Same path: keep the attached journal — its run ordinals
                # continue the campaign across repeated driver calls.
        return engine
    return SweepEngine(jobs=jobs, progress=progress, backend=backend, journal=checkpoint)
