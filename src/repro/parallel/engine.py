"""Process-pool sweep executor for embarrassingly parallel experiments.

The paper's validation sweeps (Figures 4-7) are dozens of *independent*
(scenario x message size x cluster count x replication) simulations; nothing
couples one run to another except the aggregation at the end.  That makes
them the textbook case for process-level parallelism: fan the runs out over
CPU cores, collect the results in submission order, and keep every run's
random seed a pure function of the sweep definition so serial and parallel
execution are bit-identical.

:class:`SweepEngine` is that executor:

* ``jobs=1`` (the default) runs every task in-process with zero overhead —
  behaviourally identical to the pre-engine serial loops;
* ``jobs>1`` fans tasks out across a :class:`concurrent.futures.\
ProcessPoolExecutor`; results are still returned in task order;
* ``jobs=None`` uses one worker per available CPU core;
* a task exception aborts the sweep and is re-raised *unchanged* (so
  ``except SimulationError`` and friends keep working exactly as with the
  pre-engine serial loops), annotated with the failing task's index and
  label; :class:`~repro.errors.WorkerError` is raised only when the pool
  infrastructure itself breaks (e.g. a worker process dies);
* an optional ``progress`` callback is invoked as ``progress(done, total,
  label)`` after every completed task (from the submitting process, so it is
  safe to print from it).

Because tasks are shipped to workers with :mod:`pickle`, task functions must
be module-level callables and their arguments picklable — which every
configuration dataclass in this package is.

Example
-------
>>> from repro.parallel import SweepEngine, SweepTask
>>> engine = SweepEngine(jobs=1)
>>> engine.map(abs, [-1, -2, 3])
[1, 2, 3]
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import BrokenExecutor, FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import WorkerError

__all__ = ["SweepTask", "SweepEngine", "resolve_jobs", "stderr_progress"]


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work: ``fn(*args, **kwargs)``.

    ``fn`` must be picklable (a module-level callable) when the engine runs
    with ``jobs > 1``; ``label`` is used for progress reporting and error
    messages.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""


def _invoke(task: SweepTask) -> Any:
    """Run one task (executed inside the worker process)."""
    return task.fn(*task.args, **task.kwargs)


def _annotate(exc: BaseException, index: int, label: str) -> BaseException:
    """Attach the failing task's identity to ``exc`` without changing its type."""
    note = f"raised by sweep task #{index}" + (f" ({label})" if label else "")
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:  # Python >= 3.11
        add_note(note)
    return exc


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means one per CPU core."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 1 (or None for all cores), got {jobs!r}")
    return int(jobs)


def stderr_progress(done: int, total: int, label: str) -> None:
    """A ready-made progress callback: one status line on stderr per task."""
    sys.stderr.write(f"\r[sweep {done}/{total}] {label[:60]:<60}")
    if done == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


class SweepEngine:
    """Executor that fans independent sweep tasks out across processes.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` executes in-process (no pool,
        no pickling), ``None`` or ``0`` uses all CPU cores.
    progress:
        Optional ``progress(done, total, label)`` callback invoked after
        every completed task, in completion order.
    mp_context:
        Name of the multiprocessing start method (``"fork"``,
        ``"spawn"``, ...).  Defaults to ``fork`` on Linux (cheap start-up,
        modules already imported) and the platform default elsewhere —
        notably *not* fork on macOS, where forked children crash in system
        libraries (the reason CPython switched that platform to spawn).
        Results do not depend on the start method.
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[Callable[[int, int, str], None]] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.progress = progress
        if mp_context is None and sys.platform == "linux":
            mp_context = "fork"
        self._mp_context = mp_context

    # -- execution ---------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Execute ``tasks`` and return their results in task order.

        Raises
        ------
        BaseException
            The first task failure (in task order among completed futures)
            is re-raised with its original type — identical to running the
            tasks in a plain loop — annotated with the task index/label;
            queued tasks are cancelled.
        WorkerError
            If the pool infrastructure itself fails (a worker process
            died before delivering a result).
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.jobs <= 1 or len(tasks) == 1:
            return self._run_serial(tasks)
        return self._run_pool(tasks)

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        label: Optional[Callable[[int, Any], str]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item (each item is one positional argument).

        ``label`` optionally maps ``(index, item)`` to a progress label.
        """
        tasks = [
            SweepTask(fn=fn, args=(item,), label=label(i, item) if label else f"task[{i}]")
            for i, item in enumerate(items)
        ]
        return self.run(tasks)

    # -- internals ---------------------------------------------------------

    def _report(self, done: int, total: int, label: str) -> None:
        if self.progress is not None:
            self.progress(done, total, label)

    def _run_serial(self, tasks: Sequence[SweepTask]) -> List[Any]:
        results: List[Any] = []
        total = len(tasks)
        for index, task in enumerate(tasks):
            try:
                results.append(_invoke(task))
            except Exception as exc:
                raise _annotate(exc, index, task.label)
            self._report(index + 1, total, task.label)
        return results

    def _run_pool(self, tasks: Sequence[SweepTask]) -> List[Any]:
        context = (
            multiprocessing.get_context(self._mp_context) if self._mp_context else None
        )
        total = len(tasks)
        workers = min(self.jobs, total)
        results: List[Any] = [None] * total
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        try:
            future_index = {pool.submit(_invoke, task): i for i, task in enumerate(tasks)}
            pending = set(future_index)
            done_count = 0
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                # Deterministic error attribution: inspect completed
                # futures in task order.
                for future in sorted(done, key=future_index.__getitem__):
                    index = future_index[future]
                    exc = future.exception()
                    if exc is not None:
                        if isinstance(exc, BrokenExecutor):
                            # The pool itself broke (worker died): the
                            # task never reported back, so wrap.
                            raise WorkerError(index, tasks[index].label, exc) from exc
                        raise _annotate(exc, index, tasks[index].label)
                    results[index] = future.result()
                    done_count += 1
                    self._report(done_count, total, tasks[index].label)
        except BaseException:
            # Drop queued tasks and surface the failure immediately rather
            # than draining the in-flight simulations first.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return results

    def __repr__(self) -> str:
        return f"<SweepEngine jobs={self.jobs} context={self._mp_context or 'default'}>"
