"""Pluggable sweep executor for embarrassingly parallel experiments.

The paper's validation sweeps (Figures 4-7) are dozens of *independent*
(scenario x message size x cluster count x replication) simulations; nothing
couples one run to another except the aggregation at the end.  That makes
them the textbook case for fan-out execution: ship the runs to workers,
collect the results in submission order, and keep every run's random seed a
pure function of the sweep definition so every execution backend is
bit-identical to every other.

:class:`SweepEngine` is the policy layer over the execution backends of
:mod:`repro.parallel.backends`:

* ``jobs=1`` (the default) runs every task in-process with zero overhead —
  behaviourally identical to the pre-engine serial loops;
* ``jobs>1`` fans tasks out across a local process pool; results are still
  returned in task order;
* ``jobs=None`` (or ``0``) uses one pool worker per available CPU core;
* ``backend=`` overrides the jobs-based choice: ``"serial"``, ``"pool"``,
  ``"socket"`` or any :class:`~repro.parallel.backends.Backend` instance —
  e.g. a :class:`~repro.parallel.backends.SocketBackend` whose workers live
  on other machines;
* a task exception aborts the sweep and is re-raised *unchanged* (so
  ``except SimulationError`` and friends keep working exactly as with the
  pre-engine serial loops), annotated with the failing task's index and
  label; :class:`~repro.errors.WorkerError` is raised only when the
  execution infrastructure itself breaks (a pool worker process died, a
  socket worker was lost and the task could not be requeued);
* an optional ``progress`` callback is invoked as ``progress(done, total,
  label)`` after every completed task (from the submitting process, so it is
  safe to print from it).

Because tasks are shipped to workers with :mod:`pickle`, task functions must
be module-level callables and their arguments picklable — which every
configuration dataclass in this package is.  Socket workers are separate
Python processes (not forks), so task functions must also be *importable*
in the worker's environment.

Example
-------
>>> from repro.parallel import SweepEngine, SweepTask
>>> engine = SweepEngine(jobs=1)
>>> engine.map(abs, [-1, -2, 3])
[1, 2, 3]
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import WorkerError
from .backends import Backend, ProcessPoolBackend, SerialBackend, SocketBackend

__all__ = ["SweepTask", "SweepEngine", "resolve_engine", "resolve_jobs", "stderr_progress"]

#: Names accepted by ``SweepEngine(backend=...)`` and the CLI ``--backend``.
BACKEND_NAMES = ("serial", "pool", "socket")


@dataclass(frozen=True)
class SweepTask:
    """One independent unit of sweep work: ``fn(*args, **kwargs)``.

    ``fn`` must be picklable (a module-level callable) when the engine runs
    with ``jobs > 1`` or a distributed backend; ``label`` is used for
    progress reporting and error messages.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""


def _annotate(exc: BaseException, index: int, label: str) -> BaseException:
    """Attach the failing task's identity to ``exc`` without changing its type."""
    note = f"raised by sweep task #{index}" + (f" ({label})" if label else "")
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:  # Python >= 3.11
        add_note(note)
    return exc


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means one per CPU core."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (0 or None = one worker per CPU core), got {jobs!r}"
        )
    return int(jobs)


def stderr_progress(done: int, total: int, label: str) -> None:
    """A ready-made progress callback: one status line on stderr per task."""
    sys.stderr.write(f"\r[sweep {done}/{total}] {label[:60]:<60}")
    if done == total:
        sys.stderr.write("\n")
    sys.stderr.flush()


class SweepEngine:
    """Executor that fans independent sweep tasks out across a backend.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` executes in-process (no pool,
        no pickling), ``None`` or ``0`` uses all CPU cores.  Also the
        default worker count for ``backend="socket"``.
    progress:
        Optional ``progress(done, total, label)`` callback invoked after
        every completed task.  Tasks are reported in the order the engine
        collects them: strictly task order for the serial backend, task
        order within each batch of completed futures for the pool backend,
        and arrival order for the socket backend.
    mp_context:
        Name of the multiprocessing start method (``"fork"``,
        ``"spawn"``, ...) for the pool backend.  Defaults to ``fork`` on
        Linux (cheap start-up, modules already imported) and the platform
        default elsewhere — notably *not* fork on macOS, where forked
        children crash in system libraries (the reason CPython switched
        that platform to spawn).  Results do not depend on the start
        method.
    backend:
        ``None`` (default) picks ``serial`` or ``pool`` from ``jobs``
        exactly like the pre-backend engine; a name from
        :data:`BACKEND_NAMES` forces that backend; a
        :class:`~repro.parallel.backends.Backend` instance is used as-is
        (the way to configure a multi-host
        :class:`~repro.parallel.backends.SocketBackend`).
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        progress: Optional[Callable[[int, int, str], None]] = None,
        mp_context: Optional[str] = None,
        backend: Optional[Union[str, Backend]] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.progress = progress
        if mp_context is None and sys.platform == "linux":
            mp_context = "fork"
        self._mp_context = mp_context
        if isinstance(backend, str) and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKEND_NAMES} "
                "or a Backend instance"
            )
        self.backend = backend

    # -- execution ---------------------------------------------------------

    def run(self, tasks: Sequence[SweepTask]) -> List[Any]:
        """Execute ``tasks`` and return their results in task order.

        Raises
        ------
        BaseException
            The first task failure the backend reports is re-raised with
            its original type — identical to running the tasks in a plain
            loop — annotated with the task index/label; queued tasks are
            cancelled.
        WorkerError
            If the execution infrastructure itself fails (a pool worker
            process died before delivering a result, or every socket
            worker was lost).
        """
        tasks = list(tasks)
        if not tasks:
            return []
        backend = self._resolve_backend(len(tasks))
        total = len(tasks)
        results: List[Any] = [None] * total
        seen = [False] * total
        done = 0
        outcomes = backend.execute(tasks)
        try:
            for outcome in outcomes:
                index = outcome.index
                if outcome.error is not None:
                    if outcome.infrastructure:
                        raise WorkerError(
                            index, tasks[index].label, outcome.error
                        ) from outcome.error
                    raise _annotate(outcome.error, index, tasks[index].label)
                if seen[index]:
                    # A duplicate outcome from a misbehaving backend must
                    # not count toward the delivered-everything check.
                    continue
                results[index] = outcome.value
                seen[index] = True
                done += 1
                self._report(done, total, tasks[index].label)
        finally:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
        if done != total:
            missing = seen.index(False)
            raise WorkerError(
                missing,
                tasks[missing].label,
                RuntimeError(
                    f"backend {backend.name!r} delivered {done} of {total} outcomes"
                ),
            )
        return results

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        label: Optional[Callable[[int, Any], str]] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every item (each item is one positional argument).

        ``label`` optionally maps ``(index, item)`` to a progress label.
        """
        tasks = [
            SweepTask(fn=fn, args=(item,), label=label(i, item) if label else f"task[{i}]")
            for i, item in enumerate(items)
        ]
        return self.run(tasks)

    # -- internals ---------------------------------------------------------

    def _report(self, done: int, total: int, label: str) -> None:
        if self.progress is not None:
            self.progress(done, total, label)

    def _resolve_backend(self, task_count: int) -> Backend:
        """Materialise the backend for one ``run`` call."""
        spec = self.backend
        if isinstance(spec, Backend):
            return spec
        if spec is None:
            # Legacy auto mode: single tasks and jobs<=1 stay in-process.
            spec = "serial" if self.jobs <= 1 or task_count == 1 else "pool"
        if spec == "serial":
            return SerialBackend()
        if spec == "pool":
            return ProcessPoolBackend(jobs=self.jobs, mp_context=self._mp_context)
        if spec == "socket":
            return SocketBackend(spawn_workers=max(self.jobs, 1))
        raise ValueError(f"unknown backend {spec!r}")

    def __repr__(self) -> str:
        backend = self.backend if self.backend is not None else "auto"
        return (
            f"<SweepEngine jobs={self.jobs} backend={backend!r} "
            f"context={self._mp_context or 'default'}>"
        )


def resolve_engine(
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    progress: Optional[Callable[[int, int, str], None]] = None,
) -> SweepEngine:
    """The shared ``jobs``/``engine``/``backend`` policy of every sweep driver.

    A caller-supplied ``engine`` wins; otherwise one is built from ``jobs``
    and ``backend``.  Experiment entry points accept the whole triple and
    funnel it through here so the precedence stays in one place.
    """
    if engine is not None:
        return engine
    return SweepEngine(jobs=jobs, progress=progress, backend=backend)
