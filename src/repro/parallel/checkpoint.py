"""Crash-tolerant sweep journals: kill a campaign, resume it bit-identically.

The paper's figure-scale campaigns are hours of embarrassingly parallel
simulation; before this module an interrupted run lost every completed
task.  A :class:`SweepJournal` is an append-only file of per-task completion
records that any :class:`~repro.parallel.SweepEngine` — serial, pool,
socket or SSH — writes as results arrive.  Re-running the same campaign
with the same journal skips every recorded task and re-executes only the
unfinished ones; because per-task seeds are a pure function of the sweep
definition (:mod:`repro.parallel.seeding`), the resumed results are
bit-identical to an uninterrupted run.

File format
-----------
One JSON object per line (so a partially written final line — the normal
state after a hard kill — is trivially detectable and discarded):

``{"kind": "run", "run": k, "tasks": n, "fingerprint": "..."}``
    Starts run ``k`` of the campaign.  A campaign may issue several engine
    runs (``report --simulate`` runs one sweep per figure plus the ratio
    study); runs are matched to journal sections by ordinal, and the
    fingerprint (task count, labels, function identities and pickled
    arguments) guards against resuming a journal with a *different*
    campaign definition — including parameter changes the labels do not
    encode, such as the simulated message count or the base seed.
``{"kind": "done", "run": k, "index": i, "value": "<base64 pickle>"}``
    Task ``i`` of run ``k`` completed with the decoded value.

Only *successes* are journaled: a task error aborts the sweep (exactly as
without a journal), and resuming re-executes the failed task.  Records are
flushed line-by-line, so a process killed mid-run loses at most the record
being written.  On load, the first unparsable line — truncated, corrupt, or
schema-invalid — and everything after it is discarded rather than treated
as fatal: the affected tasks simply re-execute, and the file is truncated
back to its last valid record so subsequent appends stay readable.

.. warning::
   Recorded values are :mod:`pickle` frames — the same trust model as the
   socket worker protocol.  Only resume journals you wrote yourself.

Testing hook
------------
``REPRO_CHECKPOINT_ABORT_AFTER=N`` makes the process hard-exit (status
:data:`ABORT_EXIT_CODE`, via ``os._exit``) immediately after the ``N``-th
record is written.  The CI smoke test and the crash-resume tests use it to
kill a sweep at a deterministic point mid-run.
"""

from __future__ import annotations

import base64
import hashlib
import io
import json
import os
import pickle
import warnings
from typing import Any, Dict, Optional, Sequence, Tuple

from ..errors import CheckpointError

__all__ = ["ABORT_EXIT_CODE", "RunJournal", "SweepJournal"]

#: Exit status of the ``REPRO_CHECKPOINT_ABORT_AFTER`` testing hook.
ABORT_EXIT_CODE = 17

#: Environment variable of the deterministic-kill testing hook.
ABORT_ENV = "REPRO_CHECKPOINT_ABORT_AFTER"

_records_written = 0  # process-wide counter driving the abort hook


def _fingerprint(tasks: Sequence) -> str:
    """A stable digest of the sweep definition.

    Covers the task count, every task's label, its function identity
    (module + qualname) and its pickled arguments — so resuming with a
    changed parameter that the labels do not encode (``--messages``, a
    different base seed, a different system) is caught instead of silently
    mixing results from two different campaigns.  Unpicklable arguments
    (possible with the serial backend, e.g. closures) degrade to a
    constant marker: the label/function part of the digest still guards
    those sweeps.
    """
    digest = hashlib.sha256()
    digest.update(str(len(tasks)).encode("utf-8"))
    for task in tasks:
        digest.update(b"\x00")
        digest.update(getattr(task, "label", "").encode("utf-8"))
        fn = getattr(task, "fn", None)
        digest.update(b"\x00")
        digest.update(
            f"{getattr(fn, '__module__', '')}.{getattr(fn, '__qualname__', '')}".encode("utf-8")
        )
        try:
            payload = pickle.dumps(
                (getattr(task, "args", ()), getattr(task, "kwargs", {})), protocol=4
            )
        except Exception:
            payload = b"<unpicklable arguments>"
        digest.update(b"\x00")
        digest.update(payload)
    return digest.hexdigest()[:16]


def _load_records(
    path: str,
) -> Tuple[Dict[int, Tuple[int, str]], Dict[int, Dict[int, Any]], Optional[int]]:
    """Parse an existing journal into per-run headers and completed values.

    Returns ``(headers, completed, valid_bytes)`` where ``headers[k] =
    (tasks, fingerprint)``, ``completed[k][index] = value`` and
    ``valid_bytes`` is the length of the trusted file prefix — ``None``
    when the whole file parsed.  Parsing stops at the first unparsable or
    schema-invalid line (everything from there on is discarded): after a
    hard kill the final line may be half-written, and after real
    corruption nothing downstream can be trusted — either way the affected
    tasks are simply re-executed, never silently trusted.  The caller
    truncates the file back to ``valid_bytes`` before appending, so later
    resumes see the records this incarnation writes (the journal heals
    instead of re-discarding everything past the bad line forever).
    """
    headers: Dict[int, Tuple[int, str]] = {}
    completed: Dict[int, Dict[int, Any]] = {}
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return headers, completed, None
    valid_bytes = 0
    for line_number, raw_line in enumerate(data.splitlines(keepends=True), start=1):
        try:
            if not raw_line.endswith(b"\n"):
                # The writer terminates every record, so an unterminated
                # final line is a partially flushed record — even when its
                # prefix happens to parse as JSON.
                raise ValueError("unterminated final record")
            record = json.loads(raw_line.decode("utf-8"))
            kind = record["kind"]
            run = int(record["run"])
            if kind == "run":
                header = (int(record["tasks"]), str(record["fingerprint"]))
                previous = headers.get(run)
                if previous is not None and previous != header:
                    raise ValueError("run header re-declared with different content")
                headers[run] = header
            elif kind == "done":
                if run not in headers:
                    raise ValueError(f"done record for undeclared run {run}")
                index = int(record["index"])
                if not 0 <= index < headers[run][0]:
                    raise ValueError(f"task index {index} out of range")
                value = pickle.loads(base64.b64decode(record["value"]))
                completed.setdefault(run, {})[index] = value
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        except Exception as exc:
            warnings.warn(
                f"sweep journal {path}: discarding line {line_number} and the "
                f"rest of the file ({exc}); the affected tasks will re-execute",
                stacklevel=3,
            )
            return headers, completed, valid_bytes
        valid_bytes += len(raw_line)
    return headers, completed, None


class RunJournal:
    """The journal view of one engine run: restored results + a recorder."""

    def __init__(self, journal: "SweepJournal", run: int, completed: Dict[int, Any]) -> None:
        self._journal = journal
        self.run = run
        #: Results restored from a previous incarnation, keyed by task index.
        self.completed = completed

    def record(self, index: int, value: Any) -> None:
        """Append one completed-task record (flushed immediately)."""
        self._journal._append_done(self.run, index, value)


class SweepJournal:
    """Append-only completion journal shared by every run of one campaign.

    Parameters
    ----------
    path:
        Journal file, created on first write.  If it already exists its
        records are restored, and subsequent runs append to it — so
        "checkpoint" and "resume" are the same operation on the same file.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._headers, self._restored, valid_bytes = _load_records(self.path)
        if valid_bytes is not None:
            # Heal the journal: drop the corrupt tail now, so the records
            # this incarnation appends are parseable by the *next* resume
            # (appending after the bad line would hide them forever).
            try:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_bytes)
            except OSError as exc:
                warnings.warn(
                    f"sweep journal {self.path}: could not truncate the corrupt "
                    f"tail ({exc}); resumes will keep re-executing its tasks",
                    stacklevel=2,
                )
        else:
            # Eagerly create a missing journal file: a campaign that asked
            # for checkpointing but happened to journal nothing (e.g. an
            # analysis-only, fully vectorized study) must still leave a
            # journal that --resume accepts.
            try:
                with open(self.path, "ab"):
                    pass
            except OSError:
                # _append_done will raise a meaningful error on first write.
                pass
        self._handle: Optional[io.TextIOWrapper] = None
        self._runs_started = 0

    @property
    def recorded_runs(self) -> int:
        """Number of engine runs a previous campaign recorded in this journal."""
        return len(self._headers)

    @property
    def runs_started(self) -> int:
        """Number of engine runs begun against this journal by this process."""
        return self._runs_started

    def __repr__(self) -> str:
        restored = sum(len(v) for v in self._restored.values())
        return f"<SweepJournal {self.path!r} restored={restored}>"

    @property
    def restored_count(self) -> int:
        """Total completed-task records restored from disk."""
        return sum(len(v) for v in self._restored.values())

    def begin_run(self, tasks: Sequence) -> RunJournal:
        """Open journal section for the next engine run of this campaign.

        Runs are matched by ordinal: the ``k``-th ``begin_run`` of the
        resumed campaign continues the ``k``-th run recorded in the file.
        A fingerprint mismatch means the campaign definition changed since
        the journal was written, which would silently mix results from two
        different sweeps — that raises :class:`~repro.errors.CheckpointError`.
        """
        run = self._runs_started
        self._runs_started += 1
        fingerprint = _fingerprint(tasks)
        header = self._headers.get(run)
        if header is not None:
            recorded_tasks, recorded_fingerprint = header
            if recorded_tasks != len(tasks) or recorded_fingerprint != fingerprint:
                raise CheckpointError(
                    f"journal {self.path!r} was written by a different campaign: "
                    f"run {run} recorded {recorded_tasks} task(s) with fingerprint "
                    f"{recorded_fingerprint}, but the resumed sweep has {len(tasks)} "
                    f"task(s) with fingerprint {fingerprint}; delete the journal "
                    "(or pick another path) to start a fresh campaign"
                )
        else:
            self._headers[run] = (len(tasks), fingerprint)
            self._append({"kind": "run", "run": run, "tasks": len(tasks),
                          "fingerprint": fingerprint})
        return RunJournal(self, run, dict(self._restored.get(run, {})))

    # -- writing -----------------------------------------------------------

    def _append_done(self, run: int, index: int, value: Any) -> None:
        global _records_written
        try:
            encoded = base64.b64encode(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            # An unpicklable result cannot be restored later; the sweep
            # itself still works (serial backends never pickle results), so
            # degrade to "this task re-executes on resume" with a warning.
            warnings.warn(
                f"sweep journal {self.path}: result of task #{index} is not "
                f"picklable ({exc!r}); it will re-execute on resume",
                stacklevel=3,
            )
            return
        self._append({"kind": "done", "run": run, "index": index, "value": encoded})
        _records_written += 1
        limit = os.environ.get(ABORT_ENV)
        if limit and _records_written >= int(limit):
            # Deterministic mid-sweep kill for crash-resume tests: exit
            # without any cleanup, exactly like SIGKILL.
            self._handle.flush()
            os.fsync(self._handle.fileno())
            os._exit(ABORT_EXIT_CODE)

    def _append(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        # One buffered write for record + newline: a hard kill must never
        # leave a complete record without its line terminator, or the next
        # incarnation's append would merge two records onto one line.
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        # One task == one simulation run (milliseconds to minutes), so a
        # flush per record is noise — and it bounds the loss after a hard
        # kill to the record being written.
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (records are already flushed)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
