"""Wire protocol of the socket work-queue backend.

The coordinator (:class:`repro.parallel.backends.SocketBackend`) and the
worker daemon (:mod:`repro.parallel.worker`) exchange length-prefixed pickle
frames over a TCP stream.  Every frame is a tuple whose first element names
the message kind:

``("hello", info)``
    Sent by a worker immediately after the connection is established (in
    both connection directions); ``info`` is a small dict with ``pid`` and
    ``host`` keys used for logging and to reject stray connections.
``("task", index, task)``
    Coordinator -> worker: execute ``task`` (a pickled
    :class:`~repro.parallel.engine.SweepTask`); ``index`` is the task's
    position in the sweep and is echoed back in the reply.
``("result", index, value)``
    Worker -> coordinator: the task succeeded with ``value``.
``("error", index, exception)``
    Worker -> coordinator: the task raised; the exception object itself is
    pickled so the coordinator re-raises the *original* type.
``("shutdown",)``
    Coordinator -> worker: no more work; close the session.

Frames are serialised *before* any byte hits the socket, so an unpicklable
payload can be replaced with a picklable substitute without corrupting the
stream.

.. warning::
   Frames are :mod:`pickle` — deserialising them executes arbitrary code.
   Only run workers and coordinators on hosts/networks you trust (the same
   trust model as ``multiprocessing``'s own socket-based primitives).
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

from ..testing import chaos

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "parse_address",
    "recv_message",
    "send_message",
]

#: Refuse frames larger than this (a corrupt length prefix would otherwise
#: make the receiver try to allocate gigabytes).
MAX_FRAME_BYTES = 1 << 30

_HEADER = struct.Struct("!Q")


class ProtocolError(ConnectionError):
    """The peer sent bytes that are not a valid protocol frame."""


def parse_address(text: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """Parse ``"host:port"`` (or ``":port"``) into a ``(host, port)`` pair."""
    host, sep, port_text = text.strip().rpartition(":")
    if not sep:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in {text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port must lie in [0, 65535], got {port}")
    return (host or default_host, port)


def send_message(sock: socket.socket, message: Any) -> None:
    """Serialise ``message`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    data = _HEADER.pack(len(payload)) + payload
    injector = chaos.controller()
    if injector is not None:
        injector.before_send(sock, data)
    sock.sendall(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    buffer = bytearray()
    while len(buffer) < count:
        chunk = sock.recv(count - len(buffer))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        buffer.extend(chunk)
    return bytes(buffer)


def recv_message(sock: socket.socket) -> Any:
    """Read one frame and deserialise it.

    Raises
    ------
    ConnectionError
        If the peer closed the connection (also mid-frame).
    ProtocolError
        If the frame is oversized or deserialisation fails.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} byte limit")
    payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # unpicklable payload == corrupt stream
        raise ProtocolError(f"could not deserialise frame: {exc!r}") from exc
