"""Deterministic per-task seeding for parallel sweeps.

Independent simulation runs in a sweep (replications, sweep points) each
need their own random seed.  The naive ``seed + i`` scheme is statistically
unsound twice over: adjacent master seeds yield *overlapping* replication
seed sets (sweep point with seed 7 and sweep point with seed 8 share all but
one replication seed), and additive seeds are exactly the pattern NumPy's
documentation warns produces correlated streams for some bit generators.

:func:`spawn_seeds` instead derives child seeds with
:meth:`numpy.random.SeedSequence.spawn`, which hashes ``(entropy,
spawn_key)`` so every child is decorrelated from every other child *and*
from the children of any other master seed.  The derivation is a pure
function of ``(master_seed, count index)``, so the serial and parallel
execution paths of :class:`repro.parallel.SweepEngine` see bit-identical
seeds regardless of worker scheduling.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["spawn_seeds", "spawn_seed_sequences"]


def spawn_seed_sequences(master_seed: int, count: int) -> List[np.random.SeedSequence]:
    """Spawn ``count`` independent child :class:`~numpy.random.SeedSequence`\\ s."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count!r}")
    return list(np.random.SeedSequence(int(master_seed)).spawn(count))


def spawn_seeds(master_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from ``master_seed``.

    The result is deterministic: the same ``(master_seed, count)`` always
    produces the same list, and element ``i`` does not depend on ``count``
    (spawning is prefix-stable), so growing a sweep keeps existing seeds.

    Example
    -------
    >>> spawn_seeds(0, 3) == spawn_seeds(0, 3)
    True
    >>> len(set(spawn_seeds(0, 100)))
    100
    """
    return [
        int(child.generate_state(1, np.uint64)[0])
        for child in spawn_seed_sequences(master_seed, count)
    ]
