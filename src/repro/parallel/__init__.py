"""Parallel experiment execution: pluggable backends with deterministic seeding.

This subpackage scales the paper's validation campaigns (dozens of
independent simulations per figure) across CPU cores — and, with the socket
backend, across machines:

``repro.parallel.engine``
    :class:`SweepEngine`, the order-preserving sweep executor used by
    :func:`repro.simulation.runner.run_replications`,
    :func:`repro.experiments.figures.run_figure`, the blocking-ratio study,
    the ablations and the CLI's ``--jobs``/``--backend`` flags.
``repro.parallel.backends``
    The :class:`Backend` interface and its implementations —
    :class:`SerialBackend` (in-process), :class:`ProcessPoolBackend`
    (local process pool), :class:`PersistentPoolBackend` (a process pool
    kept warm across runs — the ``repro serve`` worker pool),
    :class:`SocketBackend` (TCP work queue
    feeding ``python -m repro.parallel.worker`` processes, locally or on
    other hosts) and :class:`SSHBackend` (the socket work queue with
    workers the coordinator itself launches over ``ssh`` and tears down).
``repro.parallel.checkpoint``
    :class:`SweepJournal`, the append-only completion journal behind the
    CLI's ``--checkpoint``/``--resume`` flags: a killed campaign resumes
    bit-identically, re-executing only its unfinished tasks.
``repro.parallel.worker``
    The socket worker daemon (``--connect`` to dial a coordinator,
    ``--listen`` to serve as a multi-host daemon).
``repro.parallel.protocol``
    The length-prefixed pickle frame protocol both halves speak.
``repro.parallel.seeding``
    :func:`spawn_seeds`, the :class:`numpy.random.SeedSequence`-based
    derivation of independent per-task seeds shared by all execution
    backends (which is what keeps them bit-identical).
"""

from .backends import (
    Backend,
    PersistentPoolBackend,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    SSHBackend,
    TaskOutcome,
    socket_backend_from_spec,
    ssh_backend_from_spec,
)
from .checkpoint import RunJournal, SweepJournal
from .engine import (
    BACKEND_NAMES,
    SweepEngine,
    SweepTask,
    resolve_engine,
    resolve_jobs,
    stderr_progress,
)
from .seeding import spawn_seed_sequences, spawn_seeds

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "PersistentPoolBackend",
    "ProcessPoolBackend",
    "RunJournal",
    "SSHBackend",
    "SerialBackend",
    "SocketBackend",
    "SweepEngine",
    "SweepJournal",
    "SweepTask",
    "TaskOutcome",
    "resolve_engine",
    "resolve_jobs",
    "socket_backend_from_spec",
    "spawn_seeds",
    "spawn_seed_sequences",
    "ssh_backend_from_spec",
    "stderr_progress",
]
