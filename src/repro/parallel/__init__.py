"""Parallel experiment execution: process-pool sweeps with deterministic seeding.

This subpackage scales the paper's validation campaigns (dozens of
independent simulations per figure) across CPU cores:

``repro.parallel.engine``
    :class:`SweepEngine`, the order-preserving process-pool executor used by
    :func:`repro.simulation.runner.run_replications`,
    :func:`repro.experiments.figures.run_figure`, the blocking-ratio study,
    the ablations and the CLI's ``--jobs`` flag.
``repro.parallel.seeding``
    :func:`spawn_seeds`, the :class:`numpy.random.SeedSequence`-based
    derivation of independent per-task seeds shared by the serial and
    parallel paths (which is what keeps them bit-identical).
"""

from .engine import SweepEngine, SweepTask, resolve_jobs, stderr_progress
from .seeding import spawn_seed_sequences, spawn_seeds

__all__ = [
    "SweepEngine",
    "SweepTask",
    "resolve_jobs",
    "stderr_progress",
    "spawn_seeds",
    "spawn_seed_sequences",
]
