"""Parallel experiment execution: pluggable backends with deterministic seeding.

This subpackage scales the paper's validation campaigns (dozens of
independent simulations per figure) across CPU cores — and, with the socket
backend, across machines:

``repro.parallel.engine``
    :class:`SweepEngine`, the order-preserving sweep executor used by
    :func:`repro.simulation.runner.run_replications`,
    :func:`repro.experiments.figures.run_figure`, the blocking-ratio study,
    the ablations and the CLI's ``--jobs``/``--backend`` flags.
``repro.parallel.backends``
    The :class:`Backend` interface and its implementations —
    :class:`SerialBackend` (in-process), :class:`ProcessPoolBackend`
    (local process pool) and :class:`SocketBackend` (TCP work queue
    feeding ``python -m repro.parallel.worker`` processes, locally or on
    other hosts).
``repro.parallel.worker``
    The socket worker daemon (``--connect`` to dial a coordinator,
    ``--listen`` to serve as a multi-host daemon).
``repro.parallel.protocol``
    The length-prefixed pickle frame protocol both halves speak.
``repro.parallel.seeding``
    :func:`spawn_seeds`, the :class:`numpy.random.SeedSequence`-based
    derivation of independent per-task seeds shared by all execution
    backends (which is what keeps them bit-identical).
"""

from .backends import (
    Backend,
    ProcessPoolBackend,
    SerialBackend,
    SocketBackend,
    TaskOutcome,
    socket_backend_from_spec,
)
from .engine import (
    BACKEND_NAMES,
    SweepEngine,
    SweepTask,
    resolve_engine,
    resolve_jobs,
    stderr_progress,
)
from .seeding import spawn_seed_sequences, spawn_seeds

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SocketBackend",
    "SweepEngine",
    "SweepTask",
    "TaskOutcome",
    "resolve_engine",
    "resolve_jobs",
    "socket_backend_from_spec",
    "spawn_seeds",
    "spawn_seed_sequences",
    "stderr_progress",
]
