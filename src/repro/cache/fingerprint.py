"""Code-version fingerprint: the "code" half of every cache key.

A cached :class:`~repro.experiments.pipeline.ExperimentOutcome` is only
reusable while the code that produced it would still produce the same
bytes.  Rather than trusting a hand-bumped version string (easy to forget,
wrong for dirty checkouts), the fingerprint is a SHA-256 digest over the
*source text* of every ``repro`` module plus the declared
``repro.__version__``: editing any shipped ``.py`` file — a bug fix in the
simulator, a new seed derivation, a changed table format — changes the
fingerprint, which changes every cache key, which turns the whole cache
into a cold cache.  Stale entries are never served; they are only evicted
lazily (see :meth:`~repro.cache.store.ResultCache.evict_stale`).

The digest walks the package directory, not ``sys.modules``, so it is
stable across processes and import orders — the property the cache's
"key stability across processes" tests pin.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

from .._version import __version__

__all__ = ["code_fingerprint"]

_cached_fingerprint: Optional[str] = None


def _package_root() -> str:
    """Directory of the installed ``repro`` package (this file's grandparent)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def code_fingerprint(refresh: bool = False) -> str:
    """Hex SHA-256 digest of the ``repro`` package's source and version.

    The digest covers every ``*.py`` file under the package root, keyed by
    its package-relative path (so renames count as changes), plus
    ``repro.__version__``.  The result is memoised per process; pass
    ``refresh=True`` to re-walk the tree (only tests that rewrite installed
    sources need this).
    """
    global _cached_fingerprint
    if _cached_fingerprint is not None and not refresh:
        return _cached_fingerprint
    root = _package_root()
    digest = hashlib.sha256()
    digest.update(f"repro=={__version__}\n".encode("utf-8"))
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                sources.append((os.path.relpath(path, root), path))
    for relpath, path in sorted(sources):
        digest.update(relpath.replace(os.sep, "/").encode("utf-8"))
        digest.update(b"\x00")
        with open(path, "rb") as handle:
            digest.update(handle.read())
        digest.update(b"\x00")
    _cached_fingerprint = digest.hexdigest()
    return _cached_fingerprint
