"""Content-addressed result cache for experiment campaigns.

The cache memoises whole experiment campaigns by content address: the key
of an entry is the SHA-256 of the canonical JSON of its
:class:`~repro.experiments.pipeline.ExperimentSpec` combined with a
fingerprint of the installed ``repro`` sources
(:func:`~repro.cache.fingerprint.code_fingerprint`).  Identical spec +
identical code ⇒ identical key ⇒ the second run is a lookup, not a
computation — and because payloads store every float as ``float.hex()``
and the plan is rebuilt from the spec on the way back out, a hit renders
byte-identical tables, CSV files and figures to the miss that filled it.

Modules
-------
``fingerprint``
    The code-version fingerprint (SHA-256 over the package's source text).
``serialize``
    Loss-free hydration of :class:`ExperimentOutcome` payloads.
``store``
    :class:`ResultCache` — the on-disk store (SQLite index + JSON objects)
    with ``get``/``put``/``evict``/``stats``.

The CLI exposes the store via ``--cache DIR`` / ``--no-cache`` /
``REPRO_CACHE_DIR`` on ``repro run``/``figure``/``report`` and the
``repro cache`` verb; the :mod:`repro.service` HTTP API is built on top of
it.  See ``docs/cli.md`` and ``docs/service.md``.
"""

from .fingerprint import code_fingerprint
from .serialize import CachePayloadError, outcome_from_payload, outcome_to_payload
from .store import (
    CacheEntry,
    CacheError,
    CacheStats,
    ResultCache,
    coerce_cache,
    spec_cache_key,
)

__all__ = [
    "CacheEntry",
    "CacheError",
    "CachePayloadError",
    "CacheStats",
    "ResultCache",
    "code_fingerprint",
    "coerce_cache",
    "outcome_from_payload",
    "outcome_to_payload",
    "spec_cache_key",
]
