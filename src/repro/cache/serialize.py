"""Loss-free (de)hydration of experiment outcomes for the result cache.

The cache's bit-identity contract — a hit renders the *same bytes* as the
miss that filled it — rules out plain ``json.dumps(float)`` round trips for
anything downstream formatting touches.  Every float therefore travels as
``float.hex()`` (exact for finite values, NaN and the infinities alike),
every integer as a JSON integer, and the numpy arrays of a
:class:`~repro.core.vectorized.GridEvaluation` as hex lists restored with
their original dtypes.

Only the two execution passes are serialised — the analysis grid and the
per-point :class:`~repro.simulation.runner.ReplicatedResult` aggregates
(including each replication's full
:class:`~repro.simulation.simulator.SimulationResult`).  The plan side of
an :class:`~repro.experiments.pipeline.ExperimentOutcome` is *not* stored:
it is a deterministic function of the spec, and the store rebuilds it via
:func:`~repro.experiments.pipeline.build_plan` on every hit, so collectors
see exactly the object graph a cold run would have handed them.

``PAYLOAD_VERSION`` guards the schema: a payload written by a different
layout is treated as a corrupt entry (dropped and recomputed), never
misread.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "PAYLOAD_VERSION",
    "CachePayloadError",
    "outcome_to_payload",
    "outcome_from_payload",
]

#: Schema version of cached payloads; bump on any layout change.
PAYLOAD_VERSION = 1


class CachePayloadError(ValueError):
    """A cached payload does not match the expected schema (treated as corrupt)."""


def _hex(value: float) -> str:
    return float(value).hex()


def _unhex(text: Any) -> float:
    if not isinstance(text, str):
        raise CachePayloadError(f"expected a float.hex() string, got {text!r}")
    try:
        return float.fromhex(text)
    except ValueError as exc:
        raise CachePayloadError(f"invalid float.hex() value {text!r}") from exc


def _int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CachePayloadError(f"{name} must be an integer, got {value!r}")
    return value


def _hex_map(mapping: Dict[str, float]) -> Dict[str, str]:
    return {str(k): _hex(v) for k, v in mapping.items()}


def _unhex_map(data: Any, name: str) -> Dict[str, float]:
    if not isinstance(data, dict):
        raise CachePayloadError(f"{name} must be an object, got {data!r}")
    return {str(k): _unhex(v) for k, v in data.items()}


# -- GridEvaluation ----------------------------------------------------------


def _grid_to_payload(grid) -> Dict[str, Any]:
    return {
        "mean_latency_s": [_hex(v) for v in grid.mean_latency_s.tolist()],
        "local_latency_s": [_hex(v) for v in grid.local_latency_s.tolist()],
        "remote_latency_s": [_hex(v) for v in grid.remote_latency_s.tolist()],
        "effective_rate": [_hex(v) for v in grid.effective_rate.tolist()],
        "outgoing_probability": [_hex(v) for v in grid.outgoing_probability.tolist()],
        "iterations": [int(v) for v in grid.iterations.tolist()],
        "icn2_utilization": [_hex(v) for v in grid.icn2_utilization.tolist()],
        "throttling_factor": [_hex(v) for v in grid.throttling_factor.tolist()],
        "scalar_fallback": [int(v) for v in grid.scalar_fallback],
    }


def _grid_from_payload(data: Any):
    from ..core.vectorized import GridEvaluation

    if not isinstance(data, dict):
        raise CachePayloadError(f"analysis payload must be an object, got {data!r}")

    def floats(name: str) -> np.ndarray:
        values = data.get(name)
        if not isinstance(values, list):
            raise CachePayloadError(f"analysis field {name!r} missing or not a list")
        return np.array([_unhex(v) for v in values], dtype=np.float64)

    iterations = data.get("iterations")
    if not isinstance(iterations, list):
        raise CachePayloadError("analysis field 'iterations' missing or not a list")
    return GridEvaluation(
        mean_latency_s=floats("mean_latency_s"),
        local_latency_s=floats("local_latency_s"),
        remote_latency_s=floats("remote_latency_s"),
        effective_rate=floats("effective_rate"),
        outgoing_probability=floats("outgoing_probability"),
        iterations=np.array([_int(v, "iterations") for v in iterations], dtype=np.int64),
        icn2_utilization=floats("icn2_utilization"),
        throttling_factor=floats("throttling_factor"),
        scalar_fallback=tuple(
            _int(v, "scalar_fallback") for v in data.get("scalar_fallback", [])
        ),
    )


# -- SimulationResult / ReplicatedResult -------------------------------------


def _interval_to_payload(interval) -> Optional[Dict[str, Any]]:
    if interval is None:
        return None
    return {
        "mean": _hex(interval.mean),
        "half_width": _hex(interval.half_width),
        "confidence": _hex(interval.confidence),
        "sample_size": int(interval.sample_size),
    }


def _interval_from_payload(data: Any):
    from ..stats.intervals import ConfidenceInterval

    if data is None:
        return None
    if not isinstance(data, dict):
        raise CachePayloadError(f"confidence interval must be an object, got {data!r}")
    return ConfidenceInterval(
        mean=_unhex(data.get("mean")),
        half_width=_unhex(data.get("half_width")),
        confidence=_unhex(data.get("confidence")),
        sample_size=_int(data.get("sample_size"), "sample_size"),
    )


def _simulation_result_to_payload(result) -> Dict[str, Any]:
    return {
        "mean_latency_s": _hex(result.mean_latency_s),
        "confidence_interval": _interval_to_payload(result.confidence_interval),
        "mean_local_latency_s": _hex(result.mean_local_latency_s),
        "mean_remote_latency_s": _hex(result.mean_remote_latency_s),
        "measured_messages": int(result.measured_messages),
        "completed_messages": int(result.completed_messages),
        "remote_fraction": _hex(result.remote_fraction),
        "simulated_time_s": _hex(result.simulated_time_s),
        "utilizations": _hex_map(result.utilizations),
        "mean_occupancies": _hex_map(result.mean_occupancies),
        "seed": int(result.seed),
        "stats_mode": str(result.stats_mode),
        "latency_summary": (
            None if result.latency_summary is None else _hex_map(result.latency_summary)
        ),
    }


def _simulation_result_from_payload(data: Any):
    from ..simulation.simulator import SimulationResult

    if not isinstance(data, dict):
        raise CachePayloadError(f"simulation result must be an object, got {data!r}")
    summary = data.get("latency_summary")
    return SimulationResult(
        mean_latency_s=_unhex(data.get("mean_latency_s")),
        confidence_interval=_interval_from_payload(data.get("confidence_interval")),
        mean_local_latency_s=_unhex(data.get("mean_local_latency_s")),
        mean_remote_latency_s=_unhex(data.get("mean_remote_latency_s")),
        measured_messages=_int(data.get("measured_messages"), "measured_messages"),
        completed_messages=_int(data.get("completed_messages"), "completed_messages"),
        remote_fraction=_unhex(data.get("remote_fraction")),
        simulated_time_s=_unhex(data.get("simulated_time_s")),
        utilizations=_unhex_map(data.get("utilizations"), "utilizations"),
        mean_occupancies=_unhex_map(data.get("mean_occupancies"), "mean_occupancies"),
        seed=_int(data.get("seed"), "seed"),
        stats_mode=str(data.get("stats_mode", "array")),
        latency_summary=None if summary is None else _unhex_map(summary, "latency_summary"),
    )


def _replicated_to_payload(replicated) -> Dict[str, Any]:
    return {
        "replications": int(replicated.replications),
        "mean_latency_s": _hex(replicated.mean_latency_s),
        "latency_interval": _interval_to_payload(replicated.latency_interval),
        "per_replication": [
            _simulation_result_to_payload(result) for result in replicated.per_replication
        ],
    }


def _replicated_from_payload(data: Any):
    from ..simulation.runner import ReplicatedResult

    if not isinstance(data, dict):
        raise CachePayloadError(f"replicated result must be an object, got {data!r}")
    per_replication = data.get("per_replication")
    if not isinstance(per_replication, list):
        raise CachePayloadError("replicated field 'per_replication' missing or not a list")
    return ReplicatedResult(
        replications=_int(data.get("replications"), "replications"),
        mean_latency_s=_unhex(data.get("mean_latency_s")),
        latency_interval=_interval_from_payload(data.get("latency_interval")),
        per_replication=[_simulation_result_from_payload(r) for r in per_replication],
    )


# -- the outcome envelope ----------------------------------------------------


def outcome_to_payload(outcome) -> Dict[str, Any]:
    """Serialise an outcome's execution passes into a JSON-safe payload.

    The payload carries only the computed results (analysis grid and
    per-point replicated aggregates); the plan is rebuilt from the spec on
    the way back in.
    """
    return {
        "payload_version": PAYLOAD_VERSION,
        "n_points": len(outcome.plan.points),
        "analysis": None if outcome.analysis is None else _grid_to_payload(outcome.analysis),
        "replicated": (
            None
            if outcome.replicated is None
            else [_replicated_to_payload(r) for r in outcome.replicated]
        ),
    }


def outcome_from_payload(payload: Any, plan):
    """Rebuild an :class:`ExperimentOutcome` from ``payload`` against ``plan``.

    Raises
    ------
    CachePayloadError
        When the payload's schema version, shape or value encoding does not
        match — the store treats this as a corrupt entry: it is dropped and
        the campaign recomputes.
    """
    from ..experiments.pipeline import ExperimentOutcome

    if not isinstance(payload, dict):
        raise CachePayloadError(f"cache payload must be an object, got {type(payload).__name__}")
    if payload.get("payload_version") != PAYLOAD_VERSION:
        raise CachePayloadError(
            f"cache payload version {payload.get('payload_version')!r} != {PAYLOAD_VERSION}"
        )
    if payload.get("n_points") != len(plan.points):
        raise CachePayloadError(
            f"cached point count {payload.get('n_points')!r} does not match the "
            f"plan's {len(plan.points)}"
        )
    analysis = payload.get("analysis")
    replicated = payload.get("replicated")
    if plan.include_analysis != (analysis is not None):
        raise CachePayloadError("cached analysis pass does not match the plan's mode")
    if plan.include_simulation != (replicated is not None):
        raise CachePayloadError("cached simulation pass does not match the plan's mode")
    grid = None if analysis is None else _grid_from_payload(analysis)
    if grid is not None and len(grid) != len(plan.points):
        raise CachePayloadError(
            f"cached analysis grid has {len(grid)} points, plan has {len(plan.points)}"
        )
    folded = None
    if replicated is not None:
        if not isinstance(replicated, list):
            raise CachePayloadError("cached 'replicated' field is not a list")
        if len(replicated) != len(plan.points):
            raise CachePayloadError(
                f"cached simulation pass has {len(replicated)} points, plan has "
                f"{len(plan.points)}"
            )
        folded = [_replicated_from_payload(r) for r in replicated]
    return ExperimentOutcome(plan=plan, analysis=grid, replicated=folded)
