"""Content-addressed, persistent store of experiment results.

:class:`ResultCache` memoises whole campaigns: the cache key is the SHA-256
of the canonical JSON of an :class:`~repro.experiments.pipeline.ExperimentSpec`
combined with the :func:`~repro.cache.fingerprint.code_fingerprint` of the
installed ``repro`` sources, so two processes — today or next month — that
ask for the same spec against the same code share one computation.  Layout
on disk::

    <root>/
      index.sqlite          -- entry metadata + hit/miss counters
      objects/<k0k1>/<key>.json  -- one hex-exact payload per entry

The SQLite file is only an *index* (spec provenance, sizes, hit counts);
the payloads themselves are plain JSON files written atomically (temp file
+ ``os.replace``), so a crashed writer never leaves a half-entry that a
reader could trust.  A payload that fails to load or rehydrate — truncated
file, schema drift, hand-edited JSON — is dropped and counted, and the
lookup reports a miss: corruption costs a recomputation, never a wrong
result.

Keys are *only* assigned to plans that are a pure function of their spec
(see :meth:`ResultCache.key_for_plan`): a plan built against non-default
:class:`~repro.experiments.scenarios.PaperParameters` is silently
uncacheable, because its spec under-describes it.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from contextlib import closing
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from ..errors import ReproError
from .fingerprint import code_fingerprint
from .serialize import (
    CachePayloadError,
    outcome_from_payload,
    outcome_to_payload,
)

__all__ = [
    "CacheError",
    "CacheEntry",
    "CacheStats",
    "ResultCache",
    "coerce_cache",
    "spec_cache_key",
]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    scenario TEXT NOT NULL,
    mode TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    code_fingerprint TEXT NOT NULL,
    created_at REAL NOT NULL,
    last_hit_at REAL,
    hits INTEGER NOT NULL DEFAULT 0,
    size_bytes INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""

_COUNTERS = ("hits", "misses", "puts", "evictions", "corrupt_dropped")


class CacheError(ReproError, RuntimeError):
    """The result-cache store itself is unusable (e.g. unwritable directory)."""


def spec_cache_key(spec_json: Dict[str, Any], fingerprint: str) -> str:
    """The content-addressed key of one (spec, code-version) pair.

    ``spec_json`` is the plain-JSON form of a spec
    (:meth:`~repro.experiments.pipeline.ExperimentSpec.to_json`); canonical
    serialisation (sorted keys, no whitespace) makes the key independent of
    field order, process, and platform.
    """
    canonical = json.dumps(
        {"code": fingerprint, "spec": spec_json},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """Index metadata of one cached campaign."""

    key: str
    scenario: str
    mode: str
    spec: Dict[str, Any]
    code_fingerprint: str
    created_at: float
    last_hit_at: Optional[float]
    hits: int
    size_bytes: int

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe row (for ``repro cache list`` and the service API)."""
        return {
            "key": self.key,
            "scenario": self.scenario,
            "mode": self.mode,
            "spec": self.spec,
            "code_fingerprint": self.code_fingerprint,
            "created_at": self.created_at,
            "last_hit_at": self.last_hit_at,
            "hits": self.hits,
            "size_bytes": self.size_bytes,
        }


@dataclass(frozen=True)
class CacheStats:
    """Aggregate store statistics (entry counts plus lifetime counters)."""

    entries: int
    payload_bytes: int
    stale_entries: int
    hits: int
    misses: int
    puts: int
    evictions: int
    corrupt_dropped: int

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary (for tables, JSON output and the service API)."""
        return {
            "entries": self.entries,
            "payload_bytes": self.payload_bytes,
            "stale_entries": self.stale_entries,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
        }


class ResultCache:
    """Content-addressed result store under one directory.

    Parameters
    ----------
    root:
        Cache directory (created if missing) holding ``index.sqlite`` and
        the ``objects/`` payload tree.
    fingerprint:
        Code-version fingerprint folded into every key.  Defaults to
        :func:`~repro.cache.fingerprint.code_fingerprint`; tests pass
        explicit values to exercise code-version invalidation without
        rewriting installed sources.

    The store is safe for concurrent use from several threads and
    processes: SQLite serialises index updates (30 s busy timeout) and
    payload files are written atomically.
    """

    def __init__(
        self, root: Union[str, "os.PathLike"], fingerprint: Optional[str] = None
    ) -> None:
        self.root = os.path.abspath(os.fspath(root))
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self._objects = os.path.join(self.root, "objects")
        try:
            os.makedirs(self._objects, exist_ok=True)
            with closing(self._connect()) as conn, conn:
                conn.executescript(_SCHEMA)
                conn.executemany(
                    "INSERT OR IGNORE INTO counters (name, value) VALUES (?, 0)",
                    [(name,) for name in _COUNTERS],
                )
        except (OSError, sqlite3.Error) as exc:
            raise CacheError(f"cannot open result cache at {self.root!r}: {exc}") from exc

    # -- low-level plumbing ------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        return sqlite3.connect(os.path.join(self.root, "index.sqlite"), timeout=30.0)

    def _payload_path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], f"{key}.json")

    def _bump(self, conn: sqlite3.Connection, counter: str, by: int = 1) -> None:
        conn.execute("UPDATE counters SET value = value + ? WHERE name = ?", (by, counter))

    def _drop_entry(self, key: str, counter: str) -> bool:
        """Remove one entry (index row + payload file); count it as ``counter``."""
        with closing(self._connect()) as conn, conn:
            removed = conn.execute("DELETE FROM entries WHERE key = ?", (key,)).rowcount
            if removed:
                self._bump(conn, counter)
        try:
            os.remove(self._payload_path(key))
            return True
        except FileNotFoundError:
            return bool(removed)

    # -- keys --------------------------------------------------------------

    def key_for_spec(self, spec) -> str:
        """The cache key of ``spec`` under this store's code fingerprint."""
        return spec_cache_key(spec.to_json(), self.fingerprint)

    def key_for_plan(self, plan) -> Optional[str]:
        """The cache key of ``plan``, or ``None`` when it is uncacheable.

        A plan is cacheable only when rebuilding it from its spec alone
        (default paper parameters plus the spec's own switch overrides)
        reproduces the parameters it actually ran with — otherwise the spec
        under-describes the campaign and a key derived from it would
        collide with genuinely different results.
        """
        from ..experiments.pipeline import _apply_switch_overrides
        from ..experiments.scenarios import PAPER_PARAMETERS

        if plan.parameters != _apply_switch_overrides(plan.spec, PAPER_PARAMETERS):
            return None
        return self.key_for_spec(plan.spec)

    # -- the runner-facing API ---------------------------------------------

    def get_outcome(self, plan):
        """The cached :class:`ExperimentOutcome` for ``plan``, or ``None``.

        A hit rehydrates the stored passes against ``plan`` (hex-exact, so
        every downstream table/CSV byte matches the run that filled the
        entry) and bumps the entry's hit count.  A corrupt or
        schema-incompatible payload is dropped and reported as a miss.
        """
        key = self.key_for_plan(plan)
        if key is None:
            return None
        payload = self._load_payload(key)
        if payload is None:
            return None
        try:
            outcome = outcome_from_payload(payload.get("outcome"), plan)
        except CachePayloadError:
            self._drop_entry(key, "corrupt_dropped")
            with closing(self._connect()) as conn, conn:
                self._bump(conn, "misses")
            return None
        with closing(self._connect()) as conn, conn:
            self._bump(conn, "hits")
            conn.execute(
                "UPDATE entries SET hits = hits + 1, last_hit_at = ? WHERE key = ?",
                (time.time(), key),
            )
        return outcome

    def put_outcome(self, plan, outcome) -> Optional[str]:
        """Store ``outcome`` under ``plan``'s key; returns the key (or ``None``).

        Uncacheable plans (see :meth:`key_for_plan`) are ignored.  Writing
        is last-writer-wins and atomic; concurrent writers of the same key
        store bit-identical payloads anyway.
        """
        key = self.key_for_plan(plan)
        if key is None:
            return None
        spec_json = plan.spec.to_json()
        envelope = {
            "key": key,
            "code_fingerprint": self.fingerprint,
            "spec": spec_json,
            "outcome": outcome_to_payload(outcome),
        }
        text = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
        path = self._payload_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError as exc:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise CacheError(f"cannot write cache payload {path!r}: {exc}") from exc
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(key, scenario, mode, spec_json, code_fingerprint, created_at, "
                " last_hit_at, hits, size_bytes) "
                "VALUES (?, ?, ?, ?, ?, ?, NULL, 0, ?)",
                (
                    key,
                    str(spec_json.get("scenario", "")),
                    str(spec_json.get("mode", "both")),
                    json.dumps(spec_json, sort_keys=True),
                    self.fingerprint,
                    time.time(),
                    len(text.encode("utf-8")),
                ),
            )
            self._bump(conn, "puts")
        return key

    def _load_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Read one payload envelope; drop the entry and miss on any damage."""
        with closing(self._connect()) as conn:
            row = conn.execute("SELECT key FROM entries WHERE key = ?", (key,)).fetchone()
        path = self._payload_path(key)
        if row is None and not os.path.exists(path):
            with closing(self._connect()) as conn, conn:
                self._bump(conn, "misses")
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) or payload.get("key") != key:
                raise CachePayloadError(f"payload {path!r} does not describe key {key}")
        except (OSError, ValueError) as exc:
            # Index row without a readable payload (truncated write,
            # hand-edited file, deleted object): recover by dropping the
            # entry — the caller recomputes.
            del exc
            self._drop_entry(key, "corrupt_dropped")
            with closing(self._connect()) as conn, conn:
                self._bump(conn, "misses")
            return None
        return payload

    # -- inspection and maintenance ----------------------------------------

    def get_entry(self, key: str) -> Optional[CacheEntry]:
        """Index metadata of one entry, or ``None``."""
        with closing(self._connect()) as conn:
            row = conn.execute(
                "SELECT key, scenario, mode, spec_json, code_fingerprint, "
                "created_at, last_hit_at, hits, size_bytes FROM entries WHERE key = ?",
                (key,),
            ).fetchone()
        return None if row is None else self._entry_from_row(row)

    def entries(self) -> List[CacheEntry]:
        """All entries, most recently created first."""
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT key, scenario, mode, spec_json, code_fingerprint, "
                "created_at, last_hit_at, hits, size_bytes FROM entries "
                "ORDER BY created_at DESC, key"
            ).fetchall()
        return [self._entry_from_row(row) for row in rows]

    @staticmethod
    def _entry_from_row(row) -> CacheEntry:
        try:
            spec_json = json.loads(row[3])
        except ValueError:
            spec_json = {}
        return CacheEntry(
            key=row[0],
            scenario=row[1],
            mode=row[2],
            spec=spec_json if isinstance(spec_json, dict) else {},
            code_fingerprint=row[4],
            created_at=row[5],
            last_hit_at=row[6],
            hits=row[7],
            size_bytes=row[8],
        )

    def evict(self, key: str) -> bool:
        """Remove one entry; returns whether anything was removed."""
        return self._drop_entry(key, "evictions")

    def evict_stale(self) -> int:
        """Remove every entry written by a different code fingerprint.

        Stale entries can never be served again (their keys embed the old
        fingerprint), so this only reclaims disk space.
        """
        with closing(self._connect()) as conn:
            keys = [
                row[0]
                for row in conn.execute(
                    "SELECT key FROM entries WHERE code_fingerprint != ?",
                    (self.fingerprint,),
                )
            ]
        removed = 0
        for key in keys:
            removed += bool(self._drop_entry(key, "evictions"))
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            removed += bool(self._drop_entry(entry.key, "evictions"))
        return removed

    def stats(self) -> CacheStats:
        """Aggregate statistics (entry counts plus lifetime counters)."""
        with closing(self._connect()) as conn:
            entry_count, payload_bytes = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size_bytes), 0) FROM entries"
            ).fetchone()
            stale = conn.execute(
                "SELECT COUNT(*) FROM entries WHERE code_fingerprint != ?",
                (self.fingerprint,),
            ).fetchone()[0]
            counters = dict(conn.execute("SELECT name, value FROM counters"))
        return CacheStats(
            entries=int(entry_count),
            payload_bytes=int(payload_bytes),
            stale_entries=int(stale),
            hits=int(counters.get("hits", 0)),
            misses=int(counters.get("misses", 0)),
            puts=int(counters.get("puts", 0)),
            evictions=int(counters.get("evictions", 0)),
            corrupt_dropped=int(counters.get("corrupt_dropped", 0)),
        )

    def __repr__(self) -> str:
        return f"<ResultCache root={self.root!r}>"


def coerce_cache(
    cache: Optional[Union[str, "os.PathLike", ResultCache]],
) -> Optional[ResultCache]:
    """Accept a ready cache, a directory path to open one, or ``None``."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
