"""Output formatters for lint reports: text, JSON and GitHub annotations.

Each formatter turns a :class:`~repro.analysis.engine.LintReport` into a
string; writing it (and choosing the exit code) is the CLI's job.

* ``text`` — one ``path:line:col: ID message`` line per finding plus a
  summary, for humans and editors that parse compiler-style locations.
* ``json`` — a single object with ``findings``/``files_scanned``/
  ``suppressed`` keys, for toolchain consumers.
* ``github`` — ``::error`` workflow commands, so a CI run annotates the
  offending lines directly in the pull-request diff.
"""

from __future__ import annotations

import json
from typing import Callable, Dict

from .engine import LintReport

__all__ = ["FORMATS", "format_report"]


def _format_text(report: LintReport) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}" for f in report.findings
    ]
    noise = f", {report.suppressed} suppressed" if report.suppressed else ""
    if report.findings:
        count = len(report.findings)
        plural = "" if count == 1 else "s"
        lines.append(f"{count} finding{plural} in {report.files_scanned} files{noise}")
    else:
        lines.append(f"clean: {report.files_scanned} files scanned{noise}")
    return "\n".join(lines)


def _format_json(report: LintReport) -> str:
    payload = {
        "findings": [f.as_dict() for f in report.findings],
        "files_scanned": report.files_scanned,
        "suppressed": report.suppressed,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _escape_github(text: str) -> str:
    """Escape data for a workflow-command message (GitHub's own rules)."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _escape_github_property(text: str) -> str:
    return _escape_github(text).replace(":", "%3A").replace(",", "%2C")


def _format_github(report: LintReport) -> str:
    lines = []
    for f in report.findings:
        location = (
            f"file={_escape_github_property(f.path)},"
            f"line={f.line},col={f.col + 1},"
            f"title={_escape_github_property(f.rule)}"
        )
        lines.append(f"::error {location}::{_escape_github(f.message)}")
    if not lines:
        return f"clean: {report.files_scanned} files scanned"
    return "\n".join(lines)


FORMATS: Dict[str, Callable[[LintReport], str]] = {
    "text": _format_text,
    "json": _format_json,
    "github": _format_github,
}


def format_report(report: LintReport, fmt: str = "text") -> str:
    """Render ``report`` in ``fmt`` (one of :data:`FORMATS`)."""
    try:
        formatter = FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {sorted(FORMATS)}"
        ) from None
    return formatter(report)
