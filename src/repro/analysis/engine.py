"""The lint engine: file discovery, rule dispatch and the report object.

One :class:`LintEngine` holds the selected rule classes; :meth:`LintEngine.run`
walks the requested paths and produces a :class:`LintReport`.  Each file is
parsed once and walked once — rules subscribe to AST node classes via their
``node_types`` attribute and the engine dispatches every visited node to the
subscribed rules only (see :mod:`repro.analysis.rules.base`).

Files that do not parse yield a single ``REP000`` finding rather than
aborting the scan, so one broken file cannot hide findings in the rest of
the tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from .rules.base import RULE_REGISTRY, Finding, Rule
from .suppressions import scan_suppressions

__all__ = [
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "discover_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "select_rules",
]

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}

#: Path components that anchor dotted module names (see :func:`module_name_for`).
_PACKAGE_ROOTS = ("repro", "benchmarks", "tests")


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name of ``path``.

    Anchors at the last ``repro``/``benchmarks``/``tests`` component so both
    real files (``src/repro/des/core.py`` -> ``repro.des.core``) and the
    virtual paths used by fixture tests (``src/repro/des/snippet.py``) map
    into the scopes the domain rules are gated on.  Falls back to the bare
    stem when no anchor is present.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] in _PACKAGE_ROOTS:
            dotted = [p for p in parts[index:] if p != "__init__"]
            return ".".join(dotted)
    return parts[-1] if parts else ""


@dataclass
class ModuleContext:
    """Everything a rule may want to know about the file under scan."""

    path: Path
    source: str
    tree: ast.AST
    module: str = ""
    #: Source split into lines (1-indexed via ``line(n)``), for rules that
    #: need the raw text of a flagged line.
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.module:
            self.module = module_name_for(self.path)
        if not self.lines:
            self.lines = self.source.splitlines()

    def line(self, number: int) -> str:
        """Text of physical line ``number`` (1-indexed; ``""`` out of range)."""
        if 1 <= number <= len(self.lines):
            return self.lines[number - 1]
        return ""

    def in_package(self, *packages: str) -> bool:
        """Whether the module lives in (or under) any of ``packages``."""
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False


@dataclass
class LintReport:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Count of findings silenced by ``# repro: noqa`` comments.
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        """Process exit code: 0 clean, 1 findings."""
        return 0 if self.clean else 1


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand ``paths`` into the sorted list of ``.py`` files to scan.

    Directories are walked recursively (skipping caches and VCS internals);
    explicit file arguments are taken as-is so callers can lint generated
    or oddly named files.
    """
    seen = set()
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Type[Rule]]:
    """Resolve ``--select``/``--ignore`` prefixes against the registry.

    Both lists hold rule-id prefixes (``REP1`` selects the whole determinism
    family, ``REP103`` one rule).  ``select`` defaults to everything;
    ``ignore`` wins over ``select``.  Unknown prefixes raise ``ValueError``
    so typos fail loudly instead of silently scanning nothing.
    """

    def normalise(prefixes: Optional[Sequence[str]], label: str) -> List[str]:
        if not prefixes:
            return []
        cleaned = [prefix.strip().upper() for prefix in prefixes if prefix.strip()]
        for prefix in cleaned:
            if not any(rule_id.startswith(prefix) for rule_id in RULE_REGISTRY):
                raise ValueError(f"--{label} prefix {prefix!r} matches no registered rule")
        return cleaned

    selected = normalise(select, "select")
    ignored = normalise(ignore, "ignore")
    chosen: List[Type[Rule]] = []
    for rule_id, cls in RULE_REGISTRY.items():
        if selected and not any(rule_id.startswith(prefix) for prefix in selected):
            continue
        if any(rule_id.startswith(prefix) for prefix in ignored):
            continue
        chosen.append(cls)
    return chosen


class LintEngine:
    """Runs a set of rules over files and aggregates the findings."""

    def __init__(self, rules: Optional[Sequence[Type[Rule]]] = None) -> None:
        #: Rule classes instantiated fresh for every scanned file.
        self.rule_classes: List[Type[Rule]] = (
            list(rules) if rules is not None else list(RULE_REGISTRY.values())
        )

    # -- single-file entry points ----------------------------------------

    def lint_source(self, source: str, path: Path) -> List[Finding]:
        """Lint one file's ``source`` as if it lived at ``path``.

        This is the fixture-test entry point: tests hand in snippets under
        virtual paths like ``src/repro/des/snippet.py`` to exercise the
        scope-gated rules without touching the working tree.
        """
        findings, _suppressed = self._lint_source_counted(source, path)
        return findings

    def _lint_source_counted(self, source: str, path: Path) -> Tuple[List[Finding], int]:
        path_text = str(path)
        try:
            tree = ast.parse(source, filename=path_text)
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            col = getattr(exc, "offset", None) or 0
            message = getattr(exc, "msg", None) or str(exc)
            finding = Finding("REP000", f"file does not parse: {message}", line, col, path_text)
            return [finding], 0

        ctx = ModuleContext(path=path, source=source, tree=tree)
        rules = [cls() for cls in self.rule_classes]
        rules = [rule for rule in rules if rule.applies_to(ctx)]
        if not rules:
            return [], 0

        dispatch: Dict[type, List[Rule]] = {}
        for rule in rules:
            rule.start(ctx)
            for node_type in rule.node_types:
                dispatch.setdefault(node_type, []).append(rule)

        raw: List[Finding] = []
        if dispatch:
            for node in ast.walk(tree):
                subscribers = dispatch.get(type(node))
                if subscribers:
                    for rule in subscribers:
                        raw.extend(rule.visit(node, ctx))
        for rule in rules:
            raw.extend(rule.finish(ctx))

        suppressions = scan_suppressions(source)
        findings: List[Finding] = []
        suppressed = 0
        for finding in raw:
            if suppressions.is_suppressed(finding.rule, finding.line):
                suppressed += 1
                continue
            findings.append(finding.relocate(path_text))
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings, suppressed

    # -- tree entry point -------------------------------------------------

    def run(self, paths: Sequence[Path]) -> LintReport:
        """Lint every ``.py`` file under ``paths`` and aggregate a report."""
        report = LintReport()
        for file_path in discover_files(paths):
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                report.findings.append(
                    Finding("REP000", f"file is unreadable: {exc}", 1, 0, str(file_path))
                )
                report.files_scanned += 1
                continue
            findings, suppressed = self._lint_source_counted(source, file_path)
            report.findings.extend(findings)
            report.suppressed += suppressed
            report.files_scanned += 1
        return report


def lint_paths(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Convenience wrapper: resolve rules, build an engine, run it."""
    return LintEngine(select_rules(select, ignore)).run(list(paths))


def lint_source(source: str, path: "Path | str") -> List[Finding]:
    """Convenience wrapper used heavily by the fixture tests."""
    return LintEngine().lint_source(source, Path(path))
