"""In-source suppression comments for ``repro lint``.

A finding is silenced by a trailing comment on the flagged line::

    value = seed + index  # repro: noqa REP103  -- pinned by golden fixtures

``# repro: noqa`` with no identifiers silences *every* rule on that line;
``# repro: noqa REP103`` (or a comma/space separated list,
``# repro: noqa REP103, REP201``) silences only the named rules.  Anything
after the identifier list is free-form justification text and is ignored.

The namespaced marker deliberately differs from ruff/flake8's bare
``# noqa`` so the two tools never swallow each other's findings.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Optional

__all__ = ["SuppressionIndex", "scan_suppressions"]

#: Matches the marker and captures the (possibly empty) rule-id list.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa\b"  # the namespaced marker
    r"((?:[\s,]+REP\d+)*)",  # optional rule ids, comma/space separated
    re.IGNORECASE,
)
_RULE_ID = re.compile(r"REP\d+", re.IGNORECASE)

#: Suppress every rule on the line (blanket ``# repro: noqa``).
_ALL: FrozenSet[str] = frozenset({"*"})


class SuppressionIndex:
    """Per-file map from line number to the rule ids suppressed there."""

    __slots__ = ("_by_line",)

    def __init__(self, by_line: Dict[int, FrozenSet[str]]) -> None:
        self._by_line = by_line

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is silenced on ``line``."""
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return rules is _ALL or rule_id.upper() in rules

    def __len__(self) -> int:
        return len(self._by_line)


def _parse_marker(text: str) -> Optional[FrozenSet[str]]:
    """Rule ids suppressed by the marker in ``text`` (one source line)."""
    match = _NOQA.search(text)
    if match is None:
        return None
    ids = _RULE_ID.findall(match.group(1))
    if not ids:
        return _ALL
    return frozenset(rule_id.upper() for rule_id in ids)


def scan_suppressions(source: str) -> SuppressionIndex:
    """Build the :class:`SuppressionIndex` for one file's source text.

    The scan is line-based: a marker anywhere on a physical line suppresses
    findings reported *on that line*.  This matches how every rule reports
    (at the offending node's ``lineno``) and keeps the scan independent of
    the tokenizer, so even files with later syntax errors can carry
    suppressions.
    """
    by_line: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:
            continue
        rules = _parse_marker(text)
        if rules is not None:
            by_line[number] = rules
    return SuppressionIndex(by_line)
