"""Static analysis for the repro codebase: the ``repro lint`` engine.

This package is a small, dependency-free AST linter whose rules encode the
repository's *domain* invariants — the properties generic linters cannot
know about, each grounded in a real past bug:

=======  =====================  ==================================================
id       name                   guards against
=======  =====================  ==================================================
REP101   nondeterministic-rng   global ``random``/``np.random`` state in runtime code
REP102   wall-clock-read        ``time.time()``/``datetime.now()`` leaking into results
REP103   seed-arithmetic        ``seed + i`` child-stream derivation (the PR 1 bug)
REP201   unpicklable-task       lambdas/closures handed to sweep backends (the PR 3 bug)
REP301   missing-slots          unslotted classes in the hot DES modules
REP302   slots-subclass-dict    subclasses silently reintroducing ``__dict__``
REP401   des-yield-protocol     processes yielding non-events / registered uncalled
REP501   frozen-spec-mutation   attribute writes on frozen specs/configs/tasks
REP601   bare-except            handlers that catch KeyboardInterrupt/SystemExit
REP602   swallowed-error        broad handlers that silently discard errors
REP701   constant-retry-sleep   retry loops sleeping a fixed delay (no backoff)
=======  =====================  ==================================================

``REP000`` marks files that fail to parse.  Findings are silenced in
source with ``# repro: noqa`` or ``# repro: noqa REP103`` trailing
comments (:mod:`.suppressions`).  The CLI entry point is
``repro lint [PATHS] [--format text|json|github] [--select ...]``.
"""

from .engine import (
    LintEngine,
    LintReport,
    ModuleContext,
    discover_files,
    lint_paths,
    lint_source,
    module_name_for,
    select_rules,
)
from .reporting import FORMATS, format_report
from .rules import RULE_REGISTRY, Finding, Rule, register_rule, rule_catalogue
from .suppressions import SuppressionIndex, scan_suppressions

__all__ = [
    "FORMATS",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "RULE_REGISTRY",
    "Rule",
    "SuppressionIndex",
    "discover_files",
    "format_report",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register_rule",
    "rule_catalogue",
    "scan_suppressions",
    "select_rules",
]
