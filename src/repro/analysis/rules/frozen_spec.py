"""Frozen-spec rule: REP501 (attribute mutation of frozen config objects).

:class:`~repro.experiments.pipeline.ExperimentSpec`,
:class:`~repro.simulation.simulator.SimulationConfig` and
:class:`~repro.parallel.engine.SweepTask` are frozen dataclasses on
purpose: a spec is hashed into seeds, serialised to JSON provenance blocks
and shipped to workers, so mutating one after construction desynchronises
those views.  The blessed way to vary a spec is ``dataclasses.replace``
(which re-runs validation); the only legitimate direct writes are the
``object.__setattr__(self, ...)`` coercions inside ``__post_init__``.

Static type inference is out of scope for this linter, so the rule is
name-based: it flags attribute assignment on variables that are
conventionally specs/configs/tasks (``spec``, ``run_spec``, ``config``,
``task`` …) and any ``object.__setattr__`` whose target is not ``self``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .base import Finding, Rule, register_rule

__all__ = ["FrozenSpecMutationRule"]

#: Variable names that conventionally hold frozen spec/config/task objects.
_SPEC_NAME = re.compile(r"(^|_)(spec|config|cfg|task)$")


def _spec_target(target: ast.AST) -> Optional[str]:
    """Name of the spec-like object if ``target`` is ``<specvar>.<attr>``."""
    if not isinstance(target, ast.Attribute):
        return None
    obj = target.value
    if isinstance(obj, ast.Name) and _SPEC_NAME.search(obj.id):
        return obj.id
    return None


@register_rule
class FrozenSpecMutationRule(Rule):
    id = "REP501"
    name = "frozen-spec-mutation"
    rationale = (
        "Specs/configs/tasks are frozen dataclasses hashed into seeds and "
        "provenance; mutate them only via dataclasses.replace."
    )
    node_types = (ast.Assign, ast.AugAssign, ast.Call)

    def visit(self, node: ast.AST, ctx) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_setattr(node)
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            name = _spec_target(target)
            if name is not None:
                yield Finding(
                    self.id,
                    f"attribute assignment on spec-like object {name!r}; "
                    "frozen specs are varied with dataclasses.replace "
                    f"(replace({name}, {target.attr}=...))",
                    target.lineno,
                    target.col_offset,
                )

    def _check_setattr(self, node: ast.Call) -> Iterator[Finding]:
        if self.dotted(node.func) != "object.__setattr__" or not node.args:
            return
        target = node.args[0]
        if isinstance(target, ast.Name) and target.id == "self":
            return
        described = self.dotted(target) or "<expression>"
        yield Finding(
            self.id,
            f"object.__setattr__ on {described!r} bypasses a frozen "
            "dataclass's immutability outside its own __post_init__; use "
            "dataclasses.replace",
            node.lineno,
            node.col_offset,
        )
