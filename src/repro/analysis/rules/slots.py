"""Slots-integrity rules: REP301 (missing slots), REP302 (subclass __dict__).

The PR 4 throughput work made the DES kernel's per-event objects slotted:
a simulation allocates one :class:`~repro.des.events.Event` (or subclass)
per message hop, so instance ``__dict__`` allocation is a measurable share
of runtime and memory.  Two ways that invariant regresses silently:

* a new class lands in one of the hot modules without ``__slots__``
  (REP301) — the object works, it is just several times bigger and slower
  to allocate;
* a subclass of a slotted class forgets its own ``__slots__`` declaration
  (REP302) — Python then quietly gives *instances of the subclass* a
  ``__dict__`` again, undoing the base class's optimisation for exactly
  the objects that matter.

Both rules accept ``__slots__`` assignments and ``@dataclass(slots=True)``;
exception/enum/protocol classes are exempt (slots are meaningless or
harmful there).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Finding, Rule, register_rule

__all__ = ["MissingSlotsRule", "SlottedSubclassDictRule", "HOT_MODULES", "KNOWN_SLOTTED"]

#: Modules whose classes are allocated on the per-message hot path.
HOT_MODULES = frozenset(
    {
        "repro.des.events",
        "repro.des.process",
        "repro.des.monitor",
        "repro.des.rng",
        "repro.simulation.components",
        "repro.simulation.message",
        "repro.simulation.vectorized_replay",
    }
)

#: Slotted classes of the DES kernel and validation simulator whose
#: subclasses must re-declare ``__slots__`` (REP302).  Kept as names
#: because the linter sees one file at a time.
KNOWN_SLOTTED = frozenset(
    {
        "Event",
        "Timeout",
        "AbsoluteTimeout",
        "Initialize",
        "ConditionValue",
        "Condition",
        "AllOf",
        "AnyOf",
        "Process",
        "Request",
        "PriorityRequest",
        "Release",
        "StorePut",
        "StoreGet",
        "ContainerPut",
        "ContainerGet",
        "Monitor",
        "TimeWeightedMonitor",
        "TraceRecord",
        "Tracer",
        "VariateStream",
        "VariateGenerator",
        "RandomStreams",
        "ServiceCenterSim",
        "LatencySink",
        "Message",
    }
)

#: Base-class names that make slots pointless or wrong.
_EXEMPT_BASE_SUFFIXES = ("Exception", "Error", "Warning")
_EXEMPT_BASES = frozenset(
    {"Enum", "IntEnum", "StrEnum", "Flag", "Protocol", "ABC", "NamedTuple", "TypedDict"}
)


def _base_names(node: ast.ClassDef) -> Iterator[str]:
    for base in node.bases:
        name = Rule.dotted(base)
        if name:
            yield name.rsplit(".", 1)[-1]


def _is_exempt(node: ast.ClassDef) -> bool:
    for name in _base_names(node):
        if name in _EXEMPT_BASES or name.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    """Whether the class body assigns ``__slots__`` or uses dataclass slots."""
    for stmt in node.body:
        targets = ()
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = (stmt.target,)
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and Rule.call_name(decorator) == "dataclass":
            for keyword in decorator.keywords:
                if (
                    keyword.arg == "slots"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    return False


@register_rule
class MissingSlotsRule(Rule):
    id = "REP301"
    name = "missing-slots"
    rationale = (
        "Classes in the hot DES/simulation modules are allocated per message "
        "hop; an instance __dict__ there costs memory and throughput."
    )
    node_types = (ast.ClassDef,)

    def applies_to(self, ctx) -> bool:
        return ctx.module in HOT_MODULES

    def visit(self, node: ast.ClassDef, ctx) -> Iterator[Finding]:
        if _is_exempt(node) or _declares_slots(node):
            return
        yield Finding(
            self.id,
            f"class {node.name!r} in hot module {ctx.module} lacks __slots__ "
            "(declare __slots__ or use @dataclass(slots=True))",
            node.lineno,
            node.col_offset,
        )


@register_rule
class SlottedSubclassDictRule(Rule):
    id = "REP302"
    name = "slots-subclass-dict"
    rationale = (
        "A subclass of a slotted class without its own __slots__ silently "
        "reintroduces the per-instance __dict__ the base class removed."
    )
    node_types = (ast.ClassDef,)

    def applies_to(self, ctx) -> bool:
        return ctx.in_package("repro.des", "repro.simulation")

    def visit(self, node: ast.ClassDef, ctx) -> Iterator[Finding]:
        if _is_exempt(node) or _declares_slots(node):
            return
        slotted_bases = [name for name in _base_names(node) if name in KNOWN_SLOTTED]
        if not slotted_bases:
            return
        yield Finding(
            self.id,
            f"class {node.name!r} subclasses slotted {slotted_bases[0]!r} but "
            "declares no __slots__, reintroducing a per-instance __dict__ "
            "(add __slots__ = (...) — empty is fine)",
            node.lineno,
            node.col_offset,
        )
