"""DES-protocol rule: REP401 (process generators must yield events).

The event kernel (:class:`repro.des.core.Environment`) drives *process
generators*: functions registered with ``env.process(fn(...))`` that
``yield`` :class:`~repro.des.events.Event` objects to wait on.  Two easy
mistakes produce simulations that hang or silently do nothing:

* yielding a non-event (a bare ``yield``, a number, a string) — the kernel
  cannot subscribe a callback to a constant, so the process never resumes;
* registering the function object instead of calling it
  (``env.process(worker)`` instead of ``env.process(worker())``) — nothing
  runs, and with no error the run just deadlocks at time 0.

The rule finds every ``env.process(...)`` registration in the module,
collects the names of the registered generator functions, and then checks
each such function's ``yield`` statements.  Yields of calls, names and
awaitable compositions are accepted (the value's type cannot be proven
statically); only provably wrong yields — constants and bare yields — are
flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from .base import Finding, Rule, register_rule

__all__ = ["DesYieldProtocolRule"]


def _is_env_process(node: ast.Call) -> bool:
    """Whether ``node`` is an ``<...>.env.process(...)`` / ``env.process(...)`` call."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "process"):
        return False
    receiver = Rule.dotted(func.value)
    return receiver == "env" or receiver.endswith(".env")


def _own_yields(fn: ast.FunctionDef) -> Iterator[ast.Yield]:
    """Yield statements belonging to ``fn`` itself (not to nested defs)."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Yield):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class DesYieldProtocolRule(Rule):
    id = "REP401"
    name = "des-yield-protocol"
    rationale = (
        "A DES process that yields a non-event (or is registered uncalled) "
        "never resumes, deadlocking the simulation with no error."
    )
    node_types = (ast.Call,)

    def start(self, ctx) -> None:
        # Pre-pass: names of generator functions registered as processes.
        self._process_names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_env_process(node) and node.args:
                registered = node.args[0]
                if isinstance(registered, ast.Call):
                    name = self.call_name(registered)
                    if name:
                        self._process_names.add(name)

    def visit(self, node: ast.Call, ctx) -> Iterator[Finding]:
        if not _is_env_process(node) or not node.args:
            return
        registered = node.args[0]
        if isinstance(registered, (ast.Name, ast.Attribute)):
            name = self.dotted(registered)
            yield Finding(
                self.id,
                f"env.process({name}) registers the function object, not a "
                f"generator; call it: env.process({name}(...))",
                registered.lineno,
                registered.col_offset,
            )

    def finish(self, ctx) -> Iterator[Finding]:
        if not self._process_names:
            return
        functions: List[Tuple[str, ast.FunctionDef]] = [
            (node.name, node)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.FunctionDef) and node.name in self._process_names
        ]
        for name, fn in functions:
            for stmt in _own_yields(fn):
                if stmt.value is None:
                    yield Finding(
                        self.id,
                        f"bare yield in DES process {name!r}; processes must "
                        "yield Event objects (e.g. env.timeout(...))",
                        stmt.lineno,
                        stmt.col_offset,
                    )
                elif isinstance(stmt.value, ast.Constant):
                    yield Finding(
                        self.id,
                        f"DES process {name!r} yields the constant "
                        f"{stmt.value.value!r}; the kernel can only wait on "
                        "Event objects (e.g. env.timeout(...))",
                        stmt.lineno,
                        stmt.col_offset,
                    )
