"""Rule framework: findings, the rule base class and the rule registry.

A rule is a small AST checker encoding one of the repository's correctness
invariants (see :mod:`repro.analysis` for the catalogue).  Rules are
*instantiated per file* so they may keep per-file state, and participate in
one shared tree walk:

* ``node_types`` names the AST node classes the engine dispatches to
  :meth:`Rule.visit` — one walk serves every rule (clang-tidy style
  matcher dispatch, not one full walk per rule);
* :meth:`Rule.start` runs before the walk (pre-pass state, e.g. collecting
  the registered DES process names);
* :meth:`Rule.finish` runs after the walk for whole-module checks.

Register a rule with :func:`register_rule`; the engine instantiates every
registered rule whose :meth:`Rule.applies_to` accepts the module under
scan.  Rule identifiers are ``REP<family><nn>`` — family 1 determinism,
2 pickle safety, 3 slots integrity, 4 DES protocol, 5 frozen specs,
6 error hygiene, 7 robustness.  ``REP000`` is reserved for unparseable
files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Type

__all__ = [
    "Finding",
    "Rule",
    "RULE_REGISTRY",
    "register_rule",
    "rule_catalogue",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    message: str
    line: int
    col: int = 0
    path: str = ""

    def relocate(self, path: str) -> "Finding":
        """Return the finding stamped with the file it came from."""
        return Finding(self.rule, self.message, self.line, self.col, path)

    def as_dict(self) -> Dict[str, object]:
        """Plain dictionary for the JSON reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class of all lint rules.  Subclasses are stateful per file."""

    #: Unique identifier, e.g. ``"REP101"``.
    id: str = ""
    #: Short kebab-case name, e.g. ``"nondeterministic-rng"``.
    name: str = ""
    #: One-line rationale shown by ``repro lint --list-rules`` and the README.
    rationale: str = ""
    #: AST node classes dispatched to :meth:`visit` during the shared walk.
    node_types: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx) -> bool:
        """Whether this rule scans ``ctx`` (a :class:`~repro.analysis.engine.ModuleContext`)."""
        return True

    def start(self, ctx) -> None:
        """Pre-walk hook: initialise per-file state, run pre-passes."""

    def visit(self, node: ast.AST, ctx) -> Iterator[Finding]:
        """Handle one dispatched node; yield findings."""
        return iter(())

    def finish(self, ctx) -> Iterator[Finding]:
        """Post-walk hook for whole-module checks; yield findings."""
        return iter(())

    # -- helpers shared by several rules ----------------------------------

    @staticmethod
    def call_name(node: ast.Call) -> str:
        """Terminal name of a call target: ``a.b.C(...)`` and ``C(...)`` -> ``"C"``."""
        func = node.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""

    @staticmethod
    def dotted(node: ast.AST) -> str:
        """Dotted text of a Name/Attribute chain (best effort, ``""`` otherwise)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return ""


#: Registered rule classes by id, in registration (family) order.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to :data:`RULE_REGISTRY`."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs non-empty id and name")
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def rule_catalogue() -> List[Dict[str, str]]:
    """``{"id", "name", "rationale"}`` rows for docs and ``--list-rules``."""
    return [
        {"id": cls.id, "name": cls.name, "rationale": cls.rationale}
        for cls in RULE_REGISTRY.values()
    ]
