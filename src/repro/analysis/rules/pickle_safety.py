"""Pickle-safety rule: REP201 (unpicklable task functions).

Every parallel backend except the in-process serial one ships
:class:`~repro.parallel.engine.SweepTask` objects through :mod:`pickle`
(process pools, the socket work queue, SSH workers).  Lambdas and functions
defined inside another function cannot be pickled, so a sweep that works
under ``--backend serial`` dies with an opaque ``PicklingError`` the moment
it is scaled out — the exact bug fixed in PR 3.  This rule rejects such
callables at the point they are handed to the sweep machinery.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .base import Finding, Rule, register_rule

__all__ = ["UnpicklableTaskRule"]

#: ``engine.map(...)`` / ``backend.submit(...)`` style receivers.
_SWEEP_RECEIVER_HINTS = ("engine", "backend", "pool")
#: Attribute methods that accept a task function on those receivers.
_SWEEP_METHODS = frozenset({"map", "submit", "run", "imap", "starmap"})


def _function_argument(node: ast.Call) -> Optional[ast.AST]:
    """The task-function argument of a sweep call: first positional or ``fn=``."""
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return None


@register_rule
class UnpicklableTaskRule(Rule):
    id = "REP201"
    name = "unpicklable-task"
    rationale = (
        "Lambdas and nested functions cannot be pickled, so they break every "
        "multi-process sweep backend (the PR 3 bug); pass a module-level "
        "function."
    )
    node_types = (ast.Call,)

    def start(self, ctx) -> None:
        # Pre-pass: names of functions defined inside another function —
        # these are closures and unpicklable just like lambdas.
        self._nested_defs: Set[str] = set()
        for outer in ast.walk(ctx.tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for stmt in ast.walk(outer):
                    if stmt is outer:
                        continue
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._nested_defs.add(stmt.name)

    def _is_sweep_call(self, node: ast.Call) -> bool:
        name = self.call_name(node)
        if name == "SweepTask":
            return True
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _SWEEP_METHODS:
            receiver = self.dotted(func.value).lower()
            return any(hint in receiver for hint in _SWEEP_RECEIVER_HINTS)
        return False

    def visit(self, node: ast.Call, ctx) -> Iterator[Finding]:
        if not self._is_sweep_call(node):
            return
        argument = _function_argument(node)
        if argument is None:
            return
        if isinstance(argument, ast.Lambda):
            yield Finding(
                self.id,
                "lambda passed as a sweep task function cannot be pickled by "
                "the process/socket/ssh backends; use a module-level function",
                argument.lineno,
                argument.col_offset,
            )
            return
        name = ""
        if isinstance(argument, ast.Name):
            name = argument.id
        if name and name in self._nested_defs:
            yield Finding(
                self.id,
                f"nested function {name!r} passed as a sweep task cannot be "
                "pickled by the process/socket/ssh backends; move it to "
                "module level",
                argument.lineno,
                argument.col_offset,
            )
