"""Error-hygiene rules: REP601 (bare except), REP602 (swallowed errors).

A long-running sweep that swallows exceptions does not fail — it produces
*wrong numbers*: a worker that drops a task on the floor shifts every
subsequent seed-to-task pairing, and a silently ignored analysis error
leaves stale values in the report.  Two patterns are rejected:

* ``except:`` with no exception type (REP601) — also catches
  ``KeyboardInterrupt``/``SystemExit``, making runs unkillable; name the
  exceptions (or ``except Exception`` if the handler genuinely re-raises
  or records the error);
* ``except Exception: pass`` (REP602) — a broad catch whose body does
  nothing discards errors invisibly.  Narrow pass-only handlers
  (``except OSError: pass`` around best-effort cleanup) stay legal; it is
  the *broad + silent* combination that hides bugs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Finding, Rule, register_rule

__all__ = ["BareExceptRule", "SwallowedErrorRule"]

#: Exception types broad enough that a pass-only handler hides real bugs.
_BROAD_TYPES = frozenset({"Exception", "BaseException"})


def _is_silent(body) -> bool:
    """Whether a handler body does nothing (only ``pass``/``...``/docstring)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare ``...``
        return False
    return True


@register_rule
class BareExceptRule(Rule):
    id = "REP601"
    name = "bare-except"
    rationale = (
        "except: also catches KeyboardInterrupt/SystemExit, making sweeps "
        "unkillable; name the exception types."
    )
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx) -> Iterator[Finding]:
        if node.type is None:
            yield Finding(
                self.id,
                "bare except catches KeyboardInterrupt and SystemExit; name "
                "the exception types (or use except Exception)",
                node.lineno,
                node.col_offset,
            )


@register_rule
class SwallowedErrorRule(Rule):
    id = "REP602"
    name = "swallowed-error"
    rationale = (
        "except Exception: pass discards errors invisibly, so sweeps emit "
        "wrong numbers instead of failing."
    )
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx) -> Iterator[Finding]:
        if node.type is None:
            return  # REP601's finding; don't double-report
        names = []
        if isinstance(node.type, ast.Tuple):
            names = [self.dotted(element) for element in node.type.elts]
        else:
            names = [self.dotted(node.type)]
        if not any(name in _BROAD_TYPES for name in names):
            return
        if _is_silent(node.body):
            yield Finding(
                self.id,
                "broad exception handler silently discards the error; handle "
                "it, log it, or narrow the exception type",
                node.lineno,
                node.col_offset,
            )
