"""Determinism rules: REP101 (RNG), REP102 (wall clock), REP103 (seed math).

The whole experiment pipeline promises bit-identical reruns for a given
seed (the golden-trace and golden-CLI fixtures enforce it end to end).
That promise dies quietly the moment simulation code draws from global RNG
state, reads the wall clock, or derives child seeds by arithmetic:

* global ``random.*`` / ``np.random.*`` calls share hidden state across
  components, so adding one draw anywhere perturbs every stream after it;
* wall-clock reads make output depend on when the run happened;
* ``seed + i`` style derivation produces overlapping / correlated child
  streams — the exact bug fixed in PR 1 by moving every seed derivation to
  ``numpy.random.SeedSequence.spawn``.

REP101 and REP102 are gated to the runtime packages (``repro.des``,
``repro.simulation``, ``repro.workload``, ``repro.parallel``); monotonic
timers (``time.monotonic``/``perf_counter``) stay legal because they only
feed progress reporting, never results.  REP103 applies everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Finding, Rule, register_rule

__all__ = ["NondeterministicRngRule", "WallClockRule", "SeedArithmeticRule"]

#: Packages whose code runs inside (or feeds) a simulation.
RUNTIME_PACKAGES = ("repro.des", "repro.simulation", "repro.workload", "repro.parallel")

#: ``np.random`` attributes that are deterministic stream *constructors*
#: rather than draws from the hidden global generator.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "SeedSequence",
        "default_rng",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Wall-clock calls that leak real time into results.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)


class _RuntimeScopedRule(Rule):
    """Shared gate: only scan the simulation-runtime packages."""

    def applies_to(self, ctx) -> bool:
        return ctx.in_package(*RUNTIME_PACKAGES)


@register_rule
class NondeterministicRngRule(_RuntimeScopedRule):
    id = "REP101"
    name = "nondeterministic-rng"
    rationale = (
        "Global random.* / np.random.* state breaks seeded reproducibility; "
        "use repro.des.rng streams spawned from a SeedSequence."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx) -> Iterator[Finding]:
        dotted = self.dotted(node.func)
        if not dotted:
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2:
            yield Finding(
                self.id,
                f"call to global-state {dotted}(); draw from a per-component "
                "repro.des.rng stream instead",
                node.lineno,
                node.col_offset,
            )
            return
        if len(parts) >= 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
            attr = parts[2]
            if attr not in _ALLOWED_NP_RANDOM:
                yield Finding(
                    self.id,
                    f"call to legacy global-state {dotted}(); construct an "
                    "explicit Generator from a SeedSequence instead",
                    node.lineno,
                    node.col_offset,
                )
            elif attr == "default_rng" and not node.args and not node.keywords:
                yield Finding(
                    self.id,
                    f"{dotted}() without a seed is entropy-seeded; pass a seed "
                    "or SeedSequence",
                    node.lineno,
                    node.col_offset,
                )


@register_rule
class WallClockRule(_RuntimeScopedRule):
    id = "REP102"
    name = "wall-clock-read"
    rationale = (
        "Wall-clock reads make simulation output depend on when it ran; "
        "use the simulation clock (env.now) or time.monotonic for timers."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx) -> Iterator[Finding]:
        dotted = self.dotted(node.func)
        if dotted in _WALL_CLOCK:
            yield Finding(
                self.id,
                f"wall-clock read {dotted}() in simulation-runtime code; use "
                "env.now (simulated time) or time.monotonic (elapsed time)",
                node.lineno,
                node.col_offset,
            )


def _operand_name(node: ast.AST) -> str:
    """Variable-ish name of a BinOp operand (``""`` for literals/calls)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


@register_rule
class SeedArithmeticRule(Rule):
    id = "REP103"
    name = "seed-arithmetic"
    rationale = (
        "seed + i style derivation yields overlapping child streams (the "
        "PR 1 bug); spawn children with numpy.random.SeedSequence.spawn."
    )
    node_types = (ast.BinOp,)

    _OPS = (ast.Add, ast.Sub, ast.Mult)

    def visit(self, node: ast.BinOp, ctx) -> Iterator[Finding]:
        if not isinstance(node.op, self._OPS):
            return
        for operand in (node.left, node.right):
            name = _operand_name(operand)
            if name and (name.lower() == "seed" or name.lower().endswith("_seed")):
                yield Finding(
                    self.id,
                    f"arithmetic on {name!r} derives correlated child seeds; "
                    "use SeedSequence.spawn (or spawn_seeds) instead",
                    node.lineno,
                    node.col_offset,
                )
                return
