"""Robustness rule: REP701 (constant-delay retry loop).

A retry loop that sleeps a fixed delay between attempts hammers a dead
peer on a fixed period, synchronises every worker into retry convoys, and
never backs off under sustained failure — the exact failure mode the
chaos harness provokes by killing workers mid-run.  The distributed layer
(``repro.parallel``) and the service (``repro.service``) therefore route
every retry wait through :func:`repro.parallel.retry.backoff_delays`
(capped exponential backoff with deterministic jitter), and this rule
keeps it that way:

* ``time.sleep(0.5)`` inside a loop — a literal constant delay — is
  flagged;
* ``time.sleep(delay)`` is flagged when ``delay`` is never (re)assigned
  anywhere in the loop: a name that does not change between iterations is
  a constant delay wearing a variable's name;
* ``time.sleep(delays[attempt])``, ``for delay in delays: ...
  time.sleep(delay)`` and other per-iteration values stay legal — the
  delay genuinely varies, which is what backoff looks like.

Only the innermost loop around a sleep is inspected, so one offending
sleep produces one finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Union

from .base import Finding, Rule, register_rule

__all__ = ["ConstantRetrySleepRule"]

_LOOP_TYPES = (ast.While, ast.For, ast.AsyncFor)
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _own_nodes(loop: Union[ast.While, ast.For]) -> Iterator[ast.AST]:
    """Nodes belonging to ``loop`` itself: nested loops and functions pruned.

    Nested loops are visited on their own dispatch (innermost wins), and a
    function defined inside a loop runs on its own schedule — neither
    belongs to this loop's per-iteration control flow.
    """
    stack: List[ast.AST] = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _LOOP_TYPES + _SCOPE_TYPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class ConstantRetrySleepRule(Rule):
    id = "REP701"
    name = "constant-retry-sleep"
    rationale = (
        "a retry loop sleeping a fixed delay hammers dead peers in sync; "
        "use capped exponential backoff with jitter "
        "(repro.parallel.retry.backoff_delays)"
    )
    node_types = _LOOP_TYPES

    def applies_to(self, ctx) -> bool:
        # Scoped to the layers that talk to unreliable peers; a fixture
        # sleep in a test or a benchmark pacing loop is not a retry.
        return ctx.in_package("repro.parallel", "repro.service")

    def visit(self, node: ast.AST, ctx) -> Iterator[Finding]:
        assigned: Set[str] = set()
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for target in ast.walk(node.target):
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
        sleeps: List[ast.Call] = []
        for child in _own_nodes(node):
            if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
                assigned.add(child.id)
            elif isinstance(child, ast.Call) and self.dotted(child.func) == "time.sleep":
                if child.args:
                    sleeps.append(child)
        for call in sleeps:
            arg = call.args[0]
            if isinstance(arg, ast.Constant):
                detail = f"time.sleep({arg.value!r})"
            elif isinstance(arg, ast.Name) and arg.id not in assigned:
                detail = f"time.sleep({arg.id}) with {arg.id!r} never reassigned in the loop"
            else:
                continue
            yield Finding(
                self.id,
                f"retry loop sleeps a constant delay ({detail}); use capped "
                "exponential backoff with jitter "
                "(repro.parallel.retry.backoff_delays)",
                call.lineno,
                call.col_offset,
            )
