"""Built-in rule modules.  Importing this package populates the registry.

Rule families (the leading digit of the id):

1. determinism — :mod:`.determinism` (REP101, REP102, REP103)
2. pickle safety — :mod:`.pickle_safety` (REP201)
3. slots integrity — :mod:`.slots` (REP301, REP302)
4. DES protocol — :mod:`.des_protocol` (REP401)
5. frozen specs — :mod:`.frozen_spec` (REP501)
6. error hygiene — :mod:`.error_hygiene` (REP601, REP602)
7. robustness — :mod:`.robustness` (REP701)
"""

from .base import RULE_REGISTRY, Finding, Rule, register_rule, rule_catalogue
from . import (
    determinism,
    pickle_safety,
    slots,
    des_protocol,
    frozen_spec,
    error_hygiene,
    robustness,
)

__all__ = [
    "RULE_REGISTRY",
    "Finding",
    "Rule",
    "register_rule",
    "rule_catalogue",
    "determinism",
    "pickle_safety",
    "slots",
    "des_protocol",
    "frozen_spec",
    "error_hygiene",
    "robustness",
]
