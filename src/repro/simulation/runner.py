"""Replication management and analysis-vs-simulation comparison.

The paper validates the analytical model by overlaying its predictions on
simulation results (Figures 4–7).  :func:`run_replications` runs several
independent simulation replications and aggregates them;
:func:`validate_against_analysis` runs both the model and the simulator for
the same configuration and reports the relative error.

Replication seeds are derived from the master seed with
:func:`repro.parallel.spawn_seeds` (``numpy.random.SeedSequence.spawn``),
*not* ``seed + i``: additive seeds made adjacent sweep points share
almost-identical replication seed sets, correlating what should be
independent measurements.  Because the seed list is a pure function of the
master seed, running the replications serially (``jobs=1``, the default),
across a process pool (``jobs>1``) or through any other execution backend of
:class:`repro.parallel.SweepEngine` (``backend="socket"`` for the TCP work
queue) produces bit-identical :class:`SimulationResult`\\ s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..cluster.system import MultiClusterSystem
from ..core.model import AnalyticalModel, ModelConfig, PerformanceReport
from ..errors import ConfigurationError
from ..parallel import Backend, SweepEngine, SweepJournal, spawn_seeds
from ..stats.compare import relative_error
from ..stats.intervals import ConfidenceInterval, mean_confidence_interval
from ..workload.destinations import DestinationPolicy
from .components import LatencySink
from .simulator import MultiClusterSimulator, SimulationConfig, SimulationResult

__all__ = [
    "ReplicatedResult",
    "ValidationPoint",
    "replication_configs",
    "run_simulation_task",
    "run_message_trace_task",
    "aggregate_replications",
    "run_replications",
    "validate_against_analysis",
]


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of several independent simulation replications."""

    replications: int
    mean_latency_s: float
    latency_interval: Optional[ConfidenceInterval]
    per_replication: List[SimulationResult]

    @property
    def mean_latency_ms(self) -> float:
        """Mean latency over replications in milliseconds."""
        return self.mean_latency_s * 1e3


@dataclass(frozen=True)
class ValidationPoint:
    """Analysis and simulation side by side for one configuration."""

    analysis: PerformanceReport
    simulation: ReplicatedResult

    @property
    def analysis_latency_ms(self) -> float:
        """Model-predicted latency (ms)."""
        return self.analysis.mean_latency_ms

    @property
    def simulation_latency_ms(self) -> float:
        """Simulated latency (ms)."""
        return self.simulation.mean_latency_ms

    @property
    def relative_error(self) -> float:
        """``|analysis − simulation| / simulation``."""
        return relative_error(self.analysis.mean_latency_s, self.simulation.mean_latency_s)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for tables."""
        return {
            "num_clusters": self.analysis.num_clusters,
            "message_bytes": self.analysis.message_bytes,
            "analysis_latency_ms": self.analysis_latency_ms,
            "simulation_latency_ms": self.simulation_latency_ms,
            "relative_error": self.relative_error,
        }


def replication_configs(config: SimulationConfig, replications: int) -> List[SimulationConfig]:
    """Per-replication configurations with seeds spawned from the master seed.

    Seeds come from ``SeedSequence(config.seed).spawn(replications)`` so
    every replication — and every replication of every *other* master seed —
    gets a decorrelated random stream.
    """
    if replications < 1:
        raise ConfigurationError(f"replications must be >= 1, got {replications!r}")
    seeds = spawn_seeds(config.seed, replications)
    return [replace(config, seed=seed) for seed in seeds]


def run_simulation_task(
    system: MultiClusterSystem,
    config: SimulationConfig,
    destination_policy: Optional[DestinationPolicy] = None,
    arrival_factory=None,
) -> SimulationResult:
    """Run one simulation — the picklable unit of work shipped to pool workers.

    ``destination_policy`` and ``arrival_factory`` carry a scenario's
    non-default workload (hotspot/localized destinations, bursty arrivals);
    both must be picklable so socket/SSH workers can reconstruct them.
    """
    return MultiClusterSimulator(system, config, destination_policy, arrival_factory).run()


class _TraceRecordingSink(LatencySink):
    """Online-mode sink that still captures per-message timing rows.

    The online sink deliberately does not retain :class:`Message` objects;
    this subclass appends each measured message's ``(ident, created.hex(),
    completed.hex())`` row as it is recorded, so ``run_message_trace_task``
    can serve trace rows from bounded-memory runs too.  Statistics and event
    flow are untouched — the rows match the array path's exactly.
    """

    __slots__ = ("trace_rows",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trace_rows: List[tuple] = []

    def record(self, message) -> None:
        super().record(message)
        if self.completed > self.warmup_messages:
            self.trace_rows.append(
                (message.ident, message.created_at.hex(), message.completed_at.hex())
            )


def run_message_trace_task(
    system: MultiClusterSystem,
    config: SimulationConfig,
    destination_policy: Optional[DestinationPolicy] = None,
    arrival_factory=None,
) -> List[tuple]:
    """Run one simulation and return its exact per-message timings.

    Each measured message becomes ``(ident, created_at.hex(),
    completed_at.hex())`` — ``float.hex()`` so the timings survive any
    serialization loss-free.  This is the unit of work behind the
    golden-trace bit-identity tests (per-message equality across execution
    backends, not just equality of means); being a library function, it is
    importable by socket/SSH worker daemons that cannot unpickle
    test-module closures.

    Both stats modes are supported: ``"array"`` reads the rows from the
    sink's retained messages (bit-identical legacy path); ``"online"``
    swaps in a :class:`_TraceRecordingSink` that captures the rows as they
    stream past without retaining the messages.  The sink never influences
    event ordering or random draws, so the rows are identical either way.
    """
    simulator = MultiClusterSimulator(system, config, destination_policy, arrival_factory)
    if config.stats_mode != "array":
        # The processors bind ``self.sink.record`` lazily (at their first
        # resume inside run()), so replacing the sink here — constructing it
        # consumes no event ids — keeps the run byte-identical.
        simulator.sink = _TraceRecordingSink(
            simulator.env,
            config.num_messages,
            int(config.num_messages * config.warmup_fraction),
            stats_mode=config.stats_mode,
            batch_count=config.batch_count,
            histogram_range=config.histogram_range,
        )
        simulator.run()
        return simulator.sink.trace_rows
    simulator.run()
    return [
        (m.ident, m.created_at.hex(), m.completed_at.hex()) for m in simulator.sink.messages
    ]


def aggregate_replications(results: Sequence[SimulationResult]) -> ReplicatedResult:
    """Fold per-replication results into a :class:`ReplicatedResult`."""
    results = list(results)
    latencies = np.array([r.mean_latency_s for r in results])
    interval = mean_confidence_interval(latencies) if len(results) >= 2 else None
    return ReplicatedResult(
        replications=len(results),
        mean_latency_s=float(latencies.mean()),
        latency_interval=interval,
        per_replication=results,
    )


def run_replications(
    system: MultiClusterSystem,
    config: SimulationConfig,
    replications: int = 3,
    destination_policy: Optional[DestinationPolicy] = None,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> ReplicatedResult:
    """Run ``replications`` independent simulations and aggregate them.

    ``jobs`` (or a pre-configured ``engine``) fans the replications out
    across worker processes; ``backend`` selects the execution substrate
    (``"serial"``, ``"pool"``, ``"socket"`` or a
    :class:`~repro.parallel.Backend` instance such as an
    :class:`~repro.parallel.SSHBackend`).  The results are bit-identical
    for every choice because the per-replication seeds depend only on
    ``config.seed``.  ``checkpoint`` journals completed replications so a
    killed run resumes without repeating them.

    The run is a one-point campaign of the declarative pipeline
    (:mod:`repro.experiments.pipeline`): ``config`` is the point's master
    configuration, the replication seeds are spawned from ``config.seed``
    exactly as before, and execution flows through the same
    :class:`~repro.experiments.pipeline.ExperimentRunner` policy layer as
    every other driver.
    """
    # Imported lazily: the pipeline builds on this module's task helpers.
    from ..experiments.pipeline import (
        ExperimentRunner,
        PlanPoint,
        build_simulation_plan,
    )

    point = PlanPoint(
        index=0,
        num_clusters=system.num_clusters,
        message_bytes=config.message_bytes,
        generation_rate=config.generation_rate,
    )
    plan = build_simulation_plan(
        [(point, system, config)],
        replications=replications,
        label=lambda _point, i, rep_config: f"replication[{i}] seed={rep_config.seed}",
        destination_policy=destination_policy,
    )
    runner = ExperimentRunner(engine=engine, jobs=jobs, backend=backend, checkpoint=checkpoint)
    return runner.run_simulation_plan(plan)[0]


def validate_against_analysis(
    system: MultiClusterSystem,
    model_config: ModelConfig,
    sim_config: Optional[SimulationConfig] = None,
    replications: int = 1,
    jobs: Optional[int] = 1,
    engine: Optional[SweepEngine] = None,
    backend: Optional[Union[str, Backend]] = None,
    checkpoint: Optional[Union[str, SweepJournal]] = None,
) -> ValidationPoint:
    """Evaluate the analytical model and the simulator for the same setup.

    ``sim_config`` defaults to a configuration consistent with
    ``model_config`` (same architecture, message size and rate).
    """
    if sim_config is None:
        sim_config = SimulationConfig(
            architecture=model_config.architecture,
            message_bytes=model_config.message_bytes,
            generation_rate=model_config.generation_rate,
        )
    else:
        mismatches = []
        if sim_config.architecture != model_config.architecture:
            mismatches.append("architecture")
        if sim_config.message_bytes != model_config.message_bytes:
            mismatches.append("message_bytes")
        if sim_config.generation_rate != model_config.generation_rate:
            mismatches.append("generation_rate")
        if mismatches:
            raise ConfigurationError(
                f"simulation and model configurations disagree on {mismatches}"
            )

    analysis = AnalyticalModel(system, model_config).evaluate()
    simulation = run_replications(
        system, sim_config, replications,
        jobs=jobs, engine=engine, backend=backend, checkpoint=checkpoint,
    )
    return ValidationPoint(analysis=analysis, simulation=simulation)
