"""Event-loop-free evaluation of fixed traces and eligible closed-loop runs.

The virtual-FIFO insight behind :class:`~repro.simulation.components.ServiceCenterSim`
(``depart = max(arrival, previous depart) + service``) means that once a
centre's arrival sequence is known, its departures are a Lindley recurrence
over a plain array — no event loop required.  This module exploits that twice:

* :func:`replay_trace` evaluates a fixed :class:`~repro.workload.messages.WorkloadTrace`
  without the DES kernel.  Every local (single-hop) message's departure is
  computed by a vectorized whole-array recurrence (:func:`_fifo_departures`);
  the remote three-hop pipeline, whose per-centre arrival order is coupled
  through the shared ECN1 centres, runs through a *lean* heap of plain
  tuples that reproduces the kernel's ``(time, priority, event-id)`` pop
  order exactly.  Service times come from whole-run NumPy pool draws that
  consume the identical generator bit streams as the DES's per-message
  draws, so the result — per-message latencies included — is
  ``float.hex()``-exact against :class:`~repro.simulation.trace_simulator.TraceDrivenSimulator`.

* :class:`VectorizedClosedLoopSimulator` evaluates a closed-loop run
  (the :class:`~repro.simulation.simulator.MultiClusterSimulator` workload)
  when the workload is *state independent*: renewal arrivals, no
  ``failures`` block, default uniform destinations.  It pre-binds the
  identical batched :class:`~repro.des.rng.VariateStream` draws and drives
  the real service centres and latency sink from a flat event loop with no
  generator/process machinery, producing bit-identical
  :class:`~repro.simulation.simulator.SimulationResult` objects.

Eligibility is explicit — :func:`vectorization_blockers` /
:func:`can_vectorize` — and the task entry point
(:func:`run_vectorized_simulation_task`) *refuses* ineligible workloads
with a :class:`~repro.errors.ConfigurationError` instead of silently
computing something else; the pipeline's ``engine_mode="auto"`` falls back
to the DES task in that case.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.system import MultiClusterSystem
from ..des.core import Environment
from ..des.events import Timeout
from ..des.rng import RandomStreams
from ..errors import ConfigurationError, SimulationError
from ..queueing.distributions import Deterministic, Distribution, Exponential
from ..stats.intervals import ConfidenceInterval, batch_means
from ..stats.sinks import OnlineMonitor
from ..workload.destinations import DestinationPolicy, UniformDestinations
from ..workload.messages import WorkloadTrace
from .components import LatencySink
from .message import Message
from .simulator import (
    MultiClusterSimulator,
    SimulationConfig,
    SimulationResult,
    collect_simulation_result,
)
from .trace_simulator import (
    TraceDrivenSimulator,
    TraceSimulationConfig,
    TraceSimulationResult,
)

__all__ = [
    "replay_trace",
    "VectorizedClosedLoopSimulator",
    "vectorization_blockers",
    "can_vectorize",
    "run_vectorized_simulation_task",
    "run_vectorized_point",
]


# ---------------------------------------------------------------------------
# The vectorized FIFO recurrence
# ---------------------------------------------------------------------------


def _fifo_departures_scalar(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Reference scalar Lindley recurrence (exact DES arithmetic)."""
    departures = np.empty(len(arrivals))
    next_free = 0.0
    out = departures.tolist()
    for i, (arrival, service) in enumerate(zip(arrivals.tolist(), services.tolist())):
        start = next_free
        if start < arrival:
            start = arrival
        next_free = start + service
        out[i] = next_free
    return np.asarray(out)


def _fifo_departures(arrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Whole-array FIFO departure times, bit-exact to the scalar recurrence.

    The busy-period *segmentation* is found with a vectorized cummax over
    the arrival-minus-cumulative-service slack; each segment's departures
    are then an ``np.cumsum`` seeded with the segment's opening arrival.
    ``cumsum`` on a 1-D float64 array accumulates sequentially, so within a
    segment the additions associate exactly as the DES's
    ``depart = prev_depart + service`` chain.  Because the cummax slack
    comparison itself regroups additions (and is therefore only *almost*
    always the true segmentation), the boundaries are verified afterwards
    against the computed departures: a restart at ``i`` is valid iff
    ``arrivals[i] >= departures[i-1]`` and a continuation iff
    ``arrivals[i] <= departures[i-1]`` (a tie yields the same float either
    way).  On the rare verification failure the exact scalar recurrence is
    used instead — the fast path is never silently wrong.
    """
    n = arrivals.shape[0]
    if n == 0:
        return np.empty(0)
    prefix = np.empty(n)
    prefix[0] = 0.0
    np.cumsum(services[:-1], out=prefix[1:])
    slack = arrivals - prefix
    peaks = np.maximum.accumulate(slack)
    restart = np.empty(n, dtype=bool)
    restart[0] = True
    # A new busy period starts where the arrival overtakes every earlier
    # departure, i.e. where the slack reaches a new running maximum.
    restart[1:] = slack[1:] >= peaks[:-1]

    departures = np.empty(n)
    starts = np.flatnonzero(restart)
    bounds = np.append(starts, n)
    seg_len = np.diff(bounds)
    single = starts[seg_len == 1]
    departures[single] = arrivals[single] + services[single]
    for seg_start, seg_end in zip(starts[seg_len > 1], bounds[1:][seg_len > 1]):
        chain = np.empty(seg_end - seg_start + 1)
        chain[0] = arrivals[seg_start]
        chain[1:] = services[seg_start:seg_end]
        departures[seg_start:seg_end] = np.cumsum(chain)[1:]

    if n > 1:
        prev = departures[:-1]
        valid = np.where(restart[1:], arrivals[1:] >= prev, arrivals[1:] <= prev)
        if not valid.all():
            return _fifo_departures_scalar(arrivals, services)
    return departures


# ---------------------------------------------------------------------------
# Trace replay
# ---------------------------------------------------------------------------

# Lean-heap event kinds.  Entries are plain ``(time, eid, kind, index)``
# tuples; ``eid`` replicates the DES kernel's event-id counter, so ties in
# time resolve exactly as they do in the event queue.  (Every scheduled
# event of a trace replay is NORMAL priority — the URGENT Initialize events
# pop back-to-back and are folded into their creating pop — so the
# priority column of the kernel's ``(time, priority, eid)`` key is constant
# and can be dropped from the heap tuples.)
_LOCAL_DONE = 1  # precomputed ICN1 departure: local message completes
_HOP1 = 2  # source-ECN1 departure of a remote message
_HOP2 = 3  # ICN2 departure of a remote message
_HOP3 = 4  # destination-ECN1 departure: remote message completes


def _service_pool(
    distribution: Distribution, rng, count: int
) -> Tuple[np.ndarray, List[float]]:
    """Pre-draw a centre's entire service-time sequence in one NumPy call.

    A block draw of ``n`` exponentials consumes the identical generator bit
    stream as ``n`` successive scalar draws (the invariant
    :class:`~repro.des.rng.VariateStream` is built on), so the pool equals
    the sequence the DES would have served.  Returns the array (for the
    vectorized recurrence / busy-time cumsum) and its ``tolist()`` (for the
    scalar hop loop).
    """
    if isinstance(distribution, Exponential):
        pool = rng.rng.exponential(distribution.mean_value, count)
    elif isinstance(distribution, Deterministic):
        pool = np.full(count, float(distribution.value))
    else:  # pragma: no cover - trace configs only build the two above
        pool = np.asarray([distribution.sample(rng) for _ in range(count)])
    return pool, pool.tolist()


def _sequential_sum(pool: np.ndarray) -> float:
    """Left-to-right float sum, matching repeated ``+=`` accumulation."""
    if pool.shape[0] == 0:
        return 0.0
    return float(np.cumsum(pool)[-1])


def replay_trace(
    system: MultiClusterSystem,
    trace: WorkloadTrace,
    config: Optional[TraceSimulationConfig] = None,
) -> TraceSimulationResult:
    """Evaluate a trace replay without running the event loop.

    Takes exactly the inputs of
    :class:`~repro.simulation.trace_simulator.TraceDrivenSimulator` and
    returns a ``float.hex()``-identical
    :class:`~repro.simulation.trace_simulator.TraceSimulationResult` —
    same per-message latencies in the same completion order, same
    batch-means interval, same utilizations and makespan — for every seed,
    architecture and stats mode (the golden-trace suite pins this).
    """
    # Constructing the simulator reuses its validation and centre/stream
    # setup; VariateStreams are lazy, so no random bits are consumed.
    sim = TraceDrivenSimulator(system, trace, config)
    cfg = sim.config
    entries = trace.entries  # read-only view; the trace is never mutated
    n = len(entries)
    num_clusters = len(sim.icn1)

    times = np.asarray([entry.time for entry in entries])
    delays = np.empty(n)
    delays[0] = times[0]
    delays[1:] = np.diff(times)
    if np.any(delays < 0):
        raise SimulationError("trace entries must be sorted by time")
    # Message creation times accumulate exactly as the injector's clock
    # does: the DES advances by ``delay`` per wave, so created_at is the
    # sequential cumsum of deltas, not the raw entry time.
    created = np.cumsum(delays)

    src = np.asarray([entry.source[0] for entry in entries])
    dst = np.asarray([entry.destination[0] for entry in entries])
    is_local = src == dst

    # Per-centre whole-run service pools, in begin (= draw) order.
    icn1_pools: List[np.ndarray] = []
    # Per-message ICN1 departure time (meaningful for local messages only):
    # flattened so the hot loop does one list lookup per local completion.
    ldone_time = np.zeros(n)
    ecn1_pools: List[np.ndarray] = []
    ecn1_serve: List[List[float]] = []
    for c in range(num_clusters):
        local_mask = is_local & (src == c)
        pool, _ = _service_pool(
            sim.icn1[c].service_distribution, sim.icn1[c].rng, int(local_mask.sum())
        )
        icn1_pools.append(pool)
        # Local messages hit their cluster's ICN1 in trace order at their
        # creation times — a fully static arrival sequence, evaluated with
        # the whole-array recurrence.
        ldone_time[local_mask] = _fifo_departures(created[local_mask], pool)
        remote_count = int(((~is_local) & ((src == c) | (dst == c))).sum())
        pool, serve = _service_pool(
            sim.ecn1[c].service_distribution, sim.ecn1[c].rng, remote_count
        )
        ecn1_pools.append(pool)
        ecn1_serve.append(serve)
    remote_total = int((~is_local).sum())
    icn2_pool, icn2_serve = _service_pool(
        sim.icn2.service_distribution, sim.icn2.rng, remote_total
    )

    # Injector waves: a wave is a maximal run of entries at one clock value.
    wave_starts = np.flatnonzero(delays > 0)
    if delays[0] <= 0:
        wave_starts = np.concatenate(([0], wave_starts))
    wave_bounds = np.append(wave_starts, n).tolist()
    num_waves = len(wave_starts)

    created_list = created.tolist()
    src_list = src.tolist()
    dst_list = dst.tolist()
    local_list = is_local.tolist()
    ldone_list = ldone_time.tolist()

    # Mutable per-centre virtual-queue state for the remote pipeline.
    ecn1_next_free = [0.0] * num_clusters
    ecn1_cursor = [0] * num_clusters
    icn2_next_free = 0.0
    icn2_cursor = 0

    heap: List[Tuple[float, int, int, int]] = []
    push = heappush
    pop = heappop

    latencies: List[float] = []
    lat_append = latencies.append
    monitor = sim._monitor  # OnlineMonitor in online mode, else None
    record = None if monitor is None else monitor.record
    now = 0.0

    # Injector wave cursor.  Each wave's timeout heap key is fully known one
    # wave ahead (its event id is assigned while the previous wave is
    # processed) and the timeouts are totally ordered, so instead of flowing
    # through the heap they are merged against its top — the comparison is
    # the kernel's ``(time, priority, eid)`` order with the constant
    # priority dropped.
    eid = 1  # eid 0: the injector process's Initialize event
    next_wave = 0
    next_wave_time = created_list[0]
    if delays[0] > 0:
        next_wave_eid = eid
        eid = 2
    else:
        # No timeout precedes wave 0: the injector begins it directly at its
        # own Initialize pop.  The sentinel id only ever orders against an
        # empty heap, so no real event id is consumed.
        next_wave_eid = 0

    while heap or next_wave >= 0:
        if next_wave >= 0 and (
            not heap
            or next_wave_time < heap[0][0]
            or (next_wave_time == heap[0][0] and next_wave_eid < heap[0][1])
        ):
            at = now = next_wave_time
            start_idx = wave_bounds[next_wave]
            end_idx = wave_bounds[next_wave + 1]
            # The injector first creates one Initialize per same-time entry,
            # then either the next wave's timeout or its own finish event;
            # only the counter order matters for the unscheduled ids, so
            # they are plain increments.
            eid += end_idx - start_idx
            next_wave += 1
            if next_wave < num_waves:
                next_wave_time = created_list[end_idx]
                next_wave_eid = eid
            else:
                next_wave = -1
            eid += 1  # next-wave timeout, or the injector's process-finish
            # The Initializes (URGENT) then pop back-to-back, each consuming
            # one first-hop event id and beginning its message.
            for index in range(start_idx, end_idx):
                hop_eid = eid
                eid += 1
                if local_list[index]:
                    push(heap, (ldone_list[index], hop_eid, _LOCAL_DONE, index))
                else:
                    cluster = src_list[index]
                    start = ecn1_next_free[cluster]
                    if start < at:
                        start = at
                    cursor = ecn1_cursor[cluster]
                    ecn1_cursor[cluster] = cursor + 1
                    depart = start + ecn1_serve[cluster][cursor]
                    ecn1_next_free[cluster] = depart
                    push(heap, (depart, hop_eid, _HOP1, index))
            continue

        at, _, kind, index = pop(heap)
        now = at
        if kind == _HOP1:
            hop_eid = eid
            eid += 1
            start = icn2_next_free
            if start < at:
                start = at
            depart = start + icn2_serve[icn2_cursor]
            icn2_cursor += 1
            icn2_next_free = depart
            push(heap, (depart, hop_eid, _HOP2, index))
        elif kind == _HOP2:
            hop_eid = eid
            eid += 1
            cluster = dst_list[index]
            start = ecn1_next_free[cluster]
            if start < at:
                start = at
            cursor = ecn1_cursor[cluster]
            ecn1_cursor[cluster] = cursor + 1
            depart = start + ecn1_serve[cluster][cursor]
            ecn1_next_free[cluster] = depart
            push(heap, (depart, hop_eid, _HOP3, index))
        else:  # _HOP3 / _LOCAL_DONE: the message completes (as _deliver does)
            if record is None:
                lat_append(at - created_list[index])
            else:
                record(at, at - created_list[index])
            eid += 1  # the delivery process's finish event

    # Result assembly mirrors TraceDrivenSimulator.run() term for term.
    ci: Optional[ConfidenceInterval] = None
    if monitor is None:
        if len(latencies) >= cfg.batch_count:
            ci = batch_means(latencies, num_batches=cfg.batch_count)
        mean_latency = sum(latencies) / len(latencies)
    else:
        if monitor.count >= cfg.batch_count:
            ci = monitor.batch_means_interval(cfg.batch_count)
        mean_latency = monitor.mean()

    now = float(now)
    utilizations: Dict[str, float] = {}
    # Busy time accumulates one += per departure in begin order; the
    # sequential cumsum reproduces that association exactly.  At the end of
    # a replay every admitted message has departed, so the pools are the
    # full busy ledger.
    for c in range(num_clusters):
        busy = _sequential_sum(icn1_pools[c])
        utilizations[f"icn1[{c}]"] = 0.0 if now <= 0 else min(busy / now, 1.0)
    for c in range(num_clusters):
        busy = _sequential_sum(ecn1_pools[c])
        utilizations[f"ecn1[{c}]"] = 0.0 if now <= 0 else min(busy / now, 1.0)
    busy = _sequential_sum(icn2_pool)
    utilizations["icn2"] = 0.0 if now <= 0 else min(busy / now, 1.0)

    # Open-loop replays drain completely: every injected message completes,
    # so the counters are the trace's own totals.
    return TraceSimulationResult(
        mean_latency_s=float(mean_latency),
        confidence_interval=ci,
        completed_messages=n,
        injected_messages=n,
        remote_fraction=remote_total / n,
        makespan_s=now,
        utilizations=utilizations,
    )


# ---------------------------------------------------------------------------
# Eligibility
# ---------------------------------------------------------------------------


def vectorization_blockers(
    config: Optional[SimulationConfig] = None,
    destination_policy: Optional[DestinationPolicy] = None,
    arrival_factory=None,
    failures=None,
) -> List[str]:
    """Reasons a closed-loop workload cannot take the vectorized engine.

    The engine pre-binds every random stream up front, which is only valid
    when the workload is state independent: renewal arrivals (each
    inter-arrival draw i.i.d., no hidden modulating state), no failure
    injection, and the default uniform destination policy.  Returns an
    empty list when eligible; each string names one blocker.  The check is
    deliberately conservative — e.g. a ``destination_policy`` *factory*
    (rather than a built :class:`UniformDestinations` instance) is refused
    even if it would build a uniform policy — because refusing an eligible
    workload costs only speed, while accepting an ineligible one would be
    silently wrong.
    """
    reasons: List[str] = []
    if failures is None and config is not None:
        failures = config.failures
    if failures is not None:
        reasons.append("failure injection (a 'failures' block) requires the DES engine")
    if destination_policy is not None and type(destination_policy) is not UniformDestinations:
        reasons.append(
            f"destination policy {type(destination_policy).__name__} is not the "
            "default uniform policy"
        )
    if arrival_factory is not None:
        try:
            probe = arrival_factory(1.0)
        except Exception as exc:  # conservative: unknown factory -> DES
            reasons.append(f"arrival factory could not be probed ({exc!r})")
        else:
            if not getattr(probe, "renewal", False):
                reasons.append(
                    f"arrival process {type(probe).__name__} is not a renewal "
                    "process (state carried between draws)"
                )
    return reasons


def can_vectorize(
    config: Optional[SimulationConfig] = None,
    destination_policy: Optional[DestinationPolicy] = None,
    arrival_factory=None,
    failures=None,
) -> bool:
    """``True`` when :func:`vectorization_blockers` finds no blocker."""
    return not vectorization_blockers(config, destination_policy, arrival_factory, failures)


# ---------------------------------------------------------------------------
# Closed-loop lean engine
# ---------------------------------------------------------------------------

_ARRIVE = 0
_DONE_LOCAL = 1
_DONE_HOP1 = 2
_DONE_HOP2 = 3
_DONE_HOP3 = 4


class VectorizedClosedLoopSimulator:
    """Closed-loop run of a state-independent workload, without the kernel.

    Builds on a plain :class:`~repro.simulation.simulator.MultiClusterSimulator`
    *construction* — the same service centres, latency sink, batched
    variate streams and destination choosers — but replaces the
    generator/process machinery with a flat pop loop over the environment's
    event queue.  Hop progress rides in each event's otherwise-unused
    ``_value`` slot; event ids are consumed at exactly the points the
    kernel would consume them, so every heap key, every random draw and
    therefore every statistic is bit-identical to the DES run.  Eligibility
    (:func:`vectorization_blockers`) is enforced at construction — an
    ineligible workload raises :class:`~repro.errors.ConfigurationError`
    rather than silently degrading.
    """

    __slots__ = ("_sim",)

    def __init__(
        self,
        system: MultiClusterSystem,
        config: Optional[SimulationConfig] = None,
        destination_policy: Optional[DestinationPolicy] = None,
        arrival_factory=None,
    ) -> None:
        config = config if config is not None else SimulationConfig()
        reasons = vectorization_blockers(config, destination_policy, arrival_factory)
        if reasons:
            raise ConfigurationError(
                "workload is not vectorizable: " + "; ".join(reasons)
            )
        self._sim = MultiClusterSimulator.__new__(MultiClusterSimulator)
        # Reuse the DES simulator's construction wholesale (centres, sink,
        # streams) but skip _start_processors: the lean loop plays the
        # processors' part itself.
        sim = self._sim
        sim.system = system
        sim.config = config
        sim.cluster_sizes = [c.num_processors for c in system.clusters]
        if sum(sim.cluster_sizes) < 2:
            raise ConfigurationError("simulation needs at least two processors")
        sim.destination_policy = (
            destination_policy
            if destination_policy is not None
            else UniformDestinations(sim.cluster_sizes)
        )
        sim.arrival_factory = arrival_factory
        sim._streams = RandomStreams(config.seed)
        sim.faults = None
        sim.env = Environment()
        sim._build_service_centers()
        warmup = int(config.num_messages * config.warmup_fraction)
        sim.sink = LatencySink(
            sim.env,
            config.num_messages,
            warmup,
            stats_mode=config.stats_mode,
            batch_count=config.batch_count,
            histogram_range=config.histogram_range,
        )
        sim._message_counter = 0

    def run(self) -> SimulationResult:
        """Drive the run to completion and collect the standard result."""
        sim = self._sim
        env = sim.env
        config = sim.config
        queue = env._queue
        next_eid = env._eid.__next__
        sink = sim.sink
        done = sink.done
        record = sink.record
        icn1 = sim.icn1
        ecn1 = sim.ecn1
        icn2_begin = sim.icn2.begin
        message_bytes = config.message_bytes

        # Per-processor workload state, in the kernel's start order.  Each
        # processor's Initialize event consumes one event id at creation;
        # its first think-time Timeout is then created at the Initialize
        # pop, which at t=0 happens before any other event — so the draws
        # and event ids land exactly where _start_processors puts them.
        sources: List[Tuple[int, int]] = []
        arrivals: List[Callable[[], float]] = []
        choosers: List[Callable[[], Tuple[int, int]]] = []
        for cluster_idx, cluster in enumerate(sim.system.clusters):
            rate = cluster.processor_type.scaled_rate(config.generation_rate)
            for proc_idx in range(cluster.num_processors):
                next_eid()  # the processor's Initialize event
                source = (cluster_idx, proc_idx)
                arrival_rng = sim._streams.stream(f"arrivals-{cluster_idx}-{proc_idx}")
                dest_rng = sim._streams.stream(f"destination-{cluster_idx}-{proc_idx}")
                if sim.arrival_factory is None:
                    arrivals.append(arrival_rng.exponential_rate_stream(rate))
                else:
                    arrivals.append(sim.arrival_factory(rate).sampler(arrival_rng))
                choosers.append(sim.destination_policy.chooser(source, dest_rng))
                sources.append(source)
        for proc, draw in enumerate(arrivals):
            Timeout(env, draw(), (_ARRIVE, proc, None))

        while True:
            at, _, _, event = heappop(queue)
            env._now = at
            if event is done:
                break
            kind, proc, message = event._value
            if kind == _ARRIVE:
                destination = choosers[proc]()
                source = sources[proc]
                message = Message(
                    ident=sim._message_counter,
                    source=source,
                    destination=destination,
                    size_bytes=message_bytes,
                    created_at=at,
                )
                sim._message_counter += 1
                if destination[0] == source[0]:
                    hop = icn1[source[0]].begin(message)
                    hop._value = (_DONE_LOCAL, proc, message)
                else:
                    hop = ecn1[source[0]].begin(message)
                    hop._value = (_DONE_HOP1, proc, message)
            elif kind == _DONE_HOP1:
                event.callbacks[0](event)  # source ECN1 departure bookkeeping
                hop = icn2_begin(message)
                hop._value = (_DONE_HOP2, proc, message)
            elif kind == _DONE_HOP2:
                event.callbacks[0](event)
                hop = ecn1[message.destination[0]].begin(message)
                hop._value = (_DONE_HOP3, proc, message)
            else:  # _DONE_HOP3 / _DONE_LOCAL: the message completes
                event.callbacks[0](event)
                message.completed_at = at
                record(message)
                Timeout(env, arrivals[proc](), (_ARRIVE, proc, None))

        return collect_simulation_result(
            sink, [*icn1, *ecn1, sim.icn2], env.now, config, faults=None
        )


def run_vectorized_simulation_task(
    system: MultiClusterSystem,
    config: SimulationConfig,
    destination_policy: Optional[DestinationPolicy] = None,
    arrival_factory=None,
) -> SimulationResult:
    """Vectorized twin of :func:`~repro.simulation.runner.run_simulation_task`.

    Same signature (and module-level, so socket/pool workers can unpickle
    it); raises :class:`~repro.errors.ConfigurationError` for workloads
    that fail the eligibility check instead of silently falling back —
    routing policy (``engine_mode``) lives in the pipeline, not here.
    """
    return VectorizedClosedLoopSimulator(
        system, config, destination_policy, arrival_factory
    ).run()


def run_vectorized_point(
    system: MultiClusterSystem,
    config: SimulationConfig,
    replications: int,
) -> List[SimulationResult]:
    """Evaluate all replications of one sweep point on the lean engine.

    Replication seeds spawn from ``config.seed`` exactly as
    :func:`~repro.simulation.runner.replication_configs` spawns them for
    the DES path, and each replication pre-binds its whole bit stream up
    front, so the batch is element-for-element identical to the DES
    results for the same point.
    """
    from .runner import replication_configs

    return [
        VectorizedClosedLoopSimulator(system, rep_config).run()
        for rep_config in replication_configs(config, replications)
    ]
