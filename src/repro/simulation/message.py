"""Message records produced by the validation simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Message"]


@dataclass(slots=True)
class Message:
    """A single simulated request/reply interaction.

    Times are simulation seconds; ``None`` until the corresponding event has
    happened.  ``path`` records the names of the service centres visited in
    order, which the integration tests use to assert correct routing.

    The dataclass is slotted: one ``Message`` is allocated per simulated
    request, so dropping the per-instance ``__dict__`` measurably shrinks
    the simulator's allocation footprint.
    """

    ident: int
    source: Tuple[int, int]
    destination: Tuple[int, int]
    size_bytes: float
    created_at: float
    completed_at: Optional[float] = None
    path: List[str] = field(default_factory=list)

    @property
    def is_remote(self) -> bool:
        """Whether source and destination are in different clusters."""
        return self.source[0] != self.destination[0]

    @property
    def latency(self) -> float:
        """End-to-end message latency (raises if not yet completed)."""
        if self.completed_at is None:
            raise ValueError(f"message {self.ident} has not completed yet")
        return self.completed_at - self.created_at

    def __repr__(self) -> str:
        status = "done" if self.completed_at is not None else "pending"
        return (
            f"<Message #{self.ident} {self.source}->{self.destination} "
            f"{self.size_bytes:g}B {status}>"
        )
