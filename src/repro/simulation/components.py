"""Building blocks of the validation simulator.

The simulator mirrors the paper's description of its own validation setup
(§6): each processor generates requests with exponentially distributed
inter-arrival times, destinations are uniform over the other nodes, each
message is time-stamped at generation, and the latency is recorded by a
*sink* when the request completes.  Communication networks are
store-and-forward service centres: a FIFO single server whose service time
is exponentially distributed with the mean given by the §5 network models
(this is exactly the M/M/1 assumption of the analytical model).
"""

from __future__ import annotations

from collections import deque
from typing import Generator, List, Optional

from ..des.core import Environment
from ..des.events import AbsoluteTimeout, Event
from ..des.monitor import Monitor, TimeWeightedMonitor
from ..des.rng import VariateGenerator
from ..errors import SimulationError
from ..queueing.distributions import Distribution
from ..stats.sinks import OnlineMonitor, validate_stats_mode
from .message import Message

__all__ = ["ServiceCenterSim", "LatencySink"]


class ServiceCenterSim:
    """A store-and-forward network as a FIFO single-server queue.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Service-centre name used in message paths and reports (e.g.
        ``"icn1[3]"``, ``"ecn1[0]"``, ``"icn2"``).
    service_distribution:
        Distribution of the per-message service time; the paper uses an
        exponential whose mean is the §5 transmission time.
    rng:
        Independent random stream for this centre's service times.

    Notes
    -----
    The centre is a *virtual* FIFO queue: because a single-server FIFO
    station serves messages in arrival order, each message's departure time
    is fully determined at arrival — ``depart = max(now, previous depart) +
    service_time`` — so one :class:`~repro.des.events.AbsoluteTimeout` per
    visit replaces the request/grant/timeout/release event chain of an
    explicit ``Resource`` (5 events and several callback hops per visit).
    Service times are drawn in arrival order, which for a FIFO queue is
    exactly the grant order of the explicit-resource formulation, so every
    seed reproduces the original per-message latencies bit-for-bit (the
    golden-trace tests assert this).
    """

    __slots__ = (
        "env",
        "name",
        "service_distribution",
        "rng",
        "occupancy",
        "_sample",
        "_next_free",
        "_in_service",
        "_busy_time",
        "_served",
    )

    def __init__(
        self,
        env: Environment,
        name: str,
        service_distribution: Distribution,
        rng: VariateGenerator,
    ) -> None:
        self.env = env
        self.name = name
        self.service_distribution = service_distribution
        self.rng = rng
        #: Time-weighted number of messages present (queued + in service).
        self.occupancy = TimeWeightedMonitor(name=f"{name}.occupancy", start_time=env.now)
        #: Batched per-centre service-time sampler (bit-identical to
        #: per-call ``service_distribution.sample(rng)``).
        self._sample = service_distribution.sampler(rng)
        #: Departure time of the last admitted message (the virtual queue).
        self._next_free = 0.0
        #: (start, service_time) of admitted-but-not-departed messages, in
        #: FIFO order; keeps ``utilization`` exact mid-run.
        self._in_service: deque = deque()
        self._busy_time = 0.0
        self._served = 0

    # -- behaviour ------------------------------------------------------------------

    def begin(self, message: Message) -> AbsoluteTimeout:
        """Admit ``message`` and return the event of its departure.

        This is the hot path: it draws the service time, computes the
        departure time from the virtual queue and schedules a single
        absolute-time event.  Per-visit bookkeeping (occupancy decrement,
        served/busy counters) runs in a callback when the event fires,
        before any waiting process resumes.
        """
        env = self.env
        now = env._now
        occupancy = self.occupancy
        occupancy.update_unchecked(now, occupancy._last_value + 1.0)
        message.path.append(self.name)
        start = self._next_free
        if start < now:
            start = now
        service_time = self._sample()
        depart = start + service_time
        self._next_free = depart
        self._in_service.append((start, service_time))
        event = AbsoluteTimeout(env, depart)
        event.callbacks.append(self._departed)
        return event

    def try_begin(self, message: Message) -> Optional[AbsoluteTimeout]:
        """Admit ``message`` unconditionally (the always-up centre never drops).

        Uniform admission interface shared with
        :class:`~repro.simulation.faults.FaultyServiceCenterSim`, whose drop
        policy may return ``None`` instead of a departure event.
        """
        return self.begin(message)

    def serve(self, message: Message) -> Generator[Event, None, None]:
        """Process generator: pass ``message`` through this service centre.

        Equivalent to ``yield self.begin(message)``; kept for callers that
        compose centres with ``yield from``.
        """
        yield self.begin(message)

    def _departed(self, _event: Event) -> None:
        """Commit one departure (runs as the departure event's callback)."""
        start, service_time = self._in_service.popleft()
        self._busy_time += service_time
        self._served += 1
        occupancy = self.occupancy
        occupancy.update_unchecked(self.env._now, occupancy._last_value - 1.0)

    # -- statistics -----------------------------------------------------------------

    @property
    def served(self) -> int:
        """Number of messages fully served so far."""
        return self._served

    @property
    def busy_time(self) -> float:
        """Cumulative service time of all *departed* messages (seconds)."""
        return self._busy_time

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of time the server has been busy up to ``now``.

        Counts the full service time of every message whose service has
        *started* by ``now`` (matching the explicit-resource formulation,
        which committed the service time at grant), capped at 1.
        """
        horizon = self.env.now if now is None else now
        if horizon <= 0:
            return 0.0
        busy = self._busy_time
        for start, service_time in self._in_service:
            if start > horizon:
                break
            busy += service_time
        return min(busy / horizon, 1.0)

    def mean_occupancy(self, now: Optional[float] = None) -> float:
        """Time-average number of messages at the centre (queue + service)."""
        return self.occupancy.time_average(self.env.now if now is None else now)

    def __repr__(self) -> str:
        return f"<ServiceCenterSim {self.name!r} served={self._served}>"


class LatencySink:
    """Collects completed messages and decides when the run is finished.

    The latency monitors are pluggable :class:`repro.stats.sinks.StatsSink`
    implementations selected by ``stats_mode``:

    * ``"array"`` (default) — array-backed :class:`~repro.des.monitor.Monitor`
      objects plus retention of every completed :class:`Message` (needed for
      per-message traces and exact percentiles); O(n) memory, bit-identical
      to all earlier releases.
    * ``"online"`` — bounded-memory :class:`~repro.stats.sinks.OnlineMonitor`
      accumulators.  The measured count is known up front
      (``target_messages - warmup_messages``), so the overall-latency sink
      pre-sizes its streaming batch-means layout to match the array path;
      completed messages are **not** retained.
    """

    __slots__ = (
        "env",
        "target_messages",
        "warmup_messages",
        "stats_mode",
        "keep_messages",
        "latencies",
        "local_latencies",
        "remote_latencies",
        "completed",
        "messages",
        "done",
    )

    def __init__(
        self,
        env: Environment,
        target_messages: int,
        warmup_messages: int = 0,
        stats_mode: str = "array",
        batch_count: int = 20,
        histogram_range=None,
    ) -> None:
        if target_messages < 1:
            raise SimulationError(f"target_messages must be >= 1, got {target_messages!r}")
        if warmup_messages < 0 or warmup_messages >= target_messages:
            raise SimulationError(
                "warmup_messages must be non-negative and smaller than target_messages"
            )
        validate_stats_mode(stats_mode)
        if histogram_range is not None and stats_mode != "online":
            raise SimulationError(
                "histogram_range only applies to the online sink, "
                f"got stats_mode={stats_mode!r}"
            )
        self.env = env
        self.target_messages = target_messages
        self.warmup_messages = warmup_messages
        self.stats_mode = stats_mode
        if stats_mode == "array":
            self.keep_messages = True
            self.latencies = Monitor("latency")
            self.local_latencies = Monitor("latency.local")
            self.remote_latencies = Monitor("latency.remote")
        else:
            self.keep_messages = False
            measured = target_messages - warmup_messages
            self.latencies = OnlineMonitor(
                "latency",
                batch_count=batch_count if measured >= batch_count else None,
                expected_count=measured if measured >= batch_count else None,
                histogram_range=histogram_range,
            )
            # The split sinks only ever report means; skip the histograms.
            self.local_latencies = OnlineMonitor("latency.local", track_quantiles=False)
            self.remote_latencies = OnlineMonitor("latency.remote", track_quantiles=False)
        self.completed: int = 0
        self.messages: List[Message] = []
        #: Event triggered once ``target_messages`` messages have completed.
        self.done: Event = env.event()

    def record(self, message: Message) -> None:
        """Register a completed message (called by the processor agents)."""
        completed_at = message.completed_at
        if completed_at is None:
            raise SimulationError(f"message {message.ident} recorded before completion")
        self.completed += 1
        if self.completed > self.warmup_messages:
            latency = completed_at - message.created_at
            self.latencies.record(completed_at, latency)
            if message.source[0] != message.destination[0]:
                self.remote_latencies.record(completed_at, latency)
            else:
                self.local_latencies.record(completed_at, latency)
            if self.keep_messages:
                self.messages.append(message)
        if self.completed >= self.target_messages and not self.done.triggered:
            self.done.succeed(self.completed)

    @property
    def measured(self) -> int:
        """Number of messages recorded after the warm-up cut."""
        return self.latencies.count

    def __repr__(self) -> str:
        return f"<LatencySink completed={self.completed}/{self.target_messages}>"
