"""Building blocks of the validation simulator.

The simulator mirrors the paper's description of its own validation setup
(§6): each processor generates requests with exponentially distributed
inter-arrival times, destinations are uniform over the other nodes, each
message is time-stamped at generation, and the latency is recorded by a
*sink* when the request completes.  Communication networks are
store-and-forward service centres: a FIFO single server whose service time
is exponentially distributed with the mean given by the §5 network models
(this is exactly the M/M/1 assumption of the analytical model).
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..des.core import Environment
from ..des.events import Event
from ..des.monitor import Monitor, TimeWeightedMonitor
from ..des.resources import Resource
from ..des.rng import VariateGenerator
from ..errors import SimulationError
from ..queueing.distributions import Distribution
from .message import Message

__all__ = ["ServiceCenterSim", "LatencySink"]


class ServiceCenterSim:
    """A store-and-forward network as a FIFO single-server queue.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Service-centre name used in message paths and reports (e.g.
        ``"icn1[3]"``, ``"ecn1[0]"``, ``"icn2"``).
    service_distribution:
        Distribution of the per-message service time; the paper uses an
        exponential whose mean is the §5 transmission time.
    rng:
        Independent random stream for this centre's service times.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        service_distribution: Distribution,
        rng: VariateGenerator,
    ) -> None:
        self.env = env
        self.name = name
        self.service_distribution = service_distribution
        self.rng = rng
        self.server = Resource(env, capacity=1)
        #: Time-weighted number of messages present (queued + in service).
        self.occupancy = TimeWeightedMonitor(name=f"{name}.occupancy", start_time=env.now)
        self._busy_time = 0.0
        self._served = 0

    # -- behaviour ------------------------------------------------------------------

    def serve(self, message: Message) -> Generator[Event, None, None]:
        """Process generator: pass ``message`` through this service centre."""
        self.occupancy.increment(self.env.now)
        message.path.append(self.name)
        with self.server.request() as req:
            yield req
            service_time = self.service_distribution.sample(self.rng)
            self._busy_time += service_time
            yield self.env.timeout(service_time)
        self.occupancy.decrement(self.env.now)
        self._served += 1

    # -- statistics -----------------------------------------------------------------

    @property
    def served(self) -> int:
        """Number of messages fully served so far."""
        return self._served

    @property
    def busy_time(self) -> float:
        """Cumulative service time dispensed (seconds)."""
        return self._busy_time

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of time the server has been busy up to ``now``."""
        horizon = self.env.now if now is None else now
        if horizon <= 0:
            return 0.0
        return min(self._busy_time / horizon, 1.0)

    def mean_occupancy(self, now: Optional[float] = None) -> float:
        """Time-average number of messages at the centre (queue + service)."""
        return self.occupancy.time_average(self.env.now if now is None else now)

    def __repr__(self) -> str:
        return f"<ServiceCenterSim {self.name!r} served={self._served}>"


class LatencySink:
    """Collects completed messages and decides when the run is finished."""

    def __init__(self, env: Environment, target_messages: int, warmup_messages: int = 0) -> None:
        if target_messages < 1:
            raise SimulationError(f"target_messages must be >= 1, got {target_messages!r}")
        if warmup_messages < 0 or warmup_messages >= target_messages:
            raise SimulationError(
                "warmup_messages must be non-negative and smaller than target_messages"
            )
        self.env = env
        self.target_messages = target_messages
        self.warmup_messages = warmup_messages
        self.latencies = Monitor("latency")
        self.local_latencies = Monitor("latency.local")
        self.remote_latencies = Monitor("latency.remote")
        self.completed: int = 0
        self.messages: List[Message] = []
        #: Event triggered once ``target_messages`` messages have completed.
        self.done: Event = env.event()

    def record(self, message: Message) -> None:
        """Register a completed message (called by the processor agents)."""
        if message.completed_at is None:
            raise SimulationError(f"message {message.ident} recorded before completion")
        self.completed += 1
        if self.completed > self.warmup_messages:
            latency = message.latency
            self.latencies.record(message.completed_at, latency)
            if message.is_remote:
                self.remote_latencies.record(message.completed_at, latency)
            else:
                self.local_latencies.record(message.completed_at, latency)
            self.messages.append(message)
        if self.completed >= self.target_messages and not self.done.triggered:
            self.done.succeed(self.completed)

    @property
    def measured(self) -> int:
        """Number of messages recorded after the warm-up cut."""
        return self.latencies.count

    def __repr__(self) -> str:
        return f"<LatencySink completed={self.completed}/{self.target_messages}>"
