"""Validation simulator: event-driven HMSCS model matching the paper's §6 setup."""

from .components import LatencySink, ServiceCenterSim
from .faults import FaultInjector, FaultSchedule, FaultSpec, FaultyServiceCenterSim
from .message import Message
from .runner import (
    ReplicatedResult,
    ValidationPoint,
    aggregate_replications,
    replication_configs,
    run_replications,
    run_message_trace_task,
    run_simulation_task,
    validate_against_analysis,
)
from .simulator import MultiClusterSimulator, SimulationConfig, SimulationResult
from .trace_simulator import (
    TraceDrivenSimulator,
    TraceSimulationConfig,
    TraceSimulationResult,
)
from .vectorized_replay import (
    VectorizedClosedLoopSimulator,
    can_vectorize,
    replay_trace,
    run_vectorized_point,
    run_vectorized_simulation_task,
    vectorization_blockers,
)

__all__ = [
    "Message",
    "ServiceCenterSim",
    "LatencySink",
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "FaultyServiceCenterSim",
    "MultiClusterSimulator",
    "SimulationConfig",
    "SimulationResult",
    "ReplicatedResult",
    "ValidationPoint",
    "replication_configs",
    "run_simulation_task",
    "run_message_trace_task",
    "aggregate_replications",
    "run_replications",
    "validate_against_analysis",
    "TraceDrivenSimulator",
    "TraceSimulationConfig",
    "TraceSimulationResult",
    "replay_trace",
    "VectorizedClosedLoopSimulator",
    "vectorization_blockers",
    "can_vectorize",
    "run_vectorized_simulation_task",
    "run_vectorized_point",
]
