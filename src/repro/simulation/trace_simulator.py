"""Open-loop, trace-driven simulation of an HMSCS system.

The validation simulator in :mod:`repro.simulation.simulator` is
*closed-loop*: each processor blocks while its request is outstanding
(assumption 4 of the paper).  Real applications are often better described
by a recorded or synthetic *trace* of messages injected at fixed times
regardless of completion — an open-loop workload.  This module replays a
:class:`~repro.workload.messages.WorkloadTrace` through the same
store-and-forward service centres so that:

* the effect of assumption 4 can be quantified (closed vs open loop at the
  same average rate), and
* externally generated traces (e.g. from an application prototype) can be
  evaluated against candidate system configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..cluster.system import MultiClusterSystem
from ..des.core import Environment
from ..des.events import Event
from ..des.rng import RandomStreams
from ..errors import ConfigurationError, SimulationError
from ..network.models import build_network_model
from ..queueing.distributions import Deterministic, Distribution, Exponential
from ..stats.intervals import ConfidenceInterval, batch_means
from ..stats.sinks import STATS_MODES, OnlineMonitor
from ..workload.messages import TraceEntry, WorkloadTrace
from .components import ServiceCenterSim
from .message import Message

__all__ = ["TraceSimulationConfig", "TraceSimulationResult", "TraceDrivenSimulator"]


@dataclass(frozen=True)
class TraceSimulationConfig:
    """Configuration of a trace replay.

    Parameters
    ----------
    architecture:
        ``"non-blocking"`` or ``"blocking"`` (applied to all networks).
    seed:
        Master seed for the service-time streams.
    exponential_service:
        Exponential (paper assumption) vs deterministic service times.
    batch_count:
        Batches for the batch-means confidence interval.
    stats_mode:
        Observation-sink strategy (:data:`repro.stats.sinks.STATS_MODES`):
        ``"array"`` retains every latency (bit-identical legacy behaviour);
        ``"online"`` streams latencies through a bounded-memory
        :class:`~repro.stats.sinks.OnlineMonitor`, so replaying a very long
        trace is bounded by CPU rather than RAM.  Mean and confidence
        interval agree with the array path to ≤ 1e-9 relative error.
    """

    architecture: str = "non-blocking"
    seed: int = 0
    exponential_service: bool = True
    batch_count: int = 20
    stats_mode: str = "array"

    def __post_init__(self) -> None:
        if self.batch_count < 2:
            raise ConfigurationError(f"batch_count must be >= 2, got {self.batch_count!r}")
        if self.stats_mode not in STATS_MODES:
            raise ConfigurationError(
                f"stats_mode must be one of {STATS_MODES}, got {self.stats_mode!r}"
            )


@dataclass(frozen=True)
class TraceSimulationResult:
    """Summary of one trace replay."""

    mean_latency_s: float
    confidence_interval: Optional[ConfidenceInterval]
    completed_messages: int
    injected_messages: int
    remote_fraction: float
    makespan_s: float
    utilizations: Dict[str, float]

    @property
    def mean_latency_ms(self) -> float:
        """Mean message latency in milliseconds."""
        return self.mean_latency_s * 1e3


class TraceDrivenSimulator:
    """Replay a workload trace through an HMSCS system model."""

    def __init__(
        self,
        system: MultiClusterSystem,
        trace: WorkloadTrace,
        config: Optional[TraceSimulationConfig] = None,
    ) -> None:
        if len(trace) == 0:
            raise ConfigurationError("cannot simulate an empty trace")
        self.system = system
        self.trace = trace
        self.config = config if config is not None else TraceSimulationConfig()
        self._streams = RandomStreams(self.config.seed)
        self.env = Environment()
        self._latencies: List[float] = []
        if self.config.stats_mode == "online":
            # Bounded-memory latency accumulator (PR 6 follow-up): the
            # measured count is the trace length, so the streaming
            # batch-means layout mirrors the array path's batching.
            count = len(trace)
            batches = self.config.batch_count if count >= self.config.batch_count else None
            self._monitor: Optional[OnlineMonitor] = OnlineMonitor(
                "latency",
                batch_count=batches,
                expected_count=count if batches is not None else None,
                track_quantiles=False,
            )
        else:
            self._monitor = None
        self._remote = 0
        self._completed = 0
        self._validate_trace_addresses()
        self._build_service_centers()

    # -- construction -----------------------------------------------------------------

    def _validate_trace_addresses(self) -> None:
        # Flat bounds checks: this runs once per trace entry, so the loop
        # avoids building per-entry label tuples (it is a measurable slice
        # of short replays).
        sizes = [c.num_processors for c in self.system.clusters]
        num_clusters = len(sizes)
        for entry in self.trace:
            cluster, proc = entry.source
            if 0 <= cluster < num_clusters and 0 <= proc < sizes[cluster]:
                cluster, proc = entry.destination
                if 0 <= cluster < num_clusters and 0 <= proc < sizes[cluster]:
                    continue
                label = "destination"
            else:
                label = "source"
            raise ConfigurationError(
                f"trace {label} {(cluster, proc)} does not exist in system "
                f"{self.system.name!r}"
            )

    def _service_distribution(self, mean: float) -> Distribution:
        if self.config.exponential_service:
            return Exponential(mean)
        return Deterministic(mean)

    def _build_service_centers(self) -> None:
        cfg = self.config
        switch = self.system.switch
        # The trace may contain mixed sizes; service centres are parameterised
        # per message, so here we build one model per cluster and draw the
        # service time per message from its mean for that message's size.
        self._icn1_models = []
        self._ecn1_models = []
        self.icn1: List[ServiceCenterSim] = []
        self.ecn1: List[ServiceCenterSim] = []
        # One pass over the trace, not one per centre: the mean is reused
        # for every cluster's ICN1/ECN1 and for ICN2.
        mean_size = self.trace.mean_size
        for idx, cluster in enumerate(self.system.clusters):
            icn_model = build_network_model(
                cfg.architecture, cluster.icn_technology, switch, cluster.num_processors
            )
            ecn_model = build_network_model(
                cfg.architecture, cluster.ecn_technology, switch, cluster.num_processors
            )
            self._icn1_models.append(icn_model)
            self._ecn1_models.append(ecn_model)
            self.icn1.append(
                ServiceCenterSim(
                    self.env,
                    f"icn1[{idx}]",
                    self._service_distribution(icn_model.service_time(mean_size)),
                    self._streams.stream(f"trace-icn1-{idx}"),
                )
            )
            self.ecn1.append(
                ServiceCenterSim(
                    self.env,
                    f"ecn1[{idx}]",
                    self._service_distribution(ecn_model.service_time(mean_size)),
                    self._streams.stream(f"trace-ecn1-{idx}"),
                )
            )
        icn2_model = build_network_model(
            cfg.architecture,
            self.system.icn2_technology,
            switch,
            max(self.system.num_clusters, 1),
        )
        self._icn2_model = icn2_model
        self.icn2 = ServiceCenterSim(
            self.env,
            "icn2",
            self._service_distribution(icn2_model.service_time(mean_size)),
            self._streams.stream("trace-icn2"),
        )

    # -- processes ---------------------------------------------------------------------

    def _injector(self) -> Generator[Event, None, None]:
        """Inject every trace entry at its recorded time (open loop)."""
        last_time = 0.0
        for ident, entry in enumerate(self.trace):
            delay = entry.time - last_time
            if delay < 0:
                raise SimulationError("trace entries must be sorted by time")
            if delay > 0:
                yield self.env.timeout(delay)
            last_time = entry.time
            self.env.process(self._deliver(ident, entry))

    def _deliver(self, ident: int, entry: TraceEntry) -> Generator[Event, None, None]:
        message = Message(
            ident=ident,
            source=entry.source,
            destination=entry.destination,
            size_bytes=entry.size_bytes,
            created_at=self.env.now,
        )
        src_cluster = entry.source[0]
        dst_cluster = entry.destination[0]
        if src_cluster == dst_cluster:
            yield self.icn1[src_cluster].begin(message)
        else:
            # Flattened remote chain (same shape as the closed-loop
            # simulator): hops 1–2 continue via plain event callbacks and
            # the generator parks on a never-scheduled proxy Event until the
            # destination ECN1 departure fires.  Every AbsoluteTimeout is
            # created at the same point as the three-yield version, so the
            # event-id sequence — and the golden trace — is byte-identical.
            proxy = Event(self.env)

            def _hop3(_event: Event) -> None:
                final = self.ecn1[dst_cluster].begin(message)
                final.callbacks.extend(proxy.callbacks)

            def _hop2(_event: Event) -> None:
                hop = self.icn2.begin(message)
                hop.callbacks.append(_hop3)

            first = self.ecn1[src_cluster].begin(message)
            first.callbacks.append(_hop2)
            yield proxy
        message.completed_at = self.env.now
        if self._monitor is None:
            self._latencies.append(message.latency)
        else:
            self._monitor.record(message.completed_at, message.latency)
        self._remote += int(message.is_remote)
        self._completed += 1

    # -- running -----------------------------------------------------------------------

    def run(self) -> TraceSimulationResult:
        """Replay the whole trace and return the latency summary."""
        self.env.process(self._injector())
        self.env.run()
        if self._completed == 0:
            raise SimulationError("trace replay completed no messages")

        ci: Optional[ConfidenceInterval] = None
        if self._monitor is None:
            if len(self._latencies) >= self.config.batch_count:
                ci = batch_means(self._latencies, num_batches=self.config.batch_count)
            mean_latency = sum(self._latencies) / len(self._latencies)
        else:
            if self._monitor.count >= self.config.batch_count:
                ci = self._monitor.batch_means_interval(self.config.batch_count)
            mean_latency = self._monitor.mean()

        now = self.env.now
        utilizations = {
            center.name: center.utilization(now)
            for center in [*self.icn1, *self.ecn1, self.icn2]
        }
        return TraceSimulationResult(
            mean_latency_s=mean_latency,
            confidence_interval=ci,
            completed_messages=self._completed,
            injected_messages=len(self.trace),
            remote_fraction=self._remote / self._completed,
            makespan_s=now,
            utilizations=utilizations,
        )
