"""The multi-cluster validation simulator (paper §6).

The simulator reproduces the paper's validation methodology:

* every processor independently generates requests with exponentially
  distributed inter-arrival times (mean 1/λ),
* destinations are chosen uniformly over all other nodes,
* a *local* request is served by the source cluster's ICN1; a *remote*
  request crosses the source ECN1, the ICN2 and the destination ECN1,
* every network is a FIFO store-and-forward server with exponentially
  distributed service time whose mean comes from the §5 network models,
* a processor is blocked while its request is outstanding (assumption 4),
* each message is time-stamped at generation and its latency recorded at a
  sink; a run ends after a configured number of completed messages
  (10 000 in the paper).

Unlike the closed-form analysis, the simulator accepts *any*
:class:`~repro.cluster.system.MultiClusterSystem`, including unequal
Cluster-of-Clusters configurations, which is how the heterogeneous model
extension is validated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..cluster.system import MultiClusterSystem
from ..des.core import Environment
from ..des.events import Event
from ..des.rng import RandomStreams
from ..errors import ConfigurationError, SimulationError
from ..network.models import build_network_model
from ..queueing.distributions import Deterministic, Distribution, Exponential
from ..stats.intervals import ConfidenceInterval
from ..stats.sinks import STATS_MODES, validate_histogram_range
from ..workload.arrivals import ArrivalProcess
from ..workload.destinations import DestinationPolicy, UniformDestinations
from .components import LatencySink, ServiceCenterSim
from .faults import FaultInjector, FaultSpec, FaultyServiceCenterSim
from .message import Message

#: Signature of the optional per-processor arrival-process factory: it maps
#: the processor's (speed-scaled) request rate to an :class:`ArrivalProcess`.
ArrivalFactory = Callable[[float], ArrivalProcess]

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "MultiClusterSimulator",
    "collect_simulation_result",
]


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    Parameters
    ----------
    architecture:
        ``"non-blocking"`` or ``"blocking"`` (applied to all networks).
    message_bytes:
        Fixed message length M in bytes.
    generation_rate:
        Per-processor request rate λ (messages/second) while active.
    num_messages:
        Number of completed messages after which the run stops (the paper
        gathers 10 000).
    warmup_fraction:
        Fraction of ``num_messages`` discarded as warm-up before statistics
        are collected.
    seed:
        Master seed for all random streams.
    exponential_service:
        ``True`` reproduces the paper's exponential service assumption;
        ``False`` uses deterministic service times equal to the mean (an
        ablation of the M/M/1 assumption).
    batch_count:
        Number of batches for the batch-means confidence interval.
    stats_mode:
        Observation-sink strategy (:data:`repro.stats.sinks.STATS_MODES`):
        ``"array"`` retains every sample and message (bit-identical legacy
        behaviour, exact percentiles, per-message traces); ``"online"``
        streams everything through bounded-memory accumulators so run
        length is bounded by CPU rather than RAM.
    histogram_range:
        Optional explicit ``(low, high)`` range (seconds) of the online
        sink's quantile histogram.  Fixing the range up front skips
        auto-calibration and makes online-mode histograms *mergeable*
        across backend shards (auto-calibrated ranges are data-dependent,
        so two shards would bin differently).  Only meaningful with
        ``stats_mode="online"`` — the array sink keeps every sample and
        needs no histogram, so combining it with ``stats_mode="array"``
        raises a :class:`~repro.errors.ConfigurationError`.
    failures:
        Optional :class:`~repro.simulation.faults.FaultSpec` (or its JSON
        mapping) attaching seeded failure/repair schedules to links and/or
        nodes.  ``None`` (the default) keeps the always-up model and draws
        from exactly the same streams as every earlier release.
    """

    architecture: str = "non-blocking"
    message_bytes: float = 1024.0
    generation_rate: float = 0.25
    num_messages: int = 10_000
    warmup_fraction: float = 0.1
    seed: int = 0
    exponential_service: bool = True
    batch_count: int = 20
    stats_mode: str = "array"
    histogram_range: Optional[Tuple[float, float]] = None
    failures: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.message_bytes <= 0:
            raise ConfigurationError(f"message size must be positive, got {self.message_bytes!r}")
        if self.generation_rate <= 0:
            raise ConfigurationError(
                f"generation rate must be positive, got {self.generation_rate!r}"
            )
        if self.num_messages < 1:
            raise ConfigurationError(f"num_messages must be >= 1, got {self.num_messages!r}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup_fraction must lie in [0, 1), got {self.warmup_fraction!r}"
            )
        if self.batch_count < 2:
            raise ConfigurationError(f"batch_count must be >= 2, got {self.batch_count!r}")
        if self.stats_mode not in STATS_MODES:
            raise ConfigurationError(
                f"stats_mode must be one of {STATS_MODES}, got {self.stats_mode!r}"
            )
        if self.histogram_range is not None:
            try:
                object.__setattr__(
                    self, "histogram_range", validate_histogram_range(self.histogram_range)
                )
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from None
            if self.stats_mode != "online":
                raise ConfigurationError(
                    "histogram_range only applies to the online sink's quantile "
                    "histogram; it cannot be combined with stats_mode="
                    f"{self.stats_mode!r} (use stats_mode='online')"
                )
        if self.failures is not None and not isinstance(self.failures, FaultSpec):
            object.__setattr__(self, "failures", FaultSpec.from_json(self.failures))


@dataclass(frozen=True)
class SimulationResult:
    """Summary of one simulation run.

    ``latency_summary`` carries count/mean/std/min/max/p50/p95/p99 of the
    post-warm-up latency stream (seconds).  Count, min and max are exact in
    both stats modes; in ``online`` mode the percentiles are histogram
    estimates at the sink's documented resolution.
    """

    mean_latency_s: float
    confidence_interval: Optional[ConfidenceInterval]
    mean_local_latency_s: float
    mean_remote_latency_s: float
    measured_messages: int
    completed_messages: int
    remote_fraction: float
    simulated_time_s: float
    utilizations: Dict[str, float]
    mean_occupancies: Dict[str, float]
    seed: int
    stats_mode: str = "array"
    latency_summary: Optional[Dict[str, float]] = None
    #: Per-target availability over the run (``None`` unless faults were on).
    availability: Optional[Dict[str, float]] = None
    #: Messages lost to the ``"drop"`` fault policy.
    dropped_messages: int = 0

    @property
    def mean_latency_ms(self) -> float:
        """Mean message latency in milliseconds (the figures' unit)."""
        return self.mean_latency_s * 1e3

    @property
    def mean_availability(self) -> Optional[float]:
        """Unweighted mean availability across fault targets (``None`` without faults)."""
        if not self.availability:
            return None
        return sum(self.availability.values()) / len(self.availability)

    @property
    def throughput_msg_s(self) -> float:
        """Completed messages per simulated second (degraded under faults)."""
        if self.simulated_time_s <= 0:
            return 0.0
        return self.completed_messages / self.simulated_time_s

    def as_dict(self) -> Dict[str, float]:
        """Headline metrics as a flat dictionary.

        The fault columns (availability, throughput, drops) only appear on
        fault-enabled runs so fixtures of the always-up model keep their
        historical byte-exact shape.
        """
        out = {
            "mean_latency_ms": self.mean_latency_ms,
            "mean_local_latency_ms": self.mean_local_latency_s * 1e3,
            "mean_remote_latency_ms": self.mean_remote_latency_s * 1e3,
            "measured_messages": float(self.measured_messages),
            "remote_fraction": self.remote_fraction,
            "simulated_time_s": self.simulated_time_s,
        }
        if self.confidence_interval is not None:
            out["ci_half_width_ms"] = self.confidence_interval.half_width * 1e3
        if self.availability is not None:
            out["availability"] = self.mean_availability or 0.0
            out["throughput_msg_s"] = self.throughput_msg_s
            out["dropped_messages"] = float(self.dropped_messages)
        return out


def collect_simulation_result(
    sink: LatencySink,
    centers: Sequence,
    now: float,
    config: SimulationConfig,
    faults: Optional[FaultInjector] = None,
) -> SimulationResult:
    """Fold a finished run's sink and service centres into a result.

    Shared by :class:`MultiClusterSimulator` and the lean engine in
    :mod:`repro.simulation.vectorized_replay`; ``centers`` is any sequence
    of objects exposing ``name``/``utilization(now)``/``mean_occupancy(now)``
    in the canonical ``[*icn1, *ecn1, icn2]`` order (dict insertion order is
    part of the golden fixtures).
    """
    if sink.measured == 0:
        raise SimulationError("simulation finished without measuring any messages")

    # Both sink implementations expose the StatsSink protocol; in array
    # mode batch_means_interval delegates to the historical batch_means
    # call on the full value array, keeping the result bit-identical.
    ci: Optional[ConfidenceInterval] = None
    if sink.latencies.count >= config.batch_count:
        ci = sink.latencies.batch_means_interval(config.batch_count)

    remote_count = sink.remote_latencies.count
    measured = sink.measured

    utilizations: Dict[str, float] = {}
    occupancies: Dict[str, float] = {}
    for center in centers:
        utilizations[center.name] = center.utilization(now)
        occupancies[center.name] = center.mean_occupancy(now)

    availability: Optional[Dict[str, float]] = None
    dropped = 0
    if faults is not None:
        availability = faults.availability(now)
        dropped = faults.node_dropped
        for center in centers:
            if isinstance(center, FaultyServiceCenterSim):
                dropped += center.dropped

    return SimulationResult(
        mean_latency_s=sink.latencies.mean(),
        confidence_interval=ci,
        mean_local_latency_s=(
            sink.local_latencies.mean() if sink.local_latencies.count else 0.0
        ),
        mean_remote_latency_s=(
            sink.remote_latencies.mean() if sink.remote_latencies.count else 0.0
        ),
        measured_messages=measured,
        completed_messages=sink.completed,
        remote_fraction=remote_count / measured if measured else 0.0,
        simulated_time_s=now,
        utilizations=utilizations,
        mean_occupancies=occupancies,
        seed=config.seed,
        stats_mode=config.stats_mode,
        latency_summary=sink.latencies.summary(),
        availability=availability,
        dropped_messages=dropped,
    )


class MultiClusterSimulator:
    """Discrete-event simulator of an HMSCS system."""

    def __init__(
        self,
        system: MultiClusterSystem,
        config: Optional[SimulationConfig] = None,
        destination_policy: Optional[DestinationPolicy] = None,
        arrival_factory: Optional[ArrivalFactory] = None,
    ) -> None:
        self.system = system
        self.config = config if config is not None else SimulationConfig()
        self.cluster_sizes = [c.num_processors for c in system.clusters]
        if sum(self.cluster_sizes) < 2:
            raise ConfigurationError("simulation needs at least two processors")
        self.destination_policy = (
            destination_policy
            if destination_policy is not None
            else UniformDestinations(self.cluster_sizes)
        )
        # None keeps the paper's Poisson arrivals on the historical batched
        # exponential stream (bit-identical to every earlier release); a
        # factory is called once per processor with its scaled rate so
        # stateful processes (e.g. MMPP) never share state across sources.
        self.arrival_factory = arrival_factory
        self._streams = RandomStreams(self.config.seed)
        # Fault schedules draw from their own "fault-*" named streams, so a
        # run with failures=None is bit-identical to every earlier release.
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self.config.failures, self._streams)
            if self.config.failures is not None
            else None
        )

        self.env = Environment()
        self._build_service_centers()
        warmup = int(self.config.num_messages * self.config.warmup_fraction)
        self.sink = LatencySink(
            self.env,
            self.config.num_messages,
            warmup,
            stats_mode=self.config.stats_mode,
            batch_count=self.config.batch_count,
            histogram_range=self.config.histogram_range,
        )
        self._message_counter = 0
        self._start_processors()

    # -- construction -----------------------------------------------------------------

    def _service_distribution(self, mean: float) -> Distribution:
        if self.config.exponential_service:
            return Exponential(mean)
        return Deterministic(mean)

    def _make_center(self, name: str, mean_service: float, stream_name: str) -> ServiceCenterSim:
        """One service centre, fault-wrapped when link faults are enabled."""
        distribution = self._service_distribution(mean_service)
        rng = self._streams.stream(stream_name)
        if self.faults is not None and self.faults.spec.on_links:
            return FaultyServiceCenterSim(
                self.env,
                name,
                distribution,
                rng,
                schedule=self.faults.link_schedule(name),
                policy=self.faults.spec.policy,
            )
        return ServiceCenterSim(self.env, name, distribution, rng)

    def _build_service_centers(self) -> None:
        cfg = self.config
        switch = self.system.switch
        m = cfg.message_bytes

        self.icn1: List[ServiceCenterSim] = []
        self.ecn1: List[ServiceCenterSim] = []
        for idx, cluster in enumerate(self.system.clusters):
            icn_model = build_network_model(
                cfg.architecture, cluster.icn_technology, switch, cluster.num_processors
            )
            ecn_model = build_network_model(
                cfg.architecture, cluster.ecn_technology, switch, cluster.num_processors
            )
            self.icn1.append(
                self._make_center(
                    f"icn1[{idx}]", icn_model.service_time(m), f"service-icn1-{idx}"
                )
            )
            self.ecn1.append(
                self._make_center(
                    f"ecn1[{idx}]", ecn_model.service_time(m), f"service-ecn1-{idx}"
                )
            )
        icn2_model = build_network_model(
            cfg.architecture,
            self.system.icn2_technology,
            switch,
            max(self.system.num_clusters, 1),
        )
        self.icn2 = self._make_center("icn2", icn2_model.service_time(m), "service-icn2")

    def _start_processors(self) -> None:
        make = self._processor if self.faults is None else self._processor_faulty
        for cluster_idx, size in enumerate(self.cluster_sizes):
            for proc_idx in range(size):
                self.env.process(make(cluster_idx, proc_idx))

    # -- processes ---------------------------------------------------------------------

    def _processor(self, cluster_idx: int, proc_idx: int) -> Generator[Event, None, None]:
        """Closed-loop processor: think, send one request, wait for the reply.

        This loop is the simulator's hot path: arrivals come from a batched
        exponential stream, destinations from the policy's batched chooser
        (both bit-identical to the per-call draws), and the service-centre
        hops are single-yield ``begin`` events rather than ``yield from``
        delegation through sub-generators.
        """
        cluster = self.system.clusters[cluster_idx]
        rate = cluster.processor_type.scaled_rate(self.config.generation_rate)
        arrival_rng = self._streams.stream(f"arrivals-{cluster_idx}-{proc_idx}")
        dest_rng = self._streams.stream(f"destination-{cluster_idx}-{proc_idx}")
        source = (cluster_idx, proc_idx)

        if self.arrival_factory is None:
            next_interarrival = arrival_rng.exponential_rate_stream(rate)
        else:
            # The arrival stream's sole consumer is this sampler, so batched
            # processes stay bit-identical to their scalar draw sequence.
            next_interarrival = self.arrival_factory(rate).sampler(arrival_rng)
        choose = self.destination_policy.chooser(source, dest_rng)
        env = self.env
        timeout = env.timeout
        icn1_begin = self.icn1[cluster_idx].begin
        ecn1_begin = self.ecn1[cluster_idx].begin
        icn2_begin = self.icn2.begin
        ecn1 = self.ecn1
        message_bytes = self.config.message_bytes
        record = self.sink.record

        # Flattened remote chain: the two intermediate hops run as plain
        # event callbacks instead of generator resumes, so a remote message
        # costs one process resume (at the final hop) instead of three.  The
        # closed loop has at most one outstanding message per processor, so
        # the chain state lives in these cells; ``proxy`` is a never-scheduled
        # Event the generator parks on — creating it consumes no event id and
        # each hop's AbsoluteTimeout is still created at exactly the same
        # point as the generator version, so the (time, priority, eid) pop
        # order — and therefore every golden trace — is byte-identical.
        chain: List = [None, 0]
        proxy = Event(env)

        def _hop3(_event: Event) -> None:
            final = ecn1[chain[1]].begin(chain[0])
            final.callbacks.extend(proxy.callbacks)

        def _hop2(_event: Event) -> None:
            hop = icn2_begin(chain[0])
            hop.callbacks.append(_hop3)

        while True:
            yield timeout(next_interarrival())
            destination = choose()
            message = Message(
                ident=self._message_counter,
                source=source,
                destination=destination,
                size_bytes=message_bytes,
                created_at=env._now,
            )
            self._message_counter += 1

            if destination[0] == cluster_idx:
                # Intra-cluster: a single pass through the cluster's ICN1.
                yield icn1_begin(message)
            else:
                # Inter-cluster: source ECN1 -> ICN2 -> destination ECN1.
                chain[0] = message
                chain[1] = destination[0]
                proxy.callbacks = []
                first = ecn1_begin(message)
                first.callbacks.append(_hop2)
                yield proxy

            message.completed_at = env._now
            record(message)

    def _processor_faulty(self, cluster_idx: int, proc_idx: int) -> Generator[Event, None, None]:
        """Fault-aware twin of :meth:`_processor` (used only when faults are on).

        Kept separate so the always-up hot path stays byte-identical; the
        extra per-message work is the node-churn wait and per-hop admission,
        which under the ``"drop"`` policy may lose the message mid-path (the
        closed-loop source then simply starts its next think time).
        """
        cluster = self.system.clusters[cluster_idx]
        rate = cluster.processor_type.scaled_rate(self.config.generation_rate)
        arrival_rng = self._streams.stream(f"arrivals-{cluster_idx}-{proc_idx}")
        dest_rng = self._streams.stream(f"destination-{cluster_idx}-{proc_idx}")
        source = (cluster_idx, proc_idx)

        if self.arrival_factory is None:
            next_interarrival = arrival_rng.exponential_rate_stream(rate)
        else:
            next_interarrival = self.arrival_factory(rate).sampler(arrival_rng)
        choose = self.destination_policy.chooser(source, dest_rng)
        env = self.env
        timeout = env.timeout
        faults = self.faults
        spec = faults.spec
        drop = spec.policy == "drop"
        node_sched = faults.node_schedule(cluster_idx, proc_idx) if spec.on_nodes else None
        icn1 = self.icn1[cluster_idx]
        ecn1_src = self.ecn1[cluster_idx]
        icn2 = self.icn2
        ecn1 = self.ecn1
        message_bytes = self.config.message_bytes
        record = self.sink.record

        while True:
            yield timeout(next_interarrival())
            if node_sched is not None:
                now = env._now
                up = node_sched.next_up(now)
                if up > now:
                    # Churn: a down node generates nothing until repaired.
                    yield timeout(up - now)
            destination = choose()
            if drop and spec.on_nodes and destination != source:
                if faults.node_schedule(*destination).is_down(env._now):
                    faults.node_dropped += 1
                    continue
            message = Message(
                ident=self._message_counter,
                source=source,
                destination=destination,
                size_bytes=message_bytes,
                created_at=env._now,
            )
            self._message_counter += 1

            if destination[0] == cluster_idx:
                event = icn1.try_begin(message)
                if event is None:
                    continue
                yield event
            else:
                event = ecn1_src.try_begin(message)
                if event is None:
                    continue
                yield event
                event = icn2.try_begin(message)
                if event is None:
                    continue
                yield event
                event = ecn1[destination[0]].try_begin(message)
                if event is None:
                    continue
                yield event

            message.completed_at = env._now
            record(message)

    # -- running -----------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Run until the configured number of messages has completed."""
        self.env.run(until=self.sink.done)
        return self._collect_result()

    def _collect_result(self) -> SimulationResult:
        return collect_simulation_result(
            self.sink,
            [*self.icn1, *self.ecn1, self.icn2],
            self.env.now,
            self.config,
            faults=self.faults,
        )
