"""Deterministic failure/repair processes for the validation simulator.

The paper's model assumes always-up nodes and links; real multicluster
systems (DAS-2, LLNL) lose nodes to churn and links to outages.  This
module adds a *seeded* fault layer in the machine-repairman tradition:
every fault target alternates between up intervals (time-to-failure drawn
from an exponential or Weibull distribution) and down intervals (repair
time drawn from its own distribution).  Each target's schedule is derived
lazily from a dedicated named stream of the run's
:class:`~repro.des.rng.RandomStreams`, so

* the schedule is a pure function of the master seed (bit-identical across
  serial/pool/socket backends and across reruns), and
* a run *without* faults draws from exactly the same streams as before the
  fault layer existed — golden fixtures stay byte-identical.

Two policies govern what a failure does to traffic:

* ``"stall"`` — preemptive-resume: a failed service centre pauses work and
  resumes it on repair, so messages queue up and failure-induced latency
  shows up in the latency monitors (the classic machine-repairman view);
* ``"drop"`` — a message arriving at a down centre (or addressed to a down
  node) is lost and counted; the closed-loop source simply starts its next
  think time.

Availability per target, total dropped messages and degraded throughput
become monitored outputs of :class:`~repro.simulation.simulator.SimulationResult`.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..des.events import AbsoluteTimeout
from ..des.rng import RandomStreams, VariateGenerator
from ..errors import ConfigurationError
from .components import ServiceCenterSim
from .message import Message

__all__ = [
    "FaultSpec",
    "FaultSchedule",
    "FaultInjector",
    "FaultyServiceCenterSim",
    "FAILURE_DISTRIBUTIONS",
    "REPAIR_DISTRIBUTIONS",
    "FAULT_TARGETS",
    "FAULT_POLICIES",
]

#: Time-to-failure families (``weibull`` with shape 1 is the exponential).
FAILURE_DISTRIBUTIONS = ("exponential", "weibull")
#: Repair-time families (``deterministic`` repairs take exactly ``mttr_s``).
REPAIR_DISTRIBUTIONS = ("exponential", "weibull", "deterministic")
#: What the faults attach to: ICN/ECN links, processor nodes, or both.
FAULT_TARGETS = ("links", "nodes", "both")
#: What a failure does to traffic that hits it.
FAULT_POLICIES = ("stall", "drop")


@dataclass(frozen=True)
class FaultSpec:
    """Declarative failure/repair block of an experiment.

    Parameters
    ----------
    mtbf_s:
        Mean time between failures (mean up time) in simulated seconds.
    mttr_s:
        Mean time to repair (mean down time) in simulated seconds.
    failure_distribution / failure_shape:
        Time-to-failure family — ``"exponential"`` or ``"weibull"`` with
        the given shape (``shape < 1`` models infant mortality,
        ``shape > 1`` wear-out; the mean stays ``mtbf_s`` either way).
    repair_distribution / repair_shape:
        Repair-time family; ``"deterministic"`` repairs take exactly
        ``mttr_s``.
    targets:
        ``"links"`` attaches schedules to every service centre (ICN1s,
        ECN1s and the ICN2), ``"nodes"`` to every processor (churn: a down
        node pauses generation until repaired), ``"both"`` to both.
    policy:
        ``"stall"`` (preemptive-resume, failure-induced latency) or
        ``"drop"`` (messages hitting a down target are lost and counted).
    """

    mtbf_s: float
    mttr_s: float
    failure_distribution: str = "exponential"
    failure_shape: float = 1.0
    repair_distribution: str = "exponential"
    repair_shape: float = 1.0
    targets: str = "links"
    policy: str = "stall"

    def __post_init__(self) -> None:
        if not isinstance(self.mtbf_s, (int, float)) or self.mtbf_s <= 0:
            raise ConfigurationError(f"mtbf_s must be a positive number, got {self.mtbf_s!r}")
        if not isinstance(self.mttr_s, (int, float)) or self.mttr_s <= 0:
            raise ConfigurationError(f"mttr_s must be a positive number, got {self.mttr_s!r}")
        if self.failure_distribution not in FAILURE_DISTRIBUTIONS:
            raise ConfigurationError(
                f"failure_distribution must be one of {FAILURE_DISTRIBUTIONS}, "
                f"got {self.failure_distribution!r}"
            )
        if self.repair_distribution not in REPAIR_DISTRIBUTIONS:
            raise ConfigurationError(
                f"repair_distribution must be one of {REPAIR_DISTRIBUTIONS}, "
                f"got {self.repair_distribution!r}"
            )
        for label, shape in (
            ("failure_shape", self.failure_shape),
            ("repair_shape", self.repair_shape),
        ):
            if not isinstance(shape, (int, float)) or shape <= 0:
                raise ConfigurationError(f"{label} must be a positive number, got {shape!r}")
        if self.targets not in FAULT_TARGETS:
            raise ConfigurationError(
                f"targets must be one of {FAULT_TARGETS}, got {self.targets!r}"
            )
        if self.policy not in FAULT_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {FAULT_POLICIES}, got {self.policy!r}"
            )

    @property
    def on_links(self) -> bool:
        return self.targets in ("links", "both")

    @property
    def on_nodes(self) -> bool:
        return self.targets in ("nodes", "both")

    def to_json(self) -> Dict[str, object]:
        """Plain JSON mapping (all fields; round-trips via :meth:`from_json`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Mapping) -> "FaultSpec":
        """Build a spec from a JSON mapping, rejecting unknown keys."""
        if isinstance(data, FaultSpec):
            return data
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"failures block must be a JSON object, got {type(data).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown failures field(s) {unknown}; known fields: {sorted(known)}"
            )
        missing = sorted(name for name in ("mtbf_s", "mttr_s") if name not in data)
        if missing:
            raise ConfigurationError(f"failures block is missing required field(s) {missing}")
        return cls(**dict(data))


def _make_sampler(
    distribution: str, shape: float, mean: float, rng: VariateGenerator
) -> Callable[[], float]:
    if distribution == "exponential":
        return lambda: rng.exponential(mean)
    if distribution == "weibull":
        return lambda: rng.weibull(shape, mean)
    return lambda: mean  # deterministic


class FaultSchedule:
    """Lazily generated alternating up/down timeline of one fault target.

    The target starts *up* at t=0; down intervals ``[fail, repair_end)``
    are appended on demand by alternating time-to-failure and repair draws
    from the target's dedicated stream.  Because generation is demand-driven
    and strictly append-only, any query sequence produces the same timeline
    for a given seed, and post-run queries never perturb results.
    """

    __slots__ = ("_ttf", "_repair", "_starts", "_ends", "_clock")

    def __init__(self, ttf: Callable[[], float], repair: Callable[[], float]) -> None:
        self._ttf = ttf
        self._repair = repair
        self._starts: List[float] = []
        self._ends: List[float] = []
        self._clock = 0.0  # end of the generated timeline (last repair end)

    def _ensure(self, horizon: float) -> None:
        """Generate down intervals until the timeline covers ``horizon``."""
        while self._clock <= horizon:
            fail = self._clock + self._ttf()
            end = fail + self._repair()
            self._starts.append(fail)
            self._ends.append(end)
            self._clock = end

    def is_down(self, t: float) -> bool:
        """Whether the target is failed at time ``t``."""
        self._ensure(t)
        idx = bisect_right(self._starts, t) - 1
        return idx >= 0 and t < self._ends[idx]

    def next_up(self, t: float) -> float:
        """Earliest time >= ``t`` at which the target is up."""
        self._ensure(t)
        idx = bisect_right(self._starts, t) - 1
        if idx >= 0 and t < self._ends[idx]:
            return self._ends[idx]
        return t

    def finish(self, start: float, work: float) -> float:
        """Completion time of ``work`` seconds started at ``start``.

        Preemptive-resume semantics: work pauses during down intervals and
        resumes on repair, so the answer is ``start + work`` plus every
        outage overlapping the (stretched) busy period.
        """
        if work < 0:
            raise ValueError(f"work must be non-negative, got {work!r}")
        t = start
        remaining = work
        while True:
            self._ensure(t + remaining)
            idx = bisect_right(self._starts, t) - 1
            if idx >= 0 and t < self._ends[idx]:
                t = self._ends[idx]  # started inside an outage: wait it out
                continue
            nxt = idx + 1  # first down interval strictly after t
            if nxt >= len(self._starts) or t + remaining <= self._starts[nxt]:
                return t + remaining
            remaining -= self._starts[nxt] - t
            t = self._ends[nxt]

    def downtime(self, horizon: float) -> float:
        """Total failed time within ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        self._ensure(horizon)
        total = 0.0
        for start, end in zip(self._starts, self._ends):
            if start >= horizon:
                break
            total += min(end, horizon) - start
        return total

    def availability(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the target was up (1.0 for horizon<=0)."""
        if horizon <= 0:
            return 1.0
        return 1.0 - self.downtime(horizon) / horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultSchedule intervals={len(self._starts)} clock={self._clock:.3f}>"


class FaultyServiceCenterSim(ServiceCenterSim):
    """A service centre subject to a failure/repair schedule.

    With the ``"stall"`` policy the virtual-FIFO recurrence stretches
    deterministically around outages: a message's departure is
    ``finish(max(now, next_free), service_time)``, so queued work resumes
    on repair in arrival order and the per-visit bookkeeping charges the
    full occupied span (service + overlapped downtime).  With ``"drop"``
    admission is gated instead: :meth:`try_begin` loses messages that
    arrive while the centre is down and service itself is undisturbed.
    """

    __slots__ = ("schedule", "policy", "dropped")

    def __init__(self, *args, schedule: FaultSchedule, policy: str, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if policy not in FAULT_POLICIES:
            raise ConfigurationError(f"policy must be one of {FAULT_POLICIES}, got {policy!r}")
        self.schedule = schedule
        self.policy = policy
        self.dropped = 0

    def begin(self, message: Message) -> AbsoluteTimeout:
        if self.policy != "stall":
            return super().begin(message)
        env = self.env
        now = env._now
        occupancy = self.occupancy
        occupancy.update_unchecked(now, occupancy._last_value + 1.0)
        message.path.append(self.name)
        start = self._next_free
        if start < now:
            start = now
        service_time = self._sample()
        depart = self.schedule.finish(start, service_time)
        self._next_free = depart
        # Charge the occupied span (service + overlapped downtime) so
        # utilization reflects the degraded server.
        self._in_service.append((start, depart - start))
        event = AbsoluteTimeout(env, depart)
        event.callbacks.append(self._departed)
        return event

    def try_begin(self, message: Message) -> Optional[AbsoluteTimeout]:
        """Admit ``message`` unless the drop policy loses it to an outage."""
        if self.policy == "drop" and self.schedule.is_down(self.env._now):
            self.dropped += 1
            return None
        return self.begin(message)


class FaultInjector:
    """Owns every fault schedule of one simulation run.

    Schedules are created eagerly (one per target) but *drawn* lazily; each
    target uses its own ``fault-<target>`` named stream so the fault layer
    never touches the arrival/service/destination streams.
    """

    __slots__ = ("spec", "node_schedules", "node_dropped", "_link_schedules", "_streams")

    def __init__(self, spec: FaultSpec, streams: RandomStreams) -> None:
        self.spec = spec
        self._streams = streams
        self._link_schedules: Dict[str, FaultSchedule] = {}
        self.node_schedules: Dict[Tuple[int, int], FaultSchedule] = {}
        self.node_dropped = 0

    def _schedule(self, stream_name: str) -> FaultSchedule:
        spec = self.spec
        rng = self._streams.stream(stream_name)
        # ttf and repair alternate draws on the one per-target stream, which
        # is exactly the order the schedule consumes them in.
        ttf = _make_sampler(spec.failure_distribution, spec.failure_shape, spec.mtbf_s, rng)
        repair = _make_sampler(spec.repair_distribution, spec.repair_shape, spec.mttr_s, rng)
        return FaultSchedule(ttf, repair)

    def link_schedule(self, center_name: str) -> FaultSchedule:
        """The (memoised) schedule of the service centre ``center_name``."""
        schedule = self._link_schedules.get(center_name)
        if schedule is None:
            schedule = self._schedule(f"fault-{center_name}")
            self._link_schedules[center_name] = schedule
        return schedule

    def node_schedule(self, cluster_idx: int, proc_idx: int) -> FaultSchedule:
        """The (memoised) churn schedule of processor ``(cluster, proc)``."""
        key = (cluster_idx, proc_idx)
        schedule = self.node_schedules.get(key)
        if schedule is None:
            schedule = self._schedule(f"fault-node-{cluster_idx}-{proc_idx}")
            self.node_schedules[key] = schedule
        return schedule

    def monitored(self) -> Iterator[Tuple[str, FaultSchedule]]:
        """Every (name, schedule) pair instantiated for this run."""
        yield from self._link_schedules.items()
        for (cluster_idx, proc_idx), schedule in self.node_schedules.items():
            yield f"node[{cluster_idx}][{proc_idx}]", schedule

    def availability(self, horizon: float) -> Dict[str, float]:
        """Per-target availability over ``[0, horizon]``."""
        return {name: schedule.availability(horizon) for name, schedule in self.monitored()}
