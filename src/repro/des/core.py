"""The discrete-event simulation environment (scheduler / event loop).

The :class:`Environment` keeps a priority queue of ``(time, priority, id,
event)`` tuples and processes them in order, advancing simulated time.  It is
a deterministic, single-threaded kernel modelled on SimPy's API so that the
multi-cluster simulator in :mod:`repro.simulation` reads like conventional
simulation code.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from ..errors import SimulationError
from .events import AbsoluteTimeout, AllOf, AnyOf, Event, NORMAL, Timeout, URGENT
from .process import Process, ProcessGenerator

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised internally when the event queue is exhausted."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a target event."""

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation with the event's value."""
        if event.ok:
            raise cls(event.value)
        # Propagate the failure out of ``run``.
        raise event.value  # type: ignore[misc]


class Environment:
    """Execution environment for a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Simulated time at which the clock starts (default ``0.0``).

    Notes
    -----
    Time is a plain ``float`` with no attached unit; the multi-cluster
    simulator uses seconds throughout.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None

    # -- clock & introspection ---------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_proc

    @property
    def queue_size(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._queue)

    def peek(self) -> float:
        """Return the time of the next scheduled event or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires ``delay`` time units from now.

        This is the hottest allocation site of the kernel (every arrival and
        every service completion goes through it); :class:`Timeout` inlines
        its own heap insertion rather than going through :meth:`schedule`.
        """
        return Timeout(self, delay, value)

    def timeout_at(self, at: float, value: Any = None) -> AbsoluteTimeout:
        """Create an :class:`AbsoluteTimeout` that fires at absolute time ``at``.

        Unlike ``timeout(at - now)`` this schedules the event at exactly
        ``at`` with no float round-trip through a relative delay, which the
        simulator's virtual-queue service centres rely on for bit-identical
        departure times.
        """
        return AbsoluteTimeout(self, at, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Create a condition that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Create a condition that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to be processed after ``delay`` time units."""
        if delay:
            if delay < 0:
                raise ValueError(f"Negative delay {delay!r}")
            heappush(self._queue, (self._now + delay, priority, next(self._eid), event))
        else:
            # Immediate scheduling (succeed/fail/process resumption) is the
            # common case; skip the float add and the sign check.
            heappush(self._queue, (self._now, priority, next(self._eid), event))

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events are scheduled.
        """
        queue = self._queue
        if not queue:
            raise EmptySchedule()
        self._now, _, _, event = heappop(queue)

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise SimulationError(f"{event!r} was scheduled twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: crash the simulation.
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(repr(exc))  # pragma: no cover - defensive

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue is empty;
            a number
                run until simulated time reaches that value (the clock is
                advanced to exactly ``until``);
            an :class:`Event`
                run until that event has been processed and return its value.

        Returns
        -------
        Any
            The value of the ``until`` event, if one was given.

        Raises
        ------
        BaseException
            If the ``until`` event failed (including when it had already
            been processed before ``run`` was called), its stored exception
            is re-raised rather than silently returning ``None``.
        """
        at_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                at_event = until
                if at_event.callbacks is None:
                    # Already processed: mirror StopSimulation.callback —
                    # return the value on success, re-raise the stored
                    # exception on failure instead of swallowing it.
                    if at_event.ok:
                        return at_event.value
                    exc = at_event.value
                    if not isinstance(exc, BaseException):  # pragma: no cover
                        exc = SimulationError(repr(exc))
                    raise exc
                at_event.callbacks.append(StopSimulation.callback)
            else:
                at = float(until)
                if at <= self._now:
                    raise ValueError(
                        f"until (={at}) must be greater than the current time (={self._now})"
                    )
                at_event = Event(self)
                # Schedule the stop marker with URGENT priority so that the
                # clock stops exactly at ``at`` before same-time events run.
                at_event._ok = True
                at_event._value = None
                self.schedule(at_event, priority=URGENT, delay=at - self._now)
                at_event.callbacks.append(StopSimulation.callback)

        step = self.step  # bind once: this loop is the simulation's hot path
        try:
            while True:
                step()
        except StopSimulation as stop:
            return stop.args[0]
        except EmptySchedule:
            if at_event is not None and isinstance(until, Event) and not at_event.triggered:
                raise SimulationError(
                    f"No scheduled events left but {until!r} was not triggered"
                ) from None
        return None

    def run_until_empty(self, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains; return the number processed.

        ``max_events`` guards against runaway simulations (e.g. an endless
        generator process) by raising :class:`SimulationError` once exceeded.
        """
        processed = 0
        step = self.step
        queue = self._queue
        while queue:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"Simulation exceeded the budget of {max_events} events"
                )
            step()
            processed += 1
        return processed

    def __repr__(self) -> str:
        return f"<Environment t={self._now!r} queued={len(self._queue)}>"
