"""Random-variate generation with independent, reproducible streams.

Simulation studies need *independent* random number streams per stochastic
component (arrival process, service times, destination choice, ...) so that
variance-reduction techniques such as common random numbers work and results
are reproducible bit-for-bit from a single master seed.

:class:`RandomStreams` spawns named substreams from a master seed using
NumPy's :class:`~numpy.random.SeedSequence`; :class:`VariateGenerator` wraps
one stream with the variate families the simulator needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams", "VariateGenerator"]


class VariateGenerator:
    """Random-variate generator bound to a single independent stream.

    Parameters
    ----------
    rng:
        A :class:`numpy.random.Generator` providing the underlying bits.

    All rate/mean parameters use the same time unit as the simulation
    (seconds in the multi-cluster simulator).
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        """The wrapped NumPy generator (for advanced use)."""
        return self._rng

    # -- continuous -----------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Draw an exponential variate with the given ``mean`` (> 0)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self._rng.exponential(mean))

    def exponential_rate(self, rate: float) -> float:
        """Draw an exponential variate with the given ``rate`` (> 0)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        return float(self._rng.exponential(1.0 / rate))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a uniform variate on ``[low, high)``."""
        if high < low:
            raise ValueError(f"high (={high!r}) must be >= low (={low!r})")
        return float(self._rng.uniform(low, high))

    def erlang(self, k: int, mean: float) -> float:
        """Draw an Erlang-k variate with overall ``mean``."""
        if k <= 0:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self._rng.gamma(shape=k, scale=mean / k))

    def hyperexponential(self, means: Sequence[float], probs: Sequence[float]) -> float:
        """Draw from a hyperexponential mixture of exponentials."""
        means = np.asarray(means, dtype=float)
        probs = np.asarray(probs, dtype=float)
        if means.shape != probs.shape or means.ndim != 1 or means.size == 0:
            raise ValueError("means and probs must be equal-length 1-D sequences")
        if np.any(means <= 0):
            raise ValueError("all means must be positive")
        if not np.isclose(probs.sum(), 1.0):
            raise ValueError(f"probabilities must sum to 1, got {probs.sum()!r}")
        branch = self._rng.choice(means.size, p=probs)
        return float(self._rng.exponential(means[branch]))

    def deterministic(self, value: float) -> float:
        """Return ``value`` unchanged (degenerate distribution)."""
        return float(value)

    def normal(self, mean: float, std: float) -> float:
        """Draw a normal variate (used only by extension workloads)."""
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std!r}")
        return float(self._rng.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        """Draw a lognormal variate parameterised by its underlying normal."""
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        return float(self._rng.lognormal(mean, sigma))

    # -- discrete -------------------------------------------------------------

    def integer(self, low: int, high: int) -> int:
        """Draw a uniform integer from ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"high (={high!r}) must be >= low (={low!r})")
        return int(self._rng.integers(low, high + 1))

    def choice(self, items: Sequence, probs: Optional[Sequence[float]] = None):
        """Pick one element of ``items`` (optionally weighted by ``probs``)."""
        if len(items) == 0:
            raise ValueError("cannot choose from an empty sequence")
        idx = self._rng.choice(len(items), p=None if probs is None else np.asarray(probs, float))
        return items[int(idx)]

    def bernoulli(self, p: float) -> bool:
        """Return ``True`` with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must lie in [0, 1], got {p!r}")
        return bool(self._rng.random() < p)

    def geometric(self, p: float) -> int:
        """Draw a geometric variate (number of trials until first success)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must lie in (0, 1], got {p!r}")
        return int(self._rng.geometric(p))


class RandomStreams:
    """Factory of independent, named random streams derived from one seed.

    Parameters
    ----------
    seed:
        Master seed.  The same master seed always yields the same named
        streams regardless of the order in which they are requested.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.stream("arrivals")
    >>> service = streams.stream("service")
    >>> arrivals.exponential(1.0) != service.exponential(1.0)
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._cache: Dict[str, VariateGenerator] = {}

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def stream(self, name: str) -> VariateGenerator:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._cache:
            # Deterministically derive a child seed from (master seed, name).
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            entropy = [self._seed, int(digest.sum()), len(name)] + [int(b) for b in digest[:16]]
            seq = np.random.SeedSequence(entropy)
            self._cache[name] = VariateGenerator(np.random.default_rng(seq))
        return self._cache[name]

    def streams(self, names: Iterable[str]) -> Dict[str, VariateGenerator]:
        """Return a dictionary of streams for all ``names``."""
        return {name: self.stream(name) for name in names}

    def spawn(self, offset: int) -> "RandomStreams":
        """Create a new :class:`RandomStreams` for an independent replication."""
        return RandomStreams(seed=self._seed * 1_000_003 + int(offset))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self._seed} streams={sorted(self._cache)}>"
