"""Random-variate generation with independent, reproducible streams.

Simulation studies need *independent* random number streams per stochastic
component (arrival process, service times, destination choice, ...) so that
variance-reduction techniques such as common random numbers work and results
are reproducible bit-for-bit from a single master seed.

:class:`RandomStreams` spawns named substreams from a master seed using
NumPy's :class:`~numpy.random.SeedSequence`; :class:`VariateGenerator` wraps
one stream with the variate families the simulator needs.

Batched draws
-------------
``np.random.Generator`` methods cost ~1 µs per *call* regardless of how
many variates they return, so drawing one scalar at a time (as a simulator
hot loop naturally does) is ~10x slower than drawing blocks.  The
``*_stream`` methods of :class:`VariateGenerator` return a
:class:`VariateStream` — a callable that serves variates from a pre-drawn
block of ``block_size`` and refills on exhaustion.  NumPy's vectorized
draws consume *exactly* the same underlying bit stream as the equivalent
sequence of scalar calls (the C implementations loop over the same
per-element kernels), so a batched stream reproduces the scalar sequence
bit-for-bit for every seed — this is asserted by the test suite.

The one correctness rule: a batched stream reads ahead on its underlying
:class:`~numpy.random.Generator`, so that generator must not be shared
with any other consumer (scalar or batched) while the stream is in use —
interleaved draws would observe the post-lookahead state.  The simulator
guarantees this by dedicating one named substream per (component,
distribution) pair.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams", "VariateGenerator", "VariateStream", "DEFAULT_BLOCK_SIZE"]

#: Default number of variates pre-drawn per refill of a :class:`VariateStream`.
DEFAULT_BLOCK_SIZE = 1024


class VariateStream:
    """Serve variates one at a time from pre-drawn blocks.

    Parameters
    ----------
    draw:
        ``draw(n)`` returns a list of ``n`` variates, consuming the
        underlying generator exactly as ``n`` successive scalar draws
        would.
    block_size:
        Variates drawn per refill.

    Calling the stream returns the next variate; blocks are refilled
    lazily, so a stream that is never called never touches the generator.
    Refills grow geometrically from a small first block up to
    ``block_size``, so short runs pay for few wasted lookahead draws while
    long runs amortize the per-refill call overhead over large blocks.
    (Block boundaries only group the draws; the consumed bit stream — and
    therefore every served variate — is independent of the block size.)
    """

    __slots__ = ("_draw", "_block_size", "_next_block", "_buffer", "_pos")

    #: First refill size (doubled per refill until ``block_size``).
    INITIAL_BLOCK = 64

    def __init__(self, draw: Callable[[int], List], block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size!r}")
        self._draw = draw
        self._block_size = block_size
        self._next_block = min(self.INITIAL_BLOCK, block_size)
        self._buffer: List = []
        self._pos = 0

    def __call__(self):
        """Return the next variate, refilling the block if exhausted."""
        pos = self._pos
        buffer = self._buffer
        if pos >= len(buffer):
            block = self._next_block
            if block < self._block_size:
                self._next_block = min(block * 2, self._block_size)
            buffer = self._buffer = self._draw(block)
            pos = 0
        self._pos = pos + 1
        return buffer[pos]

    @property
    def remaining(self) -> int:
        """Number of variates left in the current block."""
        return len(self._buffer) - self._pos

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VariateStream block={self._block_size} remaining={self.remaining}>"


class VariateGenerator:
    """Random-variate generator bound to a single independent stream.

    Parameters
    ----------
    rng:
        A :class:`numpy.random.Generator` providing the underlying bits.

    All rate/mean parameters use the same time unit as the simulation
    (seconds in the multi-cluster simulator).
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        """The wrapped NumPy generator (for advanced use)."""
        return self._rng

    # -- continuous -----------------------------------------------------------

    def exponential(self, mean: float) -> float:
        """Draw an exponential variate with the given ``mean`` (> 0)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self._rng.exponential(mean))

    def exponential_rate(self, rate: float) -> float:
        """Draw an exponential variate with the given ``rate`` (> 0)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        return float(self._rng.exponential(1.0 / rate))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw a uniform variate on ``[low, high)``."""
        if high < low:
            raise ValueError(f"high (={high!r}) must be >= low (={low!r})")
        return float(self._rng.uniform(low, high))

    def erlang(self, k: int, mean: float) -> float:
        """Draw an Erlang-k variate with overall ``mean``."""
        if k <= 0:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        return float(self._rng.gamma(shape=k, scale=mean / k))

    def hyperexponential(self, means: Sequence[float], probs: Sequence[float]) -> float:
        """Draw from a hyperexponential mixture of exponentials."""
        means = np.asarray(means, dtype=float)
        probs = np.asarray(probs, dtype=float)
        if means.shape != probs.shape or means.ndim != 1 or means.size == 0:
            raise ValueError("means and probs must be equal-length 1-D sequences")
        if np.any(means <= 0):
            raise ValueError("all means must be positive")
        if not np.isclose(probs.sum(), 1.0):
            raise ValueError(f"probabilities must sum to 1, got {probs.sum()!r}")
        branch = self._rng.choice(means.size, p=probs)
        return float(self._rng.exponential(means[branch]))

    def deterministic(self, value: float) -> float:
        """Return ``value`` unchanged (degenerate distribution)."""
        return float(value)

    def normal(self, mean: float, std: float) -> float:
        """Draw a normal variate (used only by extension workloads)."""
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std!r}")
        return float(self._rng.normal(mean, std))

    def lognormal(self, mean: float, sigma: float) -> float:
        """Draw a lognormal variate parameterised by its underlying normal."""
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        return float(self._rng.lognormal(mean, sigma))

    def weibull(self, shape: float, mean: float) -> float:
        """Draw a Weibull variate with the given shape and *mean*.

        numpy's ``weibull(shape)`` is the scale-1 form with mean
        ``Γ(1 + 1/shape)``; rescaling by ``mean / Γ(1 + 1/shape)`` gives a
        mean-parameterised family consistent with :meth:`exponential`
        (``shape == 1`` degenerates to the exponential with that mean).
        """
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape!r}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return float(self._rng.weibull(shape)) * scale

    # -- discrete -------------------------------------------------------------

    def integer(self, low: int, high: int) -> int:
        """Draw a uniform integer from ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"high (={high!r}) must be >= low (={low!r})")
        return int(self._rng.integers(low, high + 1))

    def choice(self, items: Sequence, probs: Optional[Sequence[float]] = None):
        """Pick one element of ``items`` (optionally weighted by ``probs``)."""
        if len(items) == 0:
            raise ValueError("cannot choose from an empty sequence")
        idx = self._rng.choice(len(items), p=None if probs is None else np.asarray(probs, float))
        return items[int(idx)]

    def bernoulli(self, p: float) -> bool:
        """Return ``True`` with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must lie in [0, 1], got {p!r}")
        return bool(self._rng.random() < p)

    def geometric(self, p: float) -> int:
        """Draw a geometric variate (number of trials until first success)."""
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must lie in (0, 1], got {p!r}")
        return int(self._rng.geometric(p))

    # -- batched streams ------------------------------------------------------
    #
    # Each factory validates its parameters once and returns a
    # :class:`VariateStream` whose refills are vectorized draws.  The block
    # draws consume the identical bit stream as repeated scalar calls, so
    # ``[s() for _ in range(n)] == [gen.exponential(m) for _ in range(n)]``
    # for generators seeded identically.  ``.tolist()`` converts the block
    # to plain Python floats/ints in C, so serving a variate is a list
    # index, not an ndarray scalar boxing.

    def exponential_stream(self, mean: float, block_size: int = DEFAULT_BLOCK_SIZE) -> VariateStream:
        """Batched equivalent of repeated :meth:`exponential` calls."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        rng = self._rng
        return VariateStream(lambda n: rng.exponential(mean, n).tolist(), block_size)

    def exponential_rate_stream(self, rate: float, block_size: int = DEFAULT_BLOCK_SIZE) -> VariateStream:
        """Batched equivalent of repeated :meth:`exponential_rate` calls."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        return self.exponential_stream(1.0 / rate, block_size)

    def uniform_stream(
        self, low: float = 0.0, high: float = 1.0, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> VariateStream:
        """Batched equivalent of repeated :meth:`uniform` calls."""
        if high < low:
            raise ValueError(f"high (={high!r}) must be >= low (={low!r})")
        rng = self._rng
        return VariateStream(lambda n: rng.uniform(low, high, n).tolist(), block_size)

    def integer_stream(self, low: int, high: int, block_size: int = DEFAULT_BLOCK_SIZE) -> VariateStream:
        """Batched equivalent of repeated :meth:`integer` calls."""
        if high < low:
            raise ValueError(f"high (={high!r}) must be >= low (={low!r})")
        rng = self._rng
        return VariateStream(lambda n: rng.integers(low, high + 1, n).tolist(), block_size)

    def erlang_stream(self, k: int, mean: float, block_size: int = DEFAULT_BLOCK_SIZE) -> VariateStream:
        """Batched equivalent of repeated :meth:`erlang` calls."""
        if k <= 0:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        rng = self._rng
        scale = mean / k
        return VariateStream(lambda n: rng.gamma(k, scale, n).tolist(), block_size)


class RandomStreams:
    """Factory of independent, named random streams derived from one seed.

    Parameters
    ----------
    seed:
        Master seed.  The same master seed always yields the same named
        streams regardless of the order in which they are requested.

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.stream("arrivals")
    >>> service = streams.stream("service")
    >>> arrivals.exponential(1.0) != service.exponential(1.0)
    True
    """

    __slots__ = ("_seed", "_cache")

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._cache: Dict[str, VariateGenerator] = {}

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def stream(self, name: str) -> VariateGenerator:
        """Return the stream for ``name``, creating it deterministically."""
        generator = self._cache.get(name)
        if generator is None:
            # Deterministically derive a child seed from (master seed, name).
            # Plain-bytes arithmetic produces the exact entropy values of
            # the original ``np.frombuffer(...).sum()`` formulation without
            # the per-stream ndarray round-trips (streams are created
            # lazily inside simulator hot starts).
            digest = name.encode("utf-8")
            entropy = [self._seed, sum(digest), len(name), *digest[:16]]
            seq = np.random.SeedSequence(entropy)
            generator = self._cache[name] = VariateGenerator(np.random.default_rng(seq))
        return generator

    def streams(self, names: Iterable[str]) -> Dict[str, VariateGenerator]:
        """Return a dictionary of streams for all ``names``."""
        return {name: self.stream(name) for name in names}

    def spawn(self, offset: int) -> "RandomStreams":
        """Create a new :class:`RandomStreams` for an independent replication."""
        # Deliberate affine derivation: each stream still passes through the
        # SeedSequence hash in __init__, and the golden traces pin the exact
        # child seeds.
        return RandomStreams(seed=self._seed * 1_000_003 + int(offset))  # repro: noqa REP103

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self._seed} streams={sorted(self._cache)}>"
