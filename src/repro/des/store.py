"""Store and container primitives for producer/consumer process patterns.

:class:`Store` holds discrete Python objects (messages); :class:`FilterStore`
lets consumers wait for items matching a predicate; :class:`Container` models
a continuous quantity (tokens, credits).  The multi-cluster simulator uses
stores as the input buffers of its service centres.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from .events import Event, URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Environment

__all__ = ["StorePut", "StoreGet", "Store", "FilterStore", "ContainerPut", "ContainerGet", "Container"]


class StorePut(Event):
    """Event for putting ``item`` into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """Event for taking an item out of a :class:`Store`.

    For :class:`FilterStore` the optional ``filter`` predicate restricts
    which items satisfy the request.
    """

    __slots__ = ("filter",)

    def __init__(self, store: "Store", filter: Optional[Callable[[Any], bool]] = None) -> None:
        super().__init__(store.env)
        self.filter = filter
        store._get_queue.append(self)
        store._trigger()


class Store:
    """An unbounded or bounded FIFO buffer of Python objects.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of stored items (default: unbounded).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    # -- public API ---------------------------------------------------------

    @property
    def capacity(self) -> float:
        """Maximum number of items the store can hold."""
        return self._capacity

    def put(self, item: Any) -> StorePut:
        """Put ``item`` into the store (waits if the store is full)."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Take the oldest item out of the store (waits if empty)."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    # -- matching engine ------------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed(None, priority=URGENT)
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0), priority=URGENT)
            return True
        return False

    def _trigger(self) -> None:
        """Match pending puts and gets until no more progress can be made."""
        progress = True
        while progress:
            progress = False
            # Serve queued gets first so puts into a full store can proceed.
            for get_ev in list(self._get_queue):
                if get_ev.triggered:
                    self._get_queue.remove(get_ev)
                    continue
                if self._do_get(get_ev):
                    self._get_queue.remove(get_ev)
                    progress = True
            for put_ev in list(self._put_queue):
                if put_ev.triggered:
                    self._put_queue.remove(put_ev)
                    continue
                if self._do_put(put_ev):
                    self._put_queue.remove(put_ev)
                    progress = True

    def __repr__(self) -> str:
        return f"<{type(self).__name__} items={len(self.items)} capacity={self._capacity}>"


class FilterStore(Store):
    """A :class:`Store` whose consumers can wait for items matching a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> StoreGet:  # type: ignore[override]
        """Take the oldest item satisfying ``filter`` (waits until one appears)."""
        return StoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        predicate = event.filter or (lambda item: True)
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                event.succeed(item, priority=URGENT)
                return True
        return False


class ContainerPut(Event):
    """Event for adding ``amount`` to a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount!r}")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._trigger()


class ContainerGet(Event):
    """Event for removing ``amount`` from a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount!r}")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._trigger()


class Container:
    """A continuous quantity with bounded capacity (e.g. credits, buffer space)."""

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        if init < 0 or init > capacity:
            raise ValueError(f"init must lie in [0, capacity], got {init!r}")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._put_queue: List[ContainerPut] = []
        self._get_queue: List[ContainerGet] = []

    @property
    def capacity(self) -> float:
        """Maximum level."""
        return self._capacity

    @property
    def level(self) -> float:
        """Current level."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; waits while it would exceed the capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; waits while the level is insufficient."""
        return ContainerGet(self, amount)

    def _do_put(self, event: ContainerPut) -> bool:
        if self._level + event.amount <= self._capacity:
            self._level += event.amount
            event.succeed(None, priority=URGENT)
            return True
        return False

    def _do_get(self, event: ContainerGet) -> bool:
        if self._level >= event.amount:
            self._level -= event.amount
            event.succeed(None, priority=URGENT)
            return True
        return False

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            for get_ev in list(self._get_queue):
                if get_ev.triggered:
                    self._get_queue.remove(get_ev)
                    continue
                if self._do_get(get_ev):
                    self._get_queue.remove(get_ev)
                    progress = True
            for put_ev in list(self._put_queue):
                if put_ev.triggered:
                    self._put_queue.remove(put_ev)
                    continue
                if self._do_put(put_ev):
                    self._put_queue.remove(put_ev)
                    progress = True

    def __repr__(self) -> str:
        return f"<Container level={self._level!r} capacity={self._capacity!r}>"
