"""Event primitives for the discrete-event simulation kernel.

The kernel follows the SimPy programming model: simulation *processes* are
Python generators that ``yield`` :class:`Event` objects and are resumed when
those events are *processed* by the environment.  This module defines the
event classes; the scheduler lives in :mod:`repro.des.core` and the process
wrapper in :mod:`repro.des.process`.

Semantics
---------
An event goes through three states:

``untriggered``
    Created but not yet scheduled.
``triggered``
    Scheduled in the environment's event queue with a value (or an
    exception), waiting for its scheduled time to be reached.
``processed``
    Popped from the queue; all callbacks have run and waiting processes have
    been resumed.

Events may *succeed* (carry a value) or *fail* (carry an exception that is
re-raised inside every waiting process).
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "AbsoluteTimeout",
    "Initialize",
    "ConditionValue",
    "Condition",
    "AllOf",
    "AnyOf",
]


#: Sentinel marking an event whose value has not been set yet.
PENDING: object = object()

#: Scheduling priority for events that must run before same-time events.
URGENT: int = 0

#: Default scheduling priority.
NORMAL: int = 1


class Event:
    """A single outcome that simulation processes can wait for.

    Parameters
    ----------
    env:
        The :class:`~repro.des.core.Environment` the event belongs to.

    Notes
    -----
    ``Event`` instances are single-shot: once triggered they cannot be
    triggered again.  Callbacks are plain callables invoked with the event as
    their only argument after the event has been popped from the queue.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value (or exception) the event was triggered with."""
        if self._value is PENDING:
            raise AttributeError(f"Value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """``True`` if a failure was caught by some waiting process."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event itself so calls can be chained or yielded.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as *failed* with ``exception``.

        The exception is re-raised in every process waiting on the event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of ``event`` onto this event and schedule it.

        Used as a callback to chain events together.
        """
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- misc -------------------------------------------------------------

    def __repr__(self) -> str:
        detail = ""
        if self.triggered:
            detail = f" value={self._value!r} ok={self._ok}"
        return f"<{type(self).__name__}{detail} at 0x{id(self):x}>"

    # Support ``ev1 & ev2`` / ``ev1 | ev2`` composition like SimPy.
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class Timeout(Event):
    """An event that fires after a fixed simulated ``delay``.

    Timeouts are triggered at creation time; they cannot fail or be
    cancelled.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        # Timeouts dominate event traffic (one per arrival and per service
        # completion), so the generic Event/schedule path is inlined here:
        # one validation, one heap push, no delegation.
        delay = float(delay)
        if delay < 0:
            raise ValueError(f"Negative delay {delay!r} is not allowed")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self._delay = delay
        heappush(env._queue, (env._now + delay, NORMAL, next(env._eid), self))

    @property
    def delay(self) -> float:
        """The delay the timeout was created with."""
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay!r} at 0x{id(self):x}>"


class AbsoluteTimeout(Event):
    """An event that fires at an absolute simulated time ``at``.

    The simulation layer schedules departures at exact, precomputed times
    (``start + service_time``); expressing them as relative delays would
    re-derive the time as ``now + (at - now)``, which is not the same float.
    Like :class:`Timeout`, the event is triggered at creation and inlines
    its heap insertion.
    """

    __slots__ = ("_at",)

    def __init__(self, env: "Environment", at: float, value: Any = None) -> None:
        at = float(at)
        if at < env._now:
            raise ValueError(f"Cannot schedule at {at!r}, before current time {env._now!r}")
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._defused = False
        self._at = at
        heappush(env._queue, (at, NORMAL, next(env._eid), self))

    @property
    def at(self) -> float:
        """The absolute time the event fires at."""
        return self._at

    def __repr__(self) -> str:
        return f"<AbsoluteTimeout at={self._at!r} at 0x{id(self):x}>"


class Initialize(Event):
    """Internal event used to start a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Event") -> None:
        super().__init__(env)
        self.callbacks = [process._resume]  # type: ignore[attr-defined]
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class ConditionValue:
    """Ordered mapping of events to values produced by a :class:`Condition`.

    Behaves like a read-only dictionary keyed by the original event objects
    and preserves the order in which events were passed to the condition.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self) -> Iterable[Event]:
        return iter(self.events)

    def values(self) -> Iterable[Any]:
        return (event.value for event in self.events)

    def items(self) -> Iterable[tuple]:
        return ((event, event.value) for event in self.events)

    def todict(self) -> dict:
        """Return a plain ``{event: value}`` dictionary."""
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event that fires when a predicate over child events holds.

    The predicate ``evaluate(events, count)`` receives the list of child
    events and the number already processed.  :class:`AllOf` and
    :class:`AnyOf` are the two standard instantiations.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("Cannot mix events from different environments")

        # Immediately check already-processed children, then subscribe.
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)  # type: ignore[union-attr]

        if not self._events and not self.triggered:
            # An empty condition is trivially satisfied.
            self.succeed(ConditionValue())

        # Ensure the composite value is built once the condition fires.
        if self.callbacks is not None:
            self.callbacks.append(self._build_value)

    # -- internal ---------------------------------------------------------

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.processed or event.triggered:
                value.events.append(event)

    def _build_value(self, _event: Event) -> None:
        self._remove_callbacks()
        if self._ok:
            value = ConditionValue()
            self._populate_value(value)
            self._value = value

    def _remove_callbacks(self) -> None:
        for event in self._events:
            if event.callbacks is not None and self._check in event.callbacks:
                event.callbacks.remove(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            # Propagate the first failure.
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())

    # -- predicates -------------------------------------------------------

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Predicate used by :class:`AllOf`."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Predicate used by :class:`AnyOf`."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that fires once *all* child events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once *any* child event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
