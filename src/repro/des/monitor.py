"""Observation and tracing utilities for simulations.

:class:`Monitor` records tagged scalar observations (e.g. per-message
latency), :class:`TimeWeightedMonitor` records piecewise-constant signals
(e.g. queue length over time) and integrates them correctly, and
:class:`Tracer` records a structured event log that tests and debugging
tools can inspect.
"""

from __future__ import annotations

import math
import warnings
from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["Monitor", "TimeWeightedMonitor", "Tracer", "TraceRecord"]


def _as_double_array(data: Iterable[float]) -> array:
    """Coerce ``data`` to a C-double :class:`array.array` in a single pass.

    ndarray input is converted with one C-level memcpy (no per-element
    Python float boxing); any other iterable — including one-shot
    generators — is consumed exactly once by the ``array`` constructor.
    """
    if isinstance(data, array) and data.typecode == "d":
        return data
    if isinstance(data, np.ndarray):
        if data.ndim != 1:
            raise ValueError(f"expected a 1-D array, got shape {data.shape!r}")
        out = array("d")
        out.frombytes(np.ascontiguousarray(data, dtype=np.float64).tobytes())
        return out
    return array("d", data)


class Monitor:
    """Record scalar observations and expose summary statistics.

    The monitor keeps all observations (time, value) so that warm-up
    truncation and batching can be applied afterwards; for extremely long
    runs use :meth:`summary` incrementally instead.

    Storage is a pair of C-double :class:`array.array` buffers: recording
    appends a native double (no per-observation Python ``float`` boxing),
    and the statistics run on transient zero-copy NumPy views of the
    buffers instead of rebuilding an ndarray from a list of boxed floats
    per call.
    """

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "monitor") -> None:
        self.name = name
        self._times = array("d")
        self._values = array("d")

    # -- recording ------------------------------------------------------------

    def record(self, time: float, value: float) -> None:
        """Record ``value`` observed at simulated ``time``."""
        self._times.append(time)
        self._values.append(value)

    def extend(self, times: Iterable[float], values: Iterable[float]) -> None:
        """Record many observations at once.

        Each input is materialized exactly once (ndarrays via a C memcpy,
        generators consumed in a single pass); a length mismatch raises
        ``ValueError`` before either buffer is modified.
        """
        times = _as_double_array(times)
        values = _as_double_array(values)
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        self._times.extend(times)
        self._values.extend(values)

    def reset(self) -> None:
        """Discard all observations."""
        del self._times[:]
        del self._values[:]

    # -- access ---------------------------------------------------------------

    def _view(self) -> np.ndarray:
        """Transient zero-copy view of the values buffer (internal).

        The view exports the buffer of ``self._values``, which blocks
        appends for as long as it is alive — callers must not store it.
        """
        return np.frombuffer(self._values, dtype=np.float64)

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        """Observation times as an array (an independent snapshot)."""
        return np.frombuffer(self._times, dtype=np.float64).copy()

    @property
    def values(self) -> np.ndarray:
        """Observation values as an array (an independent snapshot)."""
        return np.frombuffer(self._values, dtype=np.float64).copy()

    def mean(self) -> float:
        """Sample mean of the observations (NaN when empty)."""
        return float(self._view().mean()) if self._values else math.nan

    def variance(self) -> float:
        """Unbiased sample variance (NaN when fewer than two observations)."""
        return float(self._view().var(ddof=1)) if len(self._values) > 1 else math.nan

    def std(self) -> float:
        """Sample standard deviation."""
        var = self.variance()
        return math.sqrt(var) if not math.isnan(var) else math.nan

    def minimum(self) -> float:
        """Smallest observation (NaN when empty)."""
        return float(self._view().min()) if self._values else math.nan

    def maximum(self) -> float:
        """Largest observation (NaN when empty)."""
        return float(self._view().max()) if self._values else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the observations."""
        if not self._values:
            return math.nan
        return float(np.percentile(self._view(), q))

    def truncated(self, skip: int) -> "Monitor":
        """Return a copy with the first ``skip`` observations removed (warm-up)."""
        if skip < 0:
            raise ValueError(f"skip must be non-negative, got {skip!r}")
        out = Monitor(self.name)
        out._times = self._times[skip:]
        out._values = self._values[skip:]
        return out

    def summary(self) -> Dict[str, float]:
        """Return a dictionary with the usual summary statistics."""
        return {
            "count": float(self.count),
            "mean": self.mean(),
            "std": self.std(),
            "min": self.minimum(),
            "max": self.maximum(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def batch_means_interval(self, num_batches: int, confidence: float = 0.95):
        """Batch-means confidence interval over the retained observations.

        Part of the :class:`repro.stats.sinks.StatsSink` protocol; delegates
        to :func:`repro.stats.intervals.batch_means` on the full value
        array, so it is bit-identical to calling that function directly.
        """
        from ..stats.intervals import batch_means

        return batch_means(self.values, num_batches=num_batches, confidence=confidence)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"<Monitor {self.name!r} n={self.count} mean={self.mean():.6g}>"


class TimeWeightedMonitor:
    """Record a piecewise-constant signal and compute its time average.

    Typical use: queue length or number of busy servers over time.  Values
    are integrated from the time they are set until the next change.
    """

    __slots__ = ("name", "_last_time", "_last_value", "_area", "_max", "_min", "_start_time")

    def __init__(self, name: str = "level", initial: float = 0.0, start_time: float = 0.0) -> None:
        self.name = name
        self._last_time = float(start_time)
        self._last_value = float(initial)
        self._area = 0.0
        self._max = float(initial)
        self._min = float(initial)
        self._start_time = float(start_time)

    def update(self, time: float, value: float) -> None:
        """Set the signal to ``value`` at simulated ``time``."""
        time = float(time)
        last_time = self._last_time
        if time < last_time:
            raise ValueError(
                f"time went backwards: {time!r} < {last_time!r} in monitor {self.name!r}"
            )
        value = float(value)
        self._area += self._last_value * (time - last_time)
        self._last_time = time
        self._last_value = value
        if value > self._max:
            self._max = value
        elif value < self._min:
            self._min = value

    def update_unchecked(self, time: float, value: float) -> None:
        """:meth:`update` without coercion or the went-backwards check.

        For event-driven hot paths where ``time`` is the simulation clock
        (monotonic by construction) and ``value`` is already a float; keeps
        the integration bookkeeping in one place instead of letting callers
        inline it.
        """
        self._area += self._last_value * (time - self._last_time)
        self._last_time = time
        self._last_value = value
        if value > self._max:
            self._max = value
        elif value < self._min:
            self._min = value

    def increment(self, time: float, delta: float = 1.0) -> None:
        """Add ``delta`` to the current level at ``time``."""
        self.update(time, self._last_value + delta)

    def decrement(self, time: float, delta: float = 1.0) -> None:
        """Subtract ``delta`` from the current level at ``time``."""
        self.update(time, self._last_value - delta)

    @property
    def current(self) -> float:
        """The current level."""
        return self._last_value

    @property
    def maximum(self) -> float:
        """Largest level seen so far."""
        return self._max

    @property
    def minimum(self) -> float:
        """Smallest level seen so far."""
        return self._min

    def time_average(self, now: Optional[float] = None) -> float:
        """Time-average of the signal from the start time until ``now``."""
        end = self._last_time if now is None else float(now)
        if end < self._last_time:
            raise ValueError("now must not be before the last update")
        total_area = self._area + self._last_value * (end - self._last_time)
        horizon = end - self._start_time
        if horizon <= 0:
            return self._last_value
        return total_area / horizon

    def __repr__(self) -> str:
        return f"<TimeWeightedMonitor {self.name!r} level={self._last_value!r}>"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A single structured trace entry."""

    time: float
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Structured event log with optional category filtering and a size cap.

    Tracing is off by default (``enabled=False``) so that it costs a single
    attribute check per potential record in hot paths.

    ``max_records`` bounds memory on long traced runs: when set, the log
    becomes a ring buffer that keeps only the most recent ``max_records``
    entries.  The first time an old record is dropped a single
    ``RuntimeWarning`` is emitted; :attr:`dropped` counts every drop since
    the last :meth:`clear`.
    """

    __slots__ = ("enabled", "max_records", "_categories", "_records", "_dropped", "_warned")

    def __init__(
        self,
        enabled: bool = False,
        categories: Optional[Iterable[str]] = None,
        max_records: Optional[int] = None,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records!r}")
        self.enabled = enabled
        self.max_records = max_records
        self._categories = set(categories) if categories is not None else None
        self._records: Deque[TraceRecord] = deque(maxlen=max_records)
        self._dropped = 0
        self._warned = False

    def log(self, time: float, category: str, message: str, **data: Any) -> None:
        """Append a record if tracing is enabled and the category is selected."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self._dropped += 1
            if not self._warned:
                self._warned = True
                warnings.warn(
                    f"Tracer reached max_records={records.maxlen}; oldest records "
                    "are being dropped (ring buffer)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        records.append(TraceRecord(float(time), category, message, dict(data)))

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        """All retained entries, in order (oldest may have been dropped)."""
        return tuple(self._records)

    @property
    def dropped(self) -> int:
        """Number of records dropped by the ring buffer since the last clear."""
        return self._dropped

    def filter(self, category: str) -> List[TraceRecord]:
        """Return only the retained records of the given ``category``."""
        return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        """Discard all records and reset the drop counter."""
        self._records.clear()
        self._dropped = 0
        self._warned = False

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return f"<Tracer enabled={self.enabled} records={len(self._records)}>"
