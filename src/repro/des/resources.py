"""Shared-resource primitives for the DES kernel.

A :class:`Resource` models a service station with a fixed number of
capacity slots and a FIFO wait queue — exactly what the paper's
store-and-forward communication networks are: a message *requests* the
network, holds it for its (exponentially distributed) transmission time, and
*releases* it.  :class:`PriorityResource` adds priority levels and
:class:`PreemptiveResource` additionally allows preemption of lower-priority
users, which the extension studies use for management traffic.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, List, Optional

from ..errors import SimulationError
from .events import Event, URGENT
from .process import Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Environment

__all__ = [
    "Request",
    "Release",
    "PriorityRequest",
    "Preempted",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
]


class Request(Event):
    """Request one capacity slot of a :class:`Resource`.

    The event succeeds once the slot is granted.  Request objects are
    context managers so they release automatically::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "proc", "usage_since")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: Process that issued the request (for preemption bookkeeping).
        self.proc: Optional[Process] = resource.env.active_process
        #: Simulation time at which the slot was granted (``None`` if queued).
        self.usage_since: Optional[float] = None
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if not self.triggered or self.usage_since is not None or self.processed:
            self.cancel_or_release()

    def cancel_or_release(self) -> None:
        """Release the slot if held, otherwise withdraw from the queue."""
        self.resource.release(self)

    def __repr__(self) -> str:
        state = "held" if self.usage_since is not None else "queued"
        return f"<Request of {self.resource!r} ({state}) at 0x{id(self):x}>"


class PriorityRequest(Request):
    """A :class:`Request` carrying a priority and preemption flag.

    Lower ``priority`` values are served first; ties are broken by request
    time and then insertion order (FIFO).
    """

    __slots__ = ("priority", "preempt", "time", "key")

    def __init__(self, resource: "Resource", priority: int = 0, preempt: bool = True) -> None:
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        self.key = (priority, self.time, next(resource._counter), not preempt)
        super().__init__(resource)


class Release(Event):
    """Release a previously granted :class:`Request` (succeeds immediately)."""

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)
        if not self.triggered:
            self.succeed(None, priority=URGENT)


class Preempted:
    """Cause object delivered with the :class:`Interrupt` on preemption."""

    __slots__ = ("by", "usage_since", "resource")

    def __init__(self, by: Optional[Process], usage_since: Optional[float], resource: "Resource") -> None:
        #: The preempting process.
        self.by = by
        #: Time at which the preempted process acquired the resource.
        self.usage_since = usage_since
        #: The resource on which preemption happened.
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Preempted by={self.by!r} since={self.usage_since!r}>"


class Resource:
    """A capacity-limited resource with a FIFO wait queue.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of simultaneous users (default 1, i.e. a single server).

    Attributes
    ----------
    users:
        Requests currently holding a slot.
    queue:
        Requests waiting for a slot, in service order.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity!r}")
        self.env = env
        self._capacity = int(capacity)
        self.users: List[Request] = []
        self.queue: List[Request] = []
        self._counter = count()

    # -- public API ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request a slot; returns an event that fires when it is granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release ``request``'s slot (or withdraw it from the queue)."""
        return Release(self, request)

    # -- scheduling internals -------------------------------------------------

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            self.queue.append(request)

    def _grant(self, request: Request) -> None:
        self.users.append(request)
        request.usage_since = self.env.now
        request.succeed(None, priority=URGENT)

    def _do_release(self, release: Release) -> None:
        request = release.request
        if request in self.users:
            self.users.remove(request)
            request.usage_since = None
        elif request in self.queue:
            # Withdrawn before being granted.
            self.queue.remove(request)
            return
        self._trigger_next()

    def _trigger_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.pop(0)
            if nxt.triggered:  # pragma: no cover - defensive
                continue
            self._grant(nxt)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} capacity={self._capacity} "
            f"users={len(self.users)} queued={len(self.queue)}>"
        )


class PriorityResource(Resource):
    """Resource whose wait queue is ordered by request priority."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._heap: List[tuple] = []

    def request(self, priority: int = 0, preempt: bool = False) -> PriorityRequest:  # type: ignore[override]
        """Request a slot with the given ``priority`` (lower = more urgent)."""
        return PriorityRequest(self, priority=priority, preempt=preempt)

    def _do_request(self, request: Request) -> None:
        if not isinstance(request, PriorityRequest):
            raise SimulationError("PriorityResource requires PriorityRequest objects")
        if len(self.users) < self._capacity:
            self._grant(request)
        else:
            heapq.heappush(self._heap, (request.key, request))
            self.queue.append(request)

    def _do_release(self, release: Release) -> None:
        request = release.request
        if request in self.users:
            self.users.remove(request)
            request.usage_since = None
        elif request in self.queue:
            self.queue.remove(request)
            self._heap = [(k, r) for (k, r) in self._heap if r is not request]
            heapq.heapify(self._heap)
            return
        self._trigger_next()

    def _trigger_next(self) -> None:
        while self._heap and len(self.users) < self._capacity:
            _, nxt = heapq.heappop(self._heap)
            if nxt not in self.queue:
                continue
            self.queue.remove(nxt)
            if nxt.triggered:  # pragma: no cover - defensive
                continue
            self._grant(nxt)


class PreemptiveResource(PriorityResource):
    """Priority resource where urgent requests may preempt current users.

    On preemption the victim process receives an :class:`Interrupt` whose
    cause is a :class:`Preempted` instance describing who preempted it.
    """

    def _do_request(self, request: Request) -> None:
        if not isinstance(request, PriorityRequest):
            raise SimulationError("PreemptiveResource requires PriorityRequest objects")
        if len(self.users) >= self._capacity and request.preempt:
            # Find the weakest current user (highest priority value / latest).
            victims = [u for u in self.users if isinstance(u, PriorityRequest)]
            if victims:
                victim = max(victims, key=lambda u: u.key)
                if victim.key > request.key:
                    self.users.remove(victim)
                    if victim.proc is not None and victim.proc.is_alive:
                        victim.proc.interrupt(
                            Preempted(request.proc, victim.usage_since, self)
                        )
                    victim.usage_since = None
        super()._do_request(request)


# Re-export Interrupt for convenience so simulator code can import it from
# ``repro.des.resources`` alongside Preempted.
_ = Interrupt
