"""Generator-based simulation processes and interrupts.

A *process* wraps a Python generator.  The generator yields
:class:`~repro.des.events.Event` instances; whenever a yielded event is
processed the generator is resumed with the event's value (or the event's
exception is thrown into it).  The process itself is an event that fires when
the generator terminates, so processes can wait for one another.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import SimulationError
from .events import Event, Initialize, NORMAL, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Environment

__all__ = ["Interrupt", "Process", "ProcessGenerator"]

#: Type alias for generators usable as process bodies.
ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` passed to :meth:`Process.interrupt` is available via the
    :attr:`cause` property.
    """

    @property
    def cause(self) -> Any:
        """The value passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"


class _InterruptEvent(Event):
    """Internal urgent event delivering an :class:`Interrupt` to a process."""

    __slots__ = ("_process",)

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self._process = process
        self.callbacks = [self._deliver]
        env.schedule(self, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        """Detach the process from its current target and resume it with the interrupt."""
        process = self._process
        if not process.is_alive:
            # The process terminated before the interrupt could be delivered.
            return
        target = process._target
        if target is not None and target.callbacks is not None:
            # Stop the original event from resuming the process a second time.
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        process._resume(event)


class Process(Event):
    """Execute a generator as a simulation process.

    The process is itself an event: it succeeds with the generator's return
    value when the generator finishes, or fails with the exception the
    generator raised (unless some other process is waiting for it, in which
    case the exception is delivered there).

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        The generator to execute.  It must yield :class:`Event` objects.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event the process is currently waiting for (``None`` when the
        #: process is being initialised or has terminated).
        self._target: Optional[Event] = Initialize(env, self)

    # -- introspection ----------------------------------------------------

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the wrapped generator has not terminated."""
        return self._value is PENDING

    @property
    def name(self) -> str:
        """Name of the wrapped generator function."""
        return self._generator.__name__

    def __repr__(self) -> str:
        return f"<Process({self.name}) object at 0x{id(self):x}>"

    # -- control ----------------------------------------------------------

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process must be alive and must not try to interrupt itself.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("A process is not allowed to interrupt itself")
        _InterruptEvent(self.env, self, cause)

    # -- engine callbacks --------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``.

        This is registered as a callback on whatever event the process is
        waiting for and drives the generator until it yields the next
        untriggered event (or terminates).
        """
        self.env._active_proc = self

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The waited-for event failed: re-raise inside the process.
                    event._defused = True
                    exc = event._value
                    if not isinstance(exc, BaseException):  # pragma: no cover
                        exc = SimulationError(repr(exc))
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                # Generator finished normally.
                self._ok = True
                self._value = stop.value
                self.env.schedule(self, priority=NORMAL)
                self._target = None
                break
            except BaseException as exc:
                # Generator raised: the process event fails.
                self._ok = False
                self._value = exc
                self.env.schedule(self, priority=NORMAL)
                self._target = None
                break

            # The generator yielded ``next_event``.
            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"Process {self.name!r} yielded {next_event!r}, expected an Event"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed: loop immediately with its outcome.
            event = next_event

        self.env._active_proc = None
