"""Discrete-event simulation kernel (SimPy-compatible subset).

This package is the simulation substrate of the reproduction: a
deterministic, generator-based discrete-event kernel with processes,
timeouts, shared resources, stores/containers, independent random streams
and measurement helpers.  The multi-cluster validation simulator in
:mod:`repro.simulation` is written entirely against this API.

Quick example
-------------
>>> from repro.des import Environment, Resource
>>> env = Environment()
>>> link = Resource(env, capacity=1)
>>> done = []
>>> def message(env, link, ident, service_time):
...     with link.request() as req:
...         yield req
...         yield env.timeout(service_time)
...     done.append((ident, env.now))
>>> for i in range(3):
...     _ = env.process(message(env, link, i, 1.0))
>>> env.run()
>>> done
[(0, 1.0), (1, 2.0), (2, 3.0)]
"""

from .core import EmptySchedule, Environment, StopSimulation
from .events import AbsoluteTimeout, AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .monitor import Monitor, TimeWeightedMonitor, TraceRecord, Tracer
from .process import Interrupt, Process
from .resources import (
    Preempted,
    PreemptiveResource,
    PriorityRequest,
    PriorityResource,
    Release,
    Request,
    Resource,
)
from .rng import RandomStreams, VariateGenerator
from .store import Container, FilterStore, Store

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "Event",
    "Timeout",
    "AbsoluteTimeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Preempted",
    "Store",
    "FilterStore",
    "Container",
    "Monitor",
    "TimeWeightedMonitor",
    "Tracer",
    "TraceRecord",
    "RandomStreams",
    "VariateGenerator",
]
