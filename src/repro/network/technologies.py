"""Network technology presets (latency α and bandwidth 1/β).

Table 2 of the paper gives the measured parameters of Gigabit Ethernet and
Fast Ethernet (from Lobosco & de Amorim plus the authors' own tests):

=====================  ========  =====
Item                   Quantity  Unit
=====================  ========  =====
GE latency             80        µs
GE bandwidth           94        MB/s
FE latency             50        µs
FE bandwidth           10.5      MB/s
Switch fabric ports    24        ports
Switch latency         10        µs
Message rate λ         0.25      msg/s
=====================  ========  =====

Additional presets (Myrinet, InfiniBand, 10GE) are provided for extension
studies only; their values are order-of-magnitude numbers from the same era
of cluster interconnect literature and are *not* used by the paper's
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from .units import bandwidth_to_seconds_per_byte, mbps_to_bytes_per_s, us_to_s

__all__ = [
    "NetworkTechnology",
    "GIGABIT_ETHERNET",
    "FAST_ETHERNET",
    "MYRINET",
    "INFINIBAND_4X",
    "TEN_GIGABIT_ETHERNET",
    "TECHNOLOGY_PRESETS",
    "get_technology",
]


@dataclass(frozen=True)
class NetworkTechnology:
    """A link technology characterised by latency and bandwidth.

    Parameters
    ----------
    name:
        Human-readable identifier.
    latency_s:
        One-way small-message latency α in seconds (paper: µs).
    bandwidth_bytes_per_s:
        Sustained large-message bandwidth in bytes/second (paper: MB/s).
    """

    name: str
    latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError(f"latency must be non-negative, got {self.latency_s!r}")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_s!r}"
            )

    # -- derived quantities -----------------------------------------------------

    @property
    def alpha(self) -> float:
        """Latency α in seconds (the symbol used by Eq. 10)."""
        return self.latency_s

    @property
    def beta(self) -> float:
        """Per-byte time β = 1/bandwidth in seconds/byte (Eq. 10)."""
        return bandwidth_to_seconds_per_byte(self.bandwidth_bytes_per_s)

    def transmission_time(self, message_bytes: float) -> float:
        """Point-to-point time ``α + M·β`` for a message of ``message_bytes`` (Eq. 10)."""
        if message_bytes < 0:
            raise ConfigurationError(f"message size must be non-negative, got {message_bytes!r}")
        return self.alpha + message_bytes * self.beta

    def scaled(self, latency_factor: float = 1.0, bandwidth_factor: float = 1.0) -> "NetworkTechnology":
        """Return a technology with scaled latency and bandwidth (ablations)."""
        if latency_factor < 0 or bandwidth_factor <= 0:
            raise ConfigurationError("scale factors must be positive")
        return NetworkTechnology(
            name=f"{self.name}-scaled",
            latency_s=self.latency_s * latency_factor,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s * bandwidth_factor,
        )

    @classmethod
    def from_table_units(cls, name: str, latency_us: float, bandwidth_mb_per_s: float) -> "NetworkTechnology":
        """Construct from the paper's Table-2 units (µs and MB/s)."""
        return cls(
            name=name,
            latency_s=us_to_s(latency_us),
            bandwidth_bytes_per_s=mbps_to_bytes_per_s(bandwidth_mb_per_s),
        )

    def __str__(self) -> str:
        return (
            f"{self.name} (α={self.latency_s * 1e6:.1f} µs, "
            f"BW={self.bandwidth_bytes_per_s / 1e6:.1f} MB/s)"
        )


#: Gigabit Ethernet exactly as in Table 2 of the paper.
GIGABIT_ETHERNET = NetworkTechnology.from_table_units("gigabit-ethernet", 80.0, 94.0)

#: Fast Ethernet exactly as in Table 2 of the paper.
FAST_ETHERNET = NetworkTechnology.from_table_units("fast-ethernet", 50.0, 10.5)

#: Myrinet-2000 order-of-magnitude preset (extension studies only).
MYRINET = NetworkTechnology.from_table_units("myrinet", 9.0, 230.0)

#: InfiniBand 4x order-of-magnitude preset (extension studies only).
INFINIBAND_4X = NetworkTechnology.from_table_units("infiniband-4x", 6.0, 800.0)

#: 10-Gigabit Ethernet order-of-magnitude preset (extension studies only).
TEN_GIGABIT_ETHERNET = NetworkTechnology.from_table_units("10g-ethernet", 12.0, 900.0)

#: All presets by name.
TECHNOLOGY_PRESETS: Dict[str, NetworkTechnology] = {
    tech.name: tech
    for tech in (
        GIGABIT_ETHERNET,
        FAST_ETHERNET,
        MYRINET,
        INFINIBAND_4X,
        TEN_GIGABIT_ETHERNET,
    )
}

# Friendly aliases.
TECHNOLOGY_PRESETS["ge"] = GIGABIT_ETHERNET
TECHNOLOGY_PRESETS["fe"] = FAST_ETHERNET
TECHNOLOGY_PRESETS["ib"] = INFINIBAND_4X
TECHNOLOGY_PRESETS["10ge"] = TEN_GIGABIT_ETHERNET


def get_technology(name: str) -> NetworkTechnology:
    """Look up a technology preset by name (case-insensitive)."""
    key = name.lower()
    if key not in TECHNOLOGY_PRESETS:
        raise ConfigurationError(
            f"unknown network technology {name!r}; known: {sorted(set(TECHNOLOGY_PRESETS))}"
        )
    return TECHNOLOGY_PRESETS[key]
