"""Switch fabric model.

The paper treats the switch fabric as a ``Pr``-port device with a fixed
per-traversal latency ``α_sw`` (Table 2: Pr = 24 ports, α_sw = 10 µs).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .units import us_to_s

__all__ = ["SwitchFabric", "PAPER_SWITCH"]


@dataclass(frozen=True)
class SwitchFabric:
    """A crossbar switch building block.

    Parameters
    ----------
    ports:
        Number of ports ``Pr``.
    latency_s:
        Per-traversal latency ``α_sw`` in seconds.
    """

    ports: int
    latency_s: float

    def __post_init__(self) -> None:
        if self.ports < 2:
            raise ConfigurationError(f"a switch needs at least 2 ports, got {self.ports!r}")
        if self.latency_s < 0:
            raise ConfigurationError(f"switch latency must be non-negative, got {self.latency_s!r}")

    @property
    def alpha_sw(self) -> float:
        """Per-traversal latency in seconds (paper symbol α_sw)."""
        return self.latency_s

    def traversal_time(self, switch_count: float) -> float:
        """Total latency contributed by crossing ``switch_count`` switches."""
        if switch_count < 0:
            raise ConfigurationError(f"switch count must be non-negative, got {switch_count!r}")
        return switch_count * self.latency_s

    @classmethod
    def from_table_units(cls, ports: int, latency_us: float) -> "SwitchFabric":
        """Construct from the paper's Table-2 units (ports, µs)."""
        return cls(ports=ports, latency_s=us_to_s(latency_us))

    def __str__(self) -> str:
        return f"{self.ports}-port switch (α_sw={self.latency_s * 1e6:.1f} µs)"


#: The switch used throughout the paper's evaluation (Table 2).
PAPER_SWITCH = SwitchFabric.from_table_units(ports=24, latency_us=10.0)
