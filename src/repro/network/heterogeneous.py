"""Pairwise-heterogeneous link parameters (α_ij, β_ij matrices).

Equation (10) of the paper is written for node-pair-specific parameters
``T_ij = α_ij + M·β_ij`` (following Yan, Zhang & Song's NOW model, ref
[14]).  The evaluation then uses a single technology per network, but the
matrix form is what makes the model "heterogeneous", so we expose it: a
:class:`HeterogeneousLinkMatrix` stores per-pair α and β and can be built
from per-node technologies (the pairwise value is the slower of the two
endpoints, i.e. max α and max β — a store-and-forward bottleneck rule).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .technologies import NetworkTechnology

__all__ = ["HeterogeneousLinkMatrix"]


class HeterogeneousLinkMatrix:
    """Per-node-pair latency/bandwidth parameters.

    Parameters
    ----------
    alpha:
        ``(n, n)`` matrix of pairwise latencies in seconds.
    beta:
        ``(n, n)`` matrix of pairwise per-byte times in seconds/byte.

    Off-diagonal β values must be positive (a real link always needs time
    per byte); the diagonal describes a node talking to itself, costs
    nothing in the model, and therefore only has to be non-negative —
    the built-in constructors zero both diagonals so ``T_ii = 0``.
    """

    def __init__(self, alpha: np.ndarray, beta: np.ndarray) -> None:
        alpha = np.asarray(alpha, dtype=float)
        beta = np.asarray(beta, dtype=float)
        if alpha.ndim != 2 or alpha.shape[0] != alpha.shape[1]:
            raise ConfigurationError(f"alpha must be square, got shape {alpha.shape}")
        if alpha.shape != beta.shape:
            raise ConfigurationError(
                f"alpha and beta must have the same shape, got {alpha.shape} vs {beta.shape}"
            )
        if np.any(alpha < 0):
            raise ConfigurationError("latencies must be non-negative")
        if np.any(beta < 0):
            raise ConfigurationError("per-byte times must be non-negative")
        off_diagonal = ~np.eye(beta.shape[0], dtype=bool)
        if np.any(beta[off_diagonal] <= 0):
            raise ConfigurationError("off-diagonal per-byte times must be positive")
        self._alpha = alpha
        self._beta = beta

    # -- constructors ------------------------------------------------------------

    @classmethod
    def homogeneous(cls, size: int, technology: NetworkTechnology) -> "HeterogeneousLinkMatrix":
        """All pairs share one technology (what the paper's evaluation uses)."""
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size!r}")
        alpha = np.full((size, size), technology.alpha, dtype=float)
        beta = np.full((size, size), technology.beta, dtype=float)
        # A self-addressed message costs nothing: zero both diagonals so
        # T_ii = 0 instead of the leftover M*beta.
        np.fill_diagonal(alpha, 0.0)
        np.fill_diagonal(beta, 0.0)
        return cls(alpha, beta)

    @classmethod
    def from_node_technologies(
        cls, technologies: Sequence[NetworkTechnology]
    ) -> "HeterogeneousLinkMatrix":
        """Pairwise parameters from per-node NICs: the slower endpoint dominates."""
        if not technologies:
            raise ConfigurationError("need at least one node technology")
        alphas = np.array([t.alpha for t in technologies], dtype=float)
        betas = np.array([t.beta for t in technologies], dtype=float)
        alpha = np.maximum.outer(alphas, alphas)
        beta = np.maximum.outer(betas, betas)
        # Same diagonal convention as ``homogeneous``: T_ii = 0.
        np.fill_diagonal(alpha, 0.0)
        np.fill_diagonal(beta, 0.0)
        return cls(alpha, beta)

    # -- access ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of endpoints."""
        return self._alpha.shape[0]

    @property
    def alpha(self) -> np.ndarray:
        """Pairwise latency matrix (seconds), copied."""
        return self._alpha.copy()

    @property
    def beta(self) -> np.ndarray:
        """Pairwise per-byte time matrix (seconds/byte), copied."""
        return self._beta.copy()

    def transmission_time(self, source: int, destination: int, message_bytes: float) -> float:
        """``T_ij = α_ij + M·β_ij`` for one pair (paper Eq. 10)."""
        if message_bytes < 0:
            raise ConfigurationError(f"message size must be non-negative, got {message_bytes!r}")
        self._check_index(source)
        self._check_index(destination)
        return float(self._alpha[source, destination] + message_bytes * self._beta[source, destination])

    def mean_offdiagonal_transmission_time(self, message_bytes: float) -> float:
        """Average ``T_ij`` over all ordered pairs with i ≠ j.

        This is the quantity the aggregated (single-technology) model uses
        as its mean point-to-point transmission time.
        """
        if message_bytes < 0:
            raise ConfigurationError(f"message size must be non-negative, got {message_bytes!r}")
        n = self.size
        if n < 2:
            return 0.0
        mask = ~np.eye(n, dtype=bool)
        times = self._alpha[mask] + message_bytes * self._beta[mask]
        return float(times.mean())

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise ConfigurationError(f"endpoint index {index} out of range [0, {self.size})")

    def __repr__(self) -> str:
        return f"<HeterogeneousLinkMatrix size={self.size}>"
