"""Communication-network models: technologies, switches, and service-time models."""

from .heterogeneous import HeterogeneousLinkMatrix
from .models import (
    BlockingNetworkModel,
    CommunicationNetworkModel,
    NonBlockingNetworkModel,
    build_network_model,
)
from .switch import PAPER_SWITCH, SwitchFabric
from .technologies import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    INFINIBAND_4X,
    MYRINET,
    TECHNOLOGY_PRESETS,
    TEN_GIGABIT_ETHERNET,
    NetworkTechnology,
    get_technology,
)
from .units import (
    BYTES_PER_MEGABYTE,
    MICROSECONDS_PER_SECOND,
    bandwidth_to_seconds_per_byte,
    bytes_per_s_to_mbps,
    mbps_to_bytes_per_s,
    ms_to_s,
    s_to_ms,
    s_to_us,
    us_to_s,
)

__all__ = [
    "NetworkTechnology",
    "GIGABIT_ETHERNET",
    "FAST_ETHERNET",
    "MYRINET",
    "INFINIBAND_4X",
    "TEN_GIGABIT_ETHERNET",
    "TECHNOLOGY_PRESETS",
    "get_technology",
    "SwitchFabric",
    "PAPER_SWITCH",
    "CommunicationNetworkModel",
    "NonBlockingNetworkModel",
    "BlockingNetworkModel",
    "build_network_model",
    "HeterogeneousLinkMatrix",
    "us_to_s",
    "s_to_us",
    "ms_to_s",
    "s_to_ms",
    "mbps_to_bytes_per_s",
    "bytes_per_s_to_mbps",
    "bandwidth_to_seconds_per_byte",
    "MICROSECONDS_PER_SECOND",
    "BYTES_PER_MEGABYTE",
]
