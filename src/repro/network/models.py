"""Service-time models of the two interconnect architectures (paper §5).

Each communication network of the HMSCS (every ICN1, ECN1 and the ICN2) is
one M/M/1 service centre; its *mean service time* is the message
transmission time given by these models:

* :class:`NonBlockingNetworkModel` — multi-stage fat-tree (Eq. 11):
  ``T = α + (2d−1)·α_sw + M·β`` and, by Theorem 1, zero blocking time.
* :class:`BlockingNetworkModel` — linear switch array (Eqs. 19–21):
  ``T = α + ((k+1)/3)·α_sw + (N/2)·M·β`` where the ``N/2`` factor folds the
  blocking time ``T_B = (N/2 − 1)·M·β`` of Eq. (20) into the transmission
  term.

Both models expose the same interface so the analytical model and the
simulator can be architecture-agnostic.
"""

from __future__ import annotations


from ..errors import ConfigurationError
from ..topology.fattree import FatTreeTopology
from ..topology.linear_array import LinearArrayTopology
from .switch import SwitchFabric
from .technologies import NetworkTechnology

__all__ = [
    "CommunicationNetworkModel",
    "NonBlockingNetworkModel",
    "BlockingNetworkModel",
    "build_network_model",
]


class CommunicationNetworkModel:
    """Common interface of the blocking / non-blocking service-time models.

    Parameters
    ----------
    technology:
        Link technology providing α and β.
    switch:
        Switch fabric providing Pr and α_sw.
    attached_nodes:
        Number of endpoints this network connects (N for an ICN1 this is the
        cluster size N0; for the ICN2 it is the number of clusters C).
    """

    #: Architecture label ("non-blocking" / "blocking").
    architecture: str = "abstract"

    def __init__(
        self,
        technology: NetworkTechnology,
        switch: SwitchFabric,
        attached_nodes: int,
    ) -> None:
        if attached_nodes < 1:
            raise ConfigurationError(f"attached_nodes must be >= 1, got {attached_nodes!r}")
        self.technology = technology
        self.switch = switch
        self.attached_nodes = int(attached_nodes)

    # -- interface ---------------------------------------------------------------

    def transmission_time(self, message_bytes: float) -> float:
        """Mean end-to-end transmission time ``T_W`` for one message (seconds)."""
        raise NotImplementedError

    def blocking_time(self, message_bytes: float) -> float:
        """Mean blocking time ``T_B`` contributed by contention (seconds)."""
        raise NotImplementedError

    def network_latency(self, message_bytes: float) -> float:
        """Total network latency ``T_C = T_W + T_B`` (paper Eq. 9).

        Note that for the blocking model the paper folds ``T_B`` into the
        transmission term (Eq. 21); :meth:`service_time` is the quantity the
        queueing model should use as the mean service time.
        """
        return self.transmission_time(message_bytes) + self.blocking_time(message_bytes)

    def service_time(self, message_bytes: float) -> float:
        """Mean service time of the corresponding M/M/1 service centre."""
        raise NotImplementedError

    def service_rate(self, message_bytes: float) -> float:
        """Service rate µ = 1/mean service time."""
        st = self.service_time(message_bytes)
        if st <= 0:
            raise ConfigurationError("service time must be positive")
        return 1.0 / st

    @property
    def has_full_bisection(self) -> bool:
        """Whether the underlying topology has full bisection bandwidth."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} tech={self.technology.name!r} "
            f"nodes={self.attached_nodes} ports={self.switch.ports}>"
        )


class NonBlockingNetworkModel(CommunicationNetworkModel):
    """Multi-stage fat-tree service model (paper §5.2, Eq. 11)."""

    architecture = "non-blocking"

    def __init__(
        self,
        technology: NetworkTechnology,
        switch: SwitchFabric,
        attached_nodes: int,
    ) -> None:
        super().__init__(technology, switch, attached_nodes)
        self.topology = FatTreeTopology(attached_nodes, switch.ports)

    @property
    def stages(self) -> int:
        """Number of switch stages ``d`` (Eq. 12)."""
        return self.topology.num_stages

    @property
    def num_switches(self) -> int:
        """Switch count ``k`` (Eq. 13)."""
        return self.topology.num_switches

    @property
    def has_full_bisection(self) -> bool:
        """Theorem 1: always true for the fat-tree."""
        return self.topology.full_bisection

    def transmission_time(self, message_bytes: float) -> float:
        """Eq. (11): ``α + (2d − 1)·α_sw + M·β``."""
        if message_bytes < 0:
            raise ConfigurationError(f"message size must be non-negative, got {message_bytes!r}")
        switch_term = self.switch.traversal_time(self.topology.switch_traversals)
        return self.technology.alpha + switch_term + message_bytes * self.technology.beta

    def blocking_time(self, message_bytes: float) -> float:
        """Theorem 1 ⇒ ``T_B = 0`` for the non-blocking architecture."""
        if message_bytes < 0:
            raise ConfigurationError(f"message size must be non-negative, got {message_bytes!r}")
        return 0.0

    def service_time(self, message_bytes: float) -> float:
        """Service time equals the transmission time (no blocking)."""
        return self.transmission_time(message_bytes)


class BlockingNetworkModel(CommunicationNetworkModel):
    """Linear-switch-array service model (paper §5.3, Eqs. 17–21)."""

    architecture = "blocking"

    def __init__(
        self,
        technology: NetworkTechnology,
        switch: SwitchFabric,
        attached_nodes: int,
    ) -> None:
        super().__init__(technology, switch, attached_nodes)
        self.topology = LinearArrayTopology(attached_nodes, switch.ports)

    @property
    def num_switches(self) -> int:
        """Switch count ``k = ceil(N/Pr)`` (Eq. 17)."""
        return self.topology.num_switches

    @property
    def has_full_bisection(self) -> bool:
        """A switch chain has bisection width 1: not full bisection (for N > 2)."""
        return self.topology.full_bisection

    @property
    def average_switch_traversals(self) -> float:
        """The paper's ``(k + 1)/3`` average traversed distance (Eq. 19)."""
        return self.topology.average_switch_hops

    def transmission_time(self, message_bytes: float) -> float:
        """Eq. (19): ``α + ((k+1)/3)·α_sw + M·β`` (without the contention term)."""
        if message_bytes < 0:
            raise ConfigurationError(f"message size must be non-negative, got {message_bytes!r}")
        switch_term = self.switch.traversal_time(self.average_switch_traversals)
        return self.technology.alpha + switch_term + message_bytes * self.technology.beta

    def blocking_time(self, message_bytes: float) -> float:
        """Eq. (20): ``T_B = (N/2 − 1)·M·β`` (zero when N ≤ 2)."""
        if message_bytes < 0:
            raise ConfigurationError(f"message size must be non-negative, got {message_bytes!r}")
        blocked = max(self.attached_nodes / 2.0 - 1.0, 0.0)
        return blocked * message_bytes * self.technology.beta

    def service_time(self, message_bytes: float) -> float:
        """Eq. (21): ``α + ((k+1)/3)·α_sw + (N/2)·M·β``.

        This is the transmission time with the blocking time folded in, i.e.
        the mean service time the paper assigns to the (exponential) service
        centre of a blocking network.
        """
        return self.transmission_time(message_bytes) + self.blocking_time(message_bytes)


def build_network_model(
    architecture: str,
    technology: NetworkTechnology,
    switch: SwitchFabric,
    attached_nodes: int,
) -> CommunicationNetworkModel:
    """Factory: build a blocking or non-blocking model by name.

    ``architecture`` accepts ``"non-blocking"``/``"nonblocking"``/``"fat-tree"``
    or ``"blocking"``/``"linear-array"`` (case insensitive).
    """
    key = architecture.lower().replace("_", "-")
    if key in {"non-blocking", "nonblocking", "fat-tree", "fattree"}:
        return NonBlockingNetworkModel(technology, switch, attached_nodes)
    if key in {"blocking", "linear-array", "lineararray", "linear"}:
        return BlockingNetworkModel(technology, switch, attached_nodes)
    raise ConfigurationError(
        f"unknown network architecture {architecture!r}; "
        "expected 'non-blocking' or 'blocking'"
    )
