"""Unit conversions used at the API boundary.

Internally the library works in **seconds** and **bytes**; the paper's
Table 2 quotes microseconds and megabytes per second, so these helpers keep
conversions explicit and in one place.
"""

from __future__ import annotations

__all__ = [
    "MICROSECONDS_PER_SECOND",
    "BYTES_PER_MEGABYTE",
    "us_to_s",
    "s_to_us",
    "ms_to_s",
    "s_to_ms",
    "mbps_to_bytes_per_s",
    "bytes_per_s_to_mbps",
    "bandwidth_to_seconds_per_byte",
]

#: Number of microseconds in a second.
MICROSECONDS_PER_SECOND: float = 1e6

#: Number of bytes in a megabyte (the paper uses MB/s = 10^6 B/s).
BYTES_PER_MEGABYTE: float = 1e6


def us_to_s(value_us: float) -> float:
    """Convert microseconds to seconds."""
    return value_us / MICROSECONDS_PER_SECOND


def s_to_us(value_s: float) -> float:
    """Convert seconds to microseconds."""
    return value_s * MICROSECONDS_PER_SECOND


def ms_to_s(value_ms: float) -> float:
    """Convert milliseconds to seconds."""
    return value_ms / 1e3


def s_to_ms(value_s: float) -> float:
    """Convert seconds to milliseconds."""
    return value_s * 1e3


def mbps_to_bytes_per_s(value_mb_per_s: float) -> float:
    """Convert megabytes per second to bytes per second."""
    return value_mb_per_s * BYTES_PER_MEGABYTE


def bytes_per_s_to_mbps(value_bytes_per_s: float) -> float:
    """Convert bytes per second to megabytes per second."""
    return value_bytes_per_s / BYTES_PER_MEGABYTE


def bandwidth_to_seconds_per_byte(bandwidth_bytes_per_s: float) -> float:
    """The per-byte transmission time β = 1 / bandwidth (paper Eq. 10)."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bytes_per_s!r}")
    return 1.0 / bandwidth_bytes_per_s
