"""Simulation-as-a-service: the long-lived ``repro serve`` HTTP server.

Where the CLI pays full process start-up (interpreter boot, numpy import,
worker-pool spawn) per campaign, this subpackage keeps everything warm in
one resident process: submit an
:class:`~repro.experiments.pipeline.ExperimentSpec` as JSON, poll the job,
fetch the result tables — and let the content-addressed
:mod:`repro.cache` answer repeated or overlapping campaigns without
simulating anything.

Modules
-------
``jobs``
    :class:`JobManager` — the queue/dispatcher: dedups active submissions
    by cache key, runs each campaign on a
    :class:`~repro.parallel.backends.PersistentPoolBackend` (worker
    processes survive across jobs), journals in-flight work through the
    sweep checkpoint so a crashed server resumes on resubmission, and
    stores every finished outcome in the cache.
``http``
    :class:`ReproService` — the stdlib ``ThreadingHTTPServer`` JSON API
    (``/v1/experiments``, ``/v1/jobs/...``, ``/v1/cache/...``).

Start one from the shell with ``repro serve --cache DIR``; the endpoint
reference with request/response examples lives in ``docs/service.md``.
"""

from .http import ReproService
from .jobs import Job, JobManager

__all__ = ["Job", "JobManager", "ReproService"]
