"""Job lifecycle of the ``repro serve`` service.

A *job* is one submitted :class:`~repro.experiments.pipeline.ExperimentSpec`
making its way through ``queued → running → done`` (or ``failed``).  The
:class:`JobManager` owns the two pieces of state that make the service
cheap to hit twice:

* the **result cache** — every finished campaign is stored by content
  address, so resubmitting a spec (or submitting one ``repro run --cache``
  already computed) is served without simulating anything; and
* the **warm worker pool** — a
  :class:`~repro.parallel.backends.PersistentPoolBackend` whose worker
  processes survive across jobs, so only the first simulation request pays
  process spawn + interpreter boot.

Jobs run on a single dispatcher thread, one at a time, each fanned out
across the pool's workers — submissions are accepted concurrently and
queue up.  An active (queued or running) job is deduplicated by cache key:
submitting the spec again returns the same job id instead of queuing the
work twice.

Crash tolerance reuses the sweep checkpoint journal: every running job
journals its completed simulations under the manager's state directory,
keyed by the job's cache key.  If the server dies mid-job, resubmitting
the same spec resumes from the journal — only the unfinished simulations
re-execute, bit-identically.  The journal is deleted once the result is
safely in the cache.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..cache.store import ResultCache
from ..errors import ServiceOverloadedError
from ..experiments.pipeline import (
    ExperimentRunner,
    ExperimentSpec,
    TableCollector,
    build_plan,
)
from ..parallel import PersistentPoolBackend, SweepEngine, resolve_jobs

__all__ = ["Job", "JobManager"]

#: States a job moves through, in order (``failed`` replaces ``done``).
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submitted experiment campaign and its observable progress."""

    id: str
    spec: ExperimentSpec
    cache_key: str
    state: str = "queued"
    error: Optional[str] = None
    #: True when the job was answered from the result cache (no execution).
    cached: bool = False
    done_tasks: int = 0
    total_tasks: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: The collected table artefact (populated when ``state == "done"``).
    result: Optional[Any] = None
    #: Set once the job settles (done/failed) — what :meth:`JobManager.wait`
    #: blocks on instead of polling.
    settled: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe status view (what ``GET /v1/jobs/<id>`` returns)."""
        return {
            "id": self.id,
            "state": self.state,
            "cache_key": self.cache_key,
            "cached": self.cached,
            "error": self.error,
            "progress": {"done": self.done_tasks, "total": self.total_tasks},
            "spec": self.spec.to_json(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobManager:
    """Run submitted specs through a warm pool, memoised by the cache.

    Parameters
    ----------
    cache:
        The :class:`~repro.cache.ResultCache` results are served from and
        stored into.
    jobs:
        Worker processes in the warm pool (``0`` = one per CPU core).
    state_dir:
        Directory for in-flight job journals (default:
        ``<cache root>/service``).
    backend:
        Override the execution backend (tests inject stubs here); by
        default a :class:`~repro.parallel.backends.PersistentPoolBackend`
        owned — and eventually closed — by the manager.
    max_queued:
        Load-shedding bound on jobs waiting to run: a submission that
        would push the queue past this raises
        :class:`~repro.errors.ServiceOverloadedError` (HTTP 503 with
        ``Retry-After``) instead of accepting unbounded work.  ``None``
        or ``0`` leaves the queue unbounded.
    """

    def __init__(
        self,
        cache: ResultCache,
        jobs: Optional[int] = 1,
        state_dir: Optional[str] = None,
        backend: Optional[Any] = None,
        max_queued: Optional[int] = None,
    ) -> None:
        self.cache = cache
        self.jobs = resolve_jobs(jobs)
        if max_queued is not None and max_queued < 0:
            raise ValueError(f"max_queued must be >= 0, got {max_queued!r}")
        self.max_queued = int(max_queued) if max_queued else 0
        self.state_dir = os.path.abspath(state_dir or os.path.join(cache.root, "service"))
        os.makedirs(self.state_dir, exist_ok=True)
        self._owns_backend = backend is None
        self.backend = backend if backend is not None else PersistentPoolBackend(self.jobs)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._active_by_key: Dict[str, Job] = {}
        self._queue: List[Job] = []
        self._queued = threading.Condition(self._lock)
        self._closing = False
        self._job_counter = 0
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # -- submission and lookup ---------------------------------------------

    def submit(self, spec: ExperimentSpec) -> Job:
        """Queue ``spec`` (or join the active job already computing it).

        Raises :class:`~repro.errors.ReproError` subclasses for invalid
        specs — the HTTP layer maps those to 4xx responses.
        """
        # Building the plan up front validates the spec completely (unknown
        # scenario, inconsistent mode, bad axes) before anything is queued.
        plan = build_plan(spec)
        key = self.cache.key_for_plan(plan)
        assert key is not None  # service plans are pure functions of their spec
        with self._lock:
            if self._closing:
                raise RuntimeError("the job manager is shutting down")
            active = self._active_by_key.get(key)
            if active is not None:
                return active
            if self.max_queued and len(self._queue) >= self.max_queued:
                # Load shedding: refuse new work instead of queueing without
                # bound.  Deduplicated resubmissions (above) still join
                # their active job even when the queue is full.
                depth = len(self._queue)
                raise ServiceOverloadedError(
                    f"job queue is full ({depth} queued, limit {self.max_queued}); "
                    "retry later",
                    retry_after=min(60.0, 2.0 * depth),
                )
            self._job_counter += 1
            job = Job(id=f"job-{self._job_counter:06d}", spec=spec, cache_key=key)
            if plan.include_simulation:
                job.total_tasks = len(plan.simulation.tasks)
            self._jobs[job.id] = job
            self._active_by_key[key] = job
            self._queue.append(job)
            self._queued.notify_all()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        """Every job this server has seen, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float = 30.0) -> Optional[Job]:
        """Block until ``job_id`` settles (done/failed) or ``timeout`` passes."""
        job = self.get(job_id)
        if job is None:
            return None
        job.settled.wait(timeout)
        return job

    def queue_depth(self) -> int:
        """Jobs waiting for the dispatcher (excludes the one running)."""
        with self._lock:
            return len(self._queue)

    # -- execution ----------------------------------------------------------

    def _journal_path(self, key: str) -> str:
        return os.path.join(self.state_dir, f"{key}.journal")

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                while not self._queue and not self._closing:
                    self._queued.wait()
                if self._closing and not self._queue:
                    return
                job = self._queue.pop(0)
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.state = "running"
        job.started_at = time.time()
        try:
            plan = build_plan(job.spec)
            cached = self.cache.get_outcome(plan)
            if cached is not None:
                job.cached = True
                job.done_tasks = job.total_tasks
                outcome = cached
            else:
                outcome = self._execute(job, plan)
            job.result = TableCollector().collect(outcome)
            job.state = "done"
        except Exception as exc:
            # A failed job must never take the dispatcher thread (and with
            # it the whole server) down; the failure is surfaced verbatim
            # through the job's status instead.
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"
        finally:
            job.finished_at = time.time()
            with self._lock:
                if self._active_by_key.get(job.cache_key) is job:
                    del self._active_by_key[job.cache_key]
            job.settled.set()

    def _execute(self, job: Job, plan) -> Any:
        """Run the campaign on the warm pool, journaled for crash tolerance."""

        def progress(done: int, total: int, label: str) -> None:
            del label
            job.done_tasks = done
            job.total_tasks = total

        journal = self._journal_path(job.cache_key) if plan.include_simulation else None
        engine = SweepEngine(
            jobs=self.jobs, backend=self.backend, journal=journal, progress=progress
        )
        outcome = ExperimentRunner(engine=engine).run_outcome(plan)
        self.cache.put_outcome(plan, outcome)
        if journal is not None:
            # The result is durable in the cache now; the journal has
            # nothing left to protect.
            try:
                os.remove(journal)
            except OSError:
                pass
        return outcome

    # -- shutdown ------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Finish the queue, stop the dispatcher, release the warm pool."""
        with self._lock:
            self._closing = True
            self._queued.notify_all()
        self._dispatcher.join(timeout=timeout)
        if self._owns_backend and hasattr(self.backend, "close"):
            self.backend.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
