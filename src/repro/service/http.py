"""The ``repro serve`` HTTP API (stdlib-only, JSON in / JSON out).

One :class:`ReproService` wraps a :class:`~repro.service.jobs.JobManager`
(warm worker pool + result cache) in a
:class:`http.server.ThreadingHTTPServer`.  Endpoints (all under ``/v1``;
see ``docs/service.md`` for request/response examples):

==========  ===========================  =========================================
Method      Path                         Meaning
==========  ===========================  =========================================
GET         ``/v1/health``               liveness + pool/cache summary
POST        ``/v1/experiments``          submit a spec JSON → ``202`` + job id
GET         ``/v1/jobs``                 list every job
GET         ``/v1/jobs/<id>``            job status + progress
GET         ``/v1/jobs/<id>/result``     finished job's result table (JSON rows)
GET         ``/v1/jobs/<id>/result.csv`` the same rows as CSV bytes
GET         ``/v1/cache``                list cache entries
GET         ``/v1/cache/stats``          cache counters
GET         ``/v1/cache/<key>``          inspect one entry
DELETE      ``/v1/cache/<key>``          evict one entry
==========  ===========================  =========================================

Malformed or invalid spec submissions are 4xx with a JSON ``error`` body
(the exact :class:`~repro.errors.ExperimentError` message the CLI would
print); unknown paths are 404.  The server binds loopback by default and
has no authentication — treat it like the socket sweep protocol: expose it
only on networks where every peer is trusted.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError, ServiceOverloadedError
from ..experiments.pipeline import ExperimentSpec
from ..viz.tables import rows_to_csv_text
from .jobs import JobManager

__all__ = ["ReproService"]

#: Largest accepted request body (a spec is a few hundred bytes; anything
#: near this limit is not a spec).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Request handler: routes ``/v1/...`` onto the owning service."""

    #: Set by :class:`ReproService` on the handler subclass it serves with.
    service: "ReproService"

    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.service.verbose:
            super().log_message(format, *args)

    def _send_json(
        self, status: int, body: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        data = json.dumps(body, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _send_csv(self, text: str) -> None:
        data = text.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/csv; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _route(self) -> Optional[Tuple[str, ...]]:
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = tuple(part for part in path.split("/") if part)
        if not parts or parts[0] != "v1":
            self._send_error(404, f"unknown path {self.path!r}; the API lives under /v1")
            return None
        return parts[1:]

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming convention)
        parts = self._route()
        if parts is None:
            return
        manager = self.service.manager
        if parts == ("health",):
            self._send_json(200, self.service.health())
        elif parts == ("jobs",):
            self._send_json(200, {"jobs": [job.as_dict() for job in manager.list_jobs()]})
        elif len(parts) >= 2 and parts[0] == "jobs":
            self._get_job(parts[1], parts[2:])
        elif parts == ("cache",):
            self._send_json(
                200, {"entries": [entry.as_dict() for entry in manager.cache.entries()]}
            )
        elif parts == ("cache", "stats"):
            self._send_json(200, manager.cache.stats().as_dict())
        elif len(parts) == 2 and parts[0] == "cache":
            entry = manager.cache.get_entry(parts[1])
            if entry is None:
                self._send_error(404, f"no cache entry {parts[1]!r}")
            else:
                self._send_json(200, entry.as_dict())
        else:
            self._send_error(404, f"unknown path {self.path!r}")

    def _get_job(self, job_id: str, rest: Tuple[str, ...]) -> None:
        job = self.service.manager.get(job_id)
        if job is None:
            self._send_error(404, f"no job {job_id!r}")
            return
        if rest == ():
            self._send_json(200, job.as_dict())
            return
        if rest not in (("result",), ("result.csv",)):
            self._send_error(404, f"unknown path {self.path!r}")
            return
        if job.state == "failed":
            self._send_error(500, job.error or "job failed")
            return
        if job.state != "done":
            self._send_error(
                409, f"job {job_id} is {job.state}; poll /v1/jobs/{job_id} until done"
            )
            return
        rows = job.result.to_rows()
        if rest == ("result.csv",):
            self._send_csv(rows_to_csv_text(rows))
        else:
            summary = job.result.accuracy_summary()
            self._send_json(
                200,
                {
                    "id": job.id,
                    "cache_key": job.cache_key,
                    "cached": job.cached,
                    "rows": rows,
                    "accuracy": None if summary is None else summary.as_dict(),
                },
            )

    def do_POST(self) -> None:  # noqa: N802
        parts = self._route()
        if parts is None:
            return
        if parts != ("experiments",):
            self._send_error(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error(400, "invalid Content-Length header")
            return
        if length <= 0:
            self._send_error(400, "submit a spec JSON object as the request body")
            return
        if length > MAX_BODY_BYTES:
            self._send_error(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return
        body = self.rfile.read(length)
        try:
            spec = ExperimentSpec.from_json_text(body.decode("utf-8", errors="replace"))
            job = self.service.manager.submit(spec)
        except ServiceOverloadedError as exc:
            # Load shedding: the queue is full.  Tell the client when to
            # come back rather than letting submissions pile up unbounded.
            self._send_json(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": str(max(1, round(exc.retry_after)))},
            )
            return
        except ReproError as exc:
            # Invalid spec (bad JSON, unknown scenario/field, inconsistent
            # mode): the submitter's fault, with the CLI's exact message.
            self._send_error(400, str(exc))
            return
        except RuntimeError as exc:  # manager shutting down
            self._send_error(503, str(exc))
            return
        self._send_json(
            202,
            {
                "id": job.id,
                "state": job.state,
                "cache_key": job.cache_key,
                "status_url": f"/v1/jobs/{job.id}",
                "result_url": f"/v1/jobs/{job.id}/result",
            },
        )

    def do_DELETE(self) -> None:  # noqa: N802
        parts = self._route()
        if parts is None:
            return
        if len(parts) == 2 and parts[0] == "cache":
            removed = self.service.manager.cache.evict(parts[1])
            if removed:
                self._send_json(200, {"evicted": parts[1]})
            else:
                self._send_error(404, f"no cache entry {parts[1]!r}")
        else:
            self._send_error(404, f"unknown path {self.path!r}")


class ReproService:
    """A running (or startable) ``repro serve`` HTTP server.

    Parameters
    ----------
    manager:
        The :class:`~repro.service.jobs.JobManager` that owns the warm pool
        and the result cache.
    host, port:
        Bind address (default loopback on an ephemeral port; read
        :attr:`address` after :meth:`start` for the bound port).
    verbose:
        Log one line per request to stderr (the CLI turns this on).

    Use as a context manager — or call :meth:`start` /
    :meth:`serve_forever` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = int(port)
        self.verbose = verbose
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def health(self) -> Dict[str, Any]:
        """The ``/v1/health`` body (also handy for in-process checks)."""
        manager = self.manager
        body: Dict[str, Any] = {
            "status": "ok",
            "jobs": len(manager.list_jobs()),
            "queued": manager.queue_depth(),
            "max_queued": manager.max_queued,
            "pool_jobs": manager.jobs,
            "cache_root": manager.cache.root,
            "cache": manager.cache.stats().as_dict(),
        }
        pools = getattr(manager.backend, "pools_created", None)
        if pools is not None:
            body["pools_created"] = pools
        return body

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (only meaningful after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[:2]
        return (self.host, self.port)

    def start(self) -> "ReproService":
        """Bind the socket and serve on a background thread."""
        if self._server is not None:
            return self
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        try:
            self._server.serve_forever(poll_interval=0.2)
        finally:
            self.stop()

    def stop(self) -> None:
        """Shut the HTTP server down and close the job manager."""
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.manager.close()

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
