"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StabilityError",
    "ConvergenceError",
    "TopologyError",
    "SimulationError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid system, network or workload configuration was supplied.

    Raised, for example, when a cluster is declared with zero processors,
    when the number of clusters does not divide the number of nodes, or when
    a network technology has a non-positive bandwidth.
    """


class StabilityError(ReproError, ArithmeticError):
    """A queueing system is unstable (offered load >= capacity).

    The analytical model raises this when a service centre would be driven
    at utilisation >= 1 even after the finite-source correction, i.e. the
    fixed point collapses to zero effective throughput.
    """


class ConvergenceError(ReproError, ArithmeticError):
    """An iterative solver failed to converge within its iteration budget."""


class TopologyError(ReproError, ValueError):
    """An interconnect topology cannot be constructed as requested."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness was asked for an unknown figure/scenario."""
