"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StabilityError",
    "ConvergenceError",
    "TopologyError",
    "SimulationError",
    "ExperimentError",
    "WorkerError",
    "CheckpointError",
    "ServiceOverloadedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid system, network or workload configuration was supplied.

    Raised, for example, when a cluster is declared with zero processors,
    when the number of clusters does not divide the number of nodes, or when
    a network technology has a non-positive bandwidth.
    """


class StabilityError(ReproError, ArithmeticError):
    """A queueing system is unstable (offered load >= capacity).

    The analytical model raises this when a service centre would be driven
    at utilisation >= 1 even after the finite-source correction, i.e. the
    fixed point collapses to zero effective throughput.
    """


class ConvergenceError(ReproError, ArithmeticError):
    """An iterative solver failed to converge within its iteration budget."""


class TopologyError(ReproError, ValueError):
    """An interconnect topology cannot be constructed as requested."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness was asked for an unknown figure/scenario."""


class CheckpointError(ReproError, ValueError):
    """A sweep journal cannot be resumed by the current campaign.

    Raised when the journal's recorded run headers (task count and
    fingerprint) disagree with the sweep being resumed — continuing would
    silently mix results from two different campaign definitions.  Corrupt
    or truncated journal *records* do not raise: they are discarded and the
    affected tasks re-execute.
    """


class WorkerError(ReproError, RuntimeError):
    """The parallel sweep engine lost a worker before it delivered a result.

    Raised when the process pool infrastructure itself breaks (a worker
    died, e.g. from a crash or the OOM killer) — an *ordinary* exception
    raised by a sweep task is re-raised with its original type instead.
    The triggering pool exception is chained as ``__cause__`` and available
    via :attr:`original`; :attr:`task_index` and :attr:`label` identify the
    task whose result was lost.
    """

    def __init__(self, task_index: int, label: str, original: BaseException) -> None:
        super().__init__(
            f"sweep task #{task_index}"
            + (f" ({label})" if label else "")
            + f" failed: {original!r}"
        )
        self.task_index = task_index
        self.label = label
        self.original = original


class ServiceOverloadedError(ReproError, RuntimeError):
    """The service refused a submission because its job queue is full.

    Load shedding, not failure: the submitter should retry after
    :attr:`retry_after` seconds.  The HTTP layer maps this to ``503`` with
    a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 5.0) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)
