"""Tests for the `failures` experiment block and the failure-prone scenarios."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.pipeline import (
    ExperimentRunner,
    ExperimentSpec,
    build_plan,
    smoke_spec,
)
from repro.experiments.scenarios import get_scenario, scenario_names
from repro.simulation.faults import FaultSpec

FAILURE_SCENARIOS = ("das2-churn", "llnl-failures", "case-1-lossy")


class TestFailuresSpecField:
    def test_json_round_trip(self):
        spec = ExperimentSpec(
            scenario="case-1",
            mode="simulate",
            cluster_counts=(2,),
            message_sizes=(512,),
            failures=FaultSpec(mtbf_s=20.0, mttr_s=2.0, targets="both", policy="drop"),
        )
        data = spec.to_json()
        assert data["failures"]["mtbf_s"] == 20.0
        assert ExperimentSpec.from_json(data) == spec

    def test_omitted_when_none(self):
        spec = ExperimentSpec(scenario="case-1", mode="simulate")
        assert "failures" not in spec.to_json()

    def test_coerced_from_mapping(self):
        spec = ExperimentSpec(
            scenario="case-1", mode="simulate", failures={"mtbf_s": 5.0, "mttr_s": 1.0}
        )
        assert isinstance(spec.failures, FaultSpec)
        assert spec.failures.mtbf_s == 5.0

    def test_bad_block_is_a_clean_error(self):
        with pytest.raises(ConfigurationError, match="unknown failures field"):
            ExperimentSpec(
                scenario="case-1", mode="simulate", failures={"mtbf": 5.0, "mttr_s": 1.0}
            )


class TestFailureScenarios:
    def test_registered(self):
        assert set(FAILURE_SCENARIOS) <= set(scenario_names())

    @pytest.mark.parametrize("name", FAILURE_SCENARIOS)
    def test_simulate_only_with_default_failures(self, name):
        scenario = get_scenario(name)
        assert not scenario.supports_analysis
        assert isinstance(scenario.default_failures, FaultSpec)

    def test_scenario_default_reaches_task_configs(self):
        plan = build_plan(smoke_spec("das2-churn", messages=60))
        default = get_scenario("das2-churn").default_failures
        for task in plan.simulation.tasks:
            assert task.args[1].failures == default

    def test_spec_failures_override_scenario_default(self):
        override = FaultSpec(mtbf_s=99.0, mttr_s=9.0, targets="links", policy="drop")
        spec = ExperimentSpec(
            scenario="das2-churn",
            mode="simulate",
            cluster_counts=(2,),
            message_sizes=(512,),
            replications=1,
            simulation_messages=60,
            failures=override,
        )
        for task in build_plan(spec).simulation.tasks:
            assert task.args[1].failures == override

    def test_fault_free_scenarios_stay_fault_free(self):
        plan = build_plan(smoke_spec("case-1", messages=60))
        for task in plan.simulation.tasks:
            assert task.args[1].failures is None


class TestFailureRuns:
    def test_rows_carry_fault_columns(self):
        result = ExperimentRunner().run(build_plan(smoke_spec("case-1-lossy", messages=120)))
        assert result.points
        for point in result.points:
            assert 0.0 < point.availability <= 1.0
            assert point.throughput_msg_s > 0.0
            assert point.dropped_messages >= 0
            row = point.as_dict()
            assert {"availability", "throughput_msg_s", "dropped"} <= set(row)

    def test_fault_free_rows_keep_legacy_shape(self):
        result = ExperimentRunner().run(build_plan(smoke_spec("bursty-hyper", messages=60)))
        for point in result.points:
            assert point.availability is None
            assert "availability" not in point.as_dict()

    def test_serial_and_pool_are_bit_identical(self):
        spec = smoke_spec("das2-churn", messages=120)
        serial = ExperimentRunner().run(build_plan(spec))
        pooled = ExperimentRunner(jobs=2).run(build_plan(spec))
        assert [p.as_dict() for p in serial.points] == [p.as_dict() for p in pooled.points]
