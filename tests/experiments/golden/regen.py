"""Regenerate the golden CLI / driver fixtures in this directory.

The fixtures pin the *results* of every CLI command (and the library
drivers underneath) so refactors of the experiment plumbing can prove
bit-identity against the pre-refactor behaviour::

    PYTHONPATH=src python tests/experiments/golden/regen.py

The captured artefacts:

* ``cli_*.txt`` / ``cli_*.csv`` / ``cli_report.md`` — verbatim CLI output
  (stdout or the written file) for one small, deterministic invocation of
  each command.
* ``driver_results.json`` — ``float.hex()``-exact headline numbers of the
  library drivers (figures, ratio, validate, ablations) plus the default
  ``generate_trace`` output, so bit-identity does not depend on table
  formatting.

Only run this script to *re-seed* the fixtures after an intentional
behaviour change; the test suite (``tests/experiments/test_golden_cli.py``)
treats any diff as a regression.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

# The exact argument lists the golden tests replay (kept here so the
# fixture and the test cannot drift apart).
CLI_CASES = {
    "cli_figure4_analysis.csv": [
        "figure", "4", "--clusters", "1", "4", "16", "256",
        "--sizes", "512", "1024", "--csv", "{out}",
    ],
    "cli_figure6_sim.csv": [
        "figure", "6", "--simulate", "--clusters", "2", "4", "--sizes", "512",
        "--messages", "400", "--replications", "2", "--csv", "{out}",
    ],
    "cli_ratio.csv": ["ratio", "--csv", "{out}"],
    "cli_validate.txt": [
        "validate", "--case", "case-1", "--clusters", "4",
        "--messages", "500", "--message-bytes", "512",
    ],
    "cli_ablation_switch_ports.txt": ["ablation", "switch-ports"],
    "cli_ablation_switch_latency.txt": ["ablation", "switch-latency"],
    "cli_ablation_generation_rate.txt": ["ablation", "generation-rate"],
    "cli_ablation_message_size.txt": ["ablation", "message-size"],
    "cli_ablation_fixed_point.txt": ["ablation", "fixed-point-vs-mva"],
    "cli_report.md": [
        "report", "--clusters", "1", "8", "16", "32", "256", "--output", "{out}",
    ],
}


def run_cli_case(argv, out_path=None):
    """Run one CLI invocation, returning the artefact text (stdout or file)."""
    from repro.cli import main

    argv = [a.format(out=out_path) if a == "{out}" else a for a in argv]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    if code != 0:
        raise RuntimeError(f"CLI {argv} exited {code}")
    if out_path is not None:
        with open(out_path, "r", encoding="utf-8") as handle:
            return handle.read()
    return buffer.getvalue()


def capture_driver_results():
    """``float.hex()``-exact headline numbers of the library drivers."""
    from repro.core.model import ModelConfig
    from repro.experiments.ablations import (
        fixed_point_vs_exact_mva,
        sweep_generation_rate,
        sweep_message_size,
        sweep_switch_latency,
        sweep_switch_ports,
    )
    from repro.experiments.blocking_ratio import run_blocking_ratio_study
    from repro.experiments.figures import run_figure
    from repro.experiments.scenarios import SCENARIOS, build_scenario_system
    from repro.simulation.runner import validate_against_analysis
    from repro.simulation.simulator import SimulationConfig
    from repro.workload.messages import generate_trace

    data = {}

    fig = run_figure(
        6, include_simulation=True, cluster_counts=[2, 4], message_sizes=[512],
        simulation_messages=400, replications=2, seed=0,
    )
    data["figure6"] = [
        {
            "clusters": p.num_clusters,
            "message_bytes": p.message_bytes,
            "analysis_ms": p.analysis_latency_ms.hex(),
            "simulation_ms": p.simulation_latency_ms.hex(),
        }
        for p in fig.points
    ]

    ratio = run_blocking_ratio_study(cluster_counts=[1, 4, 16, 64, 256])
    data["ratio"] = [
        {
            "scenario": p.scenario,
            "clusters": p.num_clusters,
            "message_bytes": p.message_bytes,
            "nonblocking_ms": p.nonblocking_latency_ms.hex(),
            "blocking_ms": p.blocking_latency_ms.hex(),
        }
        for p in ratio.points
    ]

    system = build_scenario_system(SCENARIOS["case-1"], 4)
    point = validate_against_analysis(
        system,
        ModelConfig(architecture="non-blocking", message_bytes=512.0, generation_rate=0.25),
        SimulationConfig(architecture="non-blocking", message_bytes=512.0,
                         generation_rate=0.25, num_messages=500),
        replications=2,
    )
    data["validate"] = {
        "analysis_ms": point.analysis_latency_ms.hex(),
        "simulation_ms": point.simulation_latency_ms.hex(),
    }

    data["ablations"] = {}
    for name, study in (
        ("switch-ports", sweep_switch_ports()),
        ("switch-latency", sweep_switch_latency()),
        ("generation-rate", sweep_generation_rate()),
        ("message-size", sweep_message_size()),
        ("fixed-point-vs-mva", fixed_point_vs_exact_mva()),
    ):
        data["ablations"][name] = [
            {
                "value": row.value.hex(),
                "mean_latency_ms": row.mean_latency_ms.hex(),
                "extra": {
                    k: (v.hex() if isinstance(v, float) else v)
                    for k, v in row.extra.items()
                },
            }
            for row in study.rows
        ]

    trace = generate_trace([4, 4], num_messages=64, seed=3)
    data["trace"] = [
        {
            "time": entry.time.hex(),
            "source": list(entry.source),
            "destination": list(entry.destination),
            "size_bytes": entry.size_bytes.hex(),
        }
        for entry in trace
    ]
    return data


def main() -> int:
    import tempfile

    for name, argv in CLI_CASES.items():
        out_path = None
        if "{out}" in argv:
            suffix = os.path.splitext(name)[1]
            fd, out_path = tempfile.mkstemp(suffix=suffix)
            os.close(fd)
        try:
            text = run_cli_case(argv, out_path)
        finally:
            if out_path is not None and os.path.exists(out_path):
                os.unlink(out_path)
        with open(os.path.join(HERE, name), "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {name} ({len(text)} bytes)")

    results = capture_driver_results()
    with open(os.path.join(HERE, "driver_results.json"), "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote driver_results.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
