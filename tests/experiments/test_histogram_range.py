"""Tests for the ``histogram_range`` knob (spec -> plan -> sink -> CLI).

A fixed quantile-histogram range makes the online sink's histograms
*exactly* mergeable across parallel shards (auto-calibrated ranges differ
per shard, so merged quantiles drift).  The knob threads from
``ExperimentSpec`` through ``build_plan`` and ``SimulationConfig`` into
the ``LatencySink``'s main :class:`~repro.stats.sinks.OnlineMonitor`.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.des.core import Environment
from repro.errors import ConfigurationError, ExperimentError, SimulationError
from repro.experiments.pipeline import ExperimentSpec, build_plan
from repro.simulation.components import LatencySink
from repro.simulation.simulator import SimulationConfig
from repro.stats.sinks import validate_histogram_range


def online_spec(**overrides):
    settings = dict(
        scenario="case-1",
        mode="simulate",
        cluster_counts=(2,),
        message_sizes=(512,),
        simulation_messages=200,
        stats_mode="online",
        histogram_range=(0.0, 0.5),
    )
    settings.update(overrides)
    return ExperimentSpec(**settings)


# ---------------------------------------------------------------- validation


class TestValidateHistogramRange:
    def test_coerces_to_float_pair(self):
        assert validate_histogram_range((0, 2)) == (0.0, 2.0)
        assert validate_histogram_range(["0.5", "1.5"]) == (0.5, 1.5)

    @pytest.mark.parametrize("bad", [None, 1.0, (1.0,), (1.0, 2.0, 3.0), ("a", "b")])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_histogram_range(bad)

    @pytest.mark.parametrize("bad", [(0.0, 0.0), (2.0, 1.0), (0.0, float("inf"))])
    def test_rejects_degenerate_bounds(self, bad):
        with pytest.raises(ValueError):
            validate_histogram_range(bad)


# ---------------------------------------------------------------- spec level


class TestSpecHistogramRange:
    def test_round_trips_through_json(self):
        spec = online_spec()
        assert ExperimentSpec.from_json_text(spec.to_json_text()) == spec
        assert spec.histogram_range == (0.0, 0.5)

    def test_coerced_to_float_tuple(self):
        spec = online_spec(histogram_range=[0, 1])
        assert spec.histogram_range == (0.0, 1.0)

    def test_rejected_with_array_stats_mode(self):
        with pytest.raises(ConfigurationError, match="stats_mode"):
            online_spec(stats_mode="array")

    def test_malformed_range_is_an_experiment_error(self):
        with pytest.raises(ExperimentError):
            online_spec(histogram_range=(1.0, 1.0))

    def test_plan_threads_range_into_simulation_config(self):
        plan = build_plan(online_spec())
        assert plan.simulation is not None
        configs = [task.args[1] for task in plan.simulation.tasks]
        assert configs, "simulate-mode plan should carry simulation configs"
        assert all(config.histogram_range == (0.0, 0.5) for config in configs)


# ---------------------------------------------------------------- config level


class TestSimulationConfigHistogramRange:
    def test_rejected_with_array_stats_mode(self):
        with pytest.raises(ConfigurationError, match="stats_mode"):
            SimulationConfig(histogram_range=(0.0, 1.0))

    def test_malformed_range_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="high > low"):
            SimulationConfig(stats_mode="online", histogram_range=(1.0, 1.0))

    def test_accepted_with_online_mode(self):
        config = SimulationConfig(stats_mode="online", histogram_range=(0, 1))
        assert config.histogram_range == (0.0, 1.0)


# ---------------------------------------------------------------- sink level


class TestLatencySinkHistogramRange:
    def test_fixed_range_reaches_the_online_monitor(self):
        sink = LatencySink(
            Environment(),
            target_messages=100,
            stats_mode="online",
            histogram_range=(0.0, 2.0),
        )
        histogram = sink.latencies._histogram
        assert histogram is not None, "fixed range should build the histogram up front"
        assert (histogram.low, histogram.high) == (0.0, 2.0)

    def test_rejected_with_array_mode(self):
        with pytest.raises(SimulationError, match="online"):
            LatencySink(
                Environment(),
                target_messages=100,
                histogram_range=(0.0, 2.0),
            )


# ---------------------------------------------------------------- CLI level


class TestCliHistogramRange:
    def test_run_accepts_histogram_range(self, capsys):
        code = main([
            "run", "case-1", "--mode", "simulate", "--clusters", "2",
            "--sizes", "512", "--messages", "200",
            "--stats-mode", "online", "--histogram-range", "0:1",
        ])
        assert code == 0
        assert "case-1" in capsys.readouterr().out

    def test_rejects_malformed_flag(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "run", "case-1", "--mode", "simulate",
                "--histogram-range", "nonsense",
            ])
        assert "LO:HI" in capsys.readouterr().err

    def test_rejects_array_mode_combination(self):
        # Default stats_mode is "array"; combining it with a fixed range is
        # the designed one-line user error, not a traceback.
        with pytest.raises(SystemExit, match="stats_mode"):
            main([
                "run", "case-1", "--mode", "simulate", "--clusters", "2",
                "--sizes", "512", "--messages", "200",
                "--histogram-range", "0:1",
            ])

    def test_spec_file_carries_histogram_range(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(online_spec().to_json_text())
        assert main(["run", str(spec_path)]) == 0
