"""Golden-fixture bit-identity tests for every CLI command and driver.

The fixtures under ``golden/`` were captured *before* the declarative
pipeline refactor (PR 5), so these tests prove the refactored drivers —
``figure``, ``ratio``, ``validate``, ``ablation`` and ``report`` — produce
byte-identical CLI output and ``float.hex()``-exact driver results, on the
serial backend and (for the simulating commands) the pool and socket
backends too.

Re-seed the fixtures only after an intentional behaviour change, with
``PYTHONPATH=src python tests/experiments/golden/regen.py``.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import sys

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")
sys.path.insert(0, GOLDEN_DIR)
from regen import CLI_CASES, run_cli_case  # noqa: E402

sys.path.pop(0)


def golden_text(name: str) -> str:
    with open(os.path.join(GOLDEN_DIR, name), "r", encoding="utf-8") as handle:
        return handle.read()


def golden_json() -> dict:
    with open(os.path.join(GOLDEN_DIR, "driver_results.json"), "r", encoding="utf-8") as handle:
        return json.load(handle)


def run_case(name: str, tmp_path, extra_args=()) -> str:
    argv = list(CLI_CASES[name]) + list(extra_args)
    out_path = None
    if "{out}" in argv:
        out_path = str(tmp_path / f"artifact{os.path.splitext(name)[1]}")
    # Progress lines go to stderr; swallow them to keep test output clean.
    with contextlib.redirect_stderr(io.StringIO()):
        return run_cli_case(argv, out_path)


class TestCliGoldenSerial:
    """Every CLI case byte-identical to its pre-refactor fixture (serial)."""

    @pytest.mark.parametrize("name", sorted(CLI_CASES))
    def test_case_matches_fixture(self, name, tmp_path):
        assert run_case(name, tmp_path) == golden_text(name)


class TestCliGoldenOtherBackends:
    """Simulation-bearing commands stay bit-identical on pool and socket."""

    def test_figure6_sim_pool(self, tmp_path):
        text = run_case(
            "cli_figure6_sim.csv", tmp_path, ["--backend", "pool", "--jobs", "2"]
        )
        assert text == golden_text("cli_figure6_sim.csv")

    def test_figure6_sim_socket(self, tmp_path):
        text = run_case(
            "cli_figure6_sim.csv", tmp_path, ["--backend", "socket", "--workers", "2"]
        )
        assert text == golden_text("cli_figure6_sim.csv")

    def test_validate_pool(self, tmp_path, capsys):
        text = run_case("cli_validate.txt", tmp_path, ["--backend", "pool", "--jobs", "2"])
        assert text == golden_text("cli_validate.txt")

    def test_ratio_accepts_backend_flags(self, tmp_path):
        # Closed-form and vectorized: the backend cannot change the bytes.
        text = run_case("cli_ratio.csv", tmp_path, ["--backend", "serial"])
        assert text == golden_text("cli_ratio.csv")

    def test_ablation_fixed_point_backend_now_accepted(self, tmp_path):
        # The historical no-backend restriction is lifted; results unchanged.
        text = run_case(
            "cli_ablation_fixed_point.txt", tmp_path, ["--backend", "pool", "--jobs", "2"]
        )
        assert text == golden_text("cli_ablation_fixed_point.txt")


class TestDriverGoldenResults:
    """float.hex()-exact driver results (independent of table formatting)."""

    def test_figure6_simulation_hex_exact(self):
        from repro.experiments.figures import run_figure

        golden = golden_json()["figure6"]
        fig = run_figure(
            6, include_simulation=True, cluster_counts=[2, 4], message_sizes=[512],
            simulation_messages=400, replications=2, seed=0,
        )
        assert len(fig.points) == len(golden)
        for point, want in zip(fig.points, golden):
            assert point.num_clusters == want["clusters"]
            assert point.analysis_latency_ms.hex() == want["analysis_ms"]
            assert point.simulation_latency_ms.hex() == want["simulation_ms"]

    def test_ratio_hex_exact(self):
        from repro.experiments.blocking_ratio import run_blocking_ratio_study

        golden = golden_json()["ratio"]
        study = run_blocking_ratio_study(cluster_counts=[1, 4, 16, 64, 256])
        assert len(study.points) == len(golden)
        for point, want in zip(study.points, golden):
            assert point.scenario == want["scenario"]
            assert point.nonblocking_latency_ms.hex() == want["nonblocking_ms"]
            assert point.blocking_latency_ms.hex() == want["blocking_ms"]

    @pytest.mark.parametrize(
        "study_name",
        ["switch-ports", "switch-latency", "generation-rate", "message-size",
         "fixed-point-vs-mva"],
    )
    def test_ablations_hex_exact(self, study_name):
        from repro.experiments import ablations

        factories = {
            "switch-ports": ablations.sweep_switch_ports,
            "switch-latency": ablations.sweep_switch_latency,
            "generation-rate": ablations.sweep_generation_rate,
            "message-size": ablations.sweep_message_size,
            "fixed-point-vs-mva": ablations.fixed_point_vs_exact_mva,
        }
        golden = golden_json()["ablations"][study_name]
        study = factories[study_name]()
        assert len(study.rows) == len(golden)
        for row, want in zip(study.rows, golden):
            assert row.value.hex() == want["value"]
            assert row.mean_latency_ms.hex() == want["mean_latency_ms"]
            for key, value in row.extra.items():
                got = value.hex() if isinstance(value, float) else value
                assert got == want["extra"][key], (study_name, key)

    def test_validate_hex_exact(self):
        from repro.core.model import ModelConfig
        from repro.experiments.scenarios import SCENARIOS, build_scenario_system
        from repro.simulation.runner import validate_against_analysis
        from repro.simulation.simulator import SimulationConfig

        golden = golden_json()["validate"]
        system = build_scenario_system(SCENARIOS["case-1"], 4)
        point = validate_against_analysis(
            system,
            ModelConfig(architecture="non-blocking", message_bytes=512.0,
                        generation_rate=0.25),
            SimulationConfig(architecture="non-blocking", message_bytes=512.0,
                             generation_rate=0.25, num_messages=500),
            replications=2,
        )
        assert point.analysis_latency_ms.hex() == golden["analysis_ms"]
        assert point.simulation_latency_ms.hex() == golden["simulation_ms"]

    def test_default_trace_hex_exact(self):
        """generate_trace's shared-stream layout is frozen across releases."""
        from repro.workload.messages import generate_trace

        golden = golden_json()["trace"]
        trace = generate_trace([4, 4], num_messages=64, seed=3)
        assert len(trace) == len(golden)
        for entry, want in zip(trace, golden):
            assert entry.time.hex() == want["time"]
            assert list(entry.source) == want["source"]
            assert list(entry.destination) == want["destination"]
            assert entry.size_bytes.hex() == want["size_bytes"]
