"""Tests for the declarative experiment pipeline and the scenario registry."""

from __future__ import annotations

import contextlib
import io
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.pipeline import (
    ExperimentRunner,
    ExperimentSpec,
    build_plan,
    smoke_spec,
)
from repro.experiments.scenarios import (
    PAPER_PARAMETERS,
    SCENARIO_REGISTRY,
    build_scenario_system,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.parallel import spawn_seeds


def cli(*argv):
    """Run the CLI capturing stdout; returns (exit_code, stdout)."""
    from repro.cli import main

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(list(argv))
    return code, out.getvalue()


class TestExperimentSpec:
    def test_json_round_trip_is_value_exact(self):
        spec = ExperimentSpec(
            scenario="case-1", mode="both", architecture="blocking",
            cluster_counts=(2, 4), message_sizes=(512, 1024),
            generation_rates=(0.25, 1.0), replications=3,
            simulation_messages=777, seed=42, switch_ports=48,
            switch_latency_us=5.0,
        )
        assert ExperimentSpec.from_json_text(spec.to_json_text()) == spec
        # A spec built from JSON lists equals one built from tuples.
        assert ExperimentSpec.from_json(json.loads(spec.to_json_text())) == spec

    def test_defaults_round_trip_without_optional_fields(self):
        spec = ExperimentSpec(scenario="hotspot", mode="simulate")
        data = spec.to_json()
        assert "cluster_counts" not in data  # None fields are omitted
        assert ExperimentSpec.from_json(data) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ExperimentError, match="unknown spec field"):
            ExperimentSpec.from_json({"scenario": "case-1", "clusters": [2]})

    def test_missing_scenario_rejected(self):
        with pytest.raises(ExperimentError, match="scenario"):
            ExperimentSpec.from_json({"mode": "analysis"})

    def test_invalid_values_rejected(self):
        with pytest.raises(ExperimentError, match="mode"):
            ExperimentSpec(scenario="case-1", mode="dry-run")
        with pytest.raises(ExperimentError, match="replications"):
            ExperimentSpec(scenario="case-1", replications=0)
        with pytest.raises(ExperimentError, match="cluster_counts"):
            ExperimentSpec(scenario="case-1", cluster_counts=(0,))
        with pytest.raises(ExperimentError, match="message_sizes"):
            ExperimentSpec(scenario="case-1", message_sizes=())
        with pytest.raises(ExperimentError, match="generation_rates"):
            ExperimentSpec(scenario="case-1", generation_rates=(-1.0,))

    def test_invalid_json_text_rejected(self):
        with pytest.raises(ExperimentError, match="invalid spec JSON"):
            ExperimentSpec.from_json_text("{not json")


class TestRegistry:
    def test_paper_cases_registered(self):
        assert {"case-1", "case-2"} <= set(scenario_names())
        assert get_scenario("case-1").paper and get_scenario("case-2").paper

    def test_at_least_four_non_paper_scenarios(self):
        non_paper = [s for s in SCENARIO_REGISTRY.values() if not s.paper]
        assert len(non_paper) >= 4

    def test_building_blocks_are_exercised(self):
        """The registry composes destinations, arrivals and heterogeneous shapes."""
        scenarios = SCENARIO_REGISTRY.values()
        assert any(s.destination_policy is not None for s in scenarios)
        assert any(s.arrival_factory is not None for s in scenarios)
        assert any(s.default_architecture == "blocking" for s in scenarios)
        assert any(not s.supports_analysis for s in scenarios)

    def test_every_scenario_builds_its_smoke_systems(self):
        for scenario in SCENARIO_REGISTRY.values():
            for count in scenario.smoke_cluster_counts:
                system = scenario.system(count)
                assert system.num_clusters == count

    def test_unknown_scenario_lookup_names_the_registry(self):
        with pytest.raises(ExperimentError, match="registered scenarios"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        existing = get_scenario("case-1")
        with pytest.raises(ExperimentError, match="already registered"):
            register_scenario(existing)
        # replace=True is the escape hatch (restore the same object).
        assert register_scenario(existing, replace=True) is existing

    def test_het_nics_composes_link_matrix(self):
        system = get_scenario("het-nics").system(4)
        technologies = {c.icn_technology.name for c in system.clusters}
        assert len(technologies) > 1  # genuinely per-cluster heterogeneous
        assert system.icn2_technology.name == "mixed-ge-fe"
        # The effective ICN2 parameters sit between the two NIC extremes.
        from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET

        assert (
            GIGABIT_ETHERNET.beta
            < system.icn2_technology.beta
            < FAST_ETHERNET.beta * 1.01
        )

    def test_llnl_shape_is_fixed(self):
        with pytest.raises(ExperimentError, match="4-cluster"):
            get_scenario("llnl-like").system(2)


class TestBuildPlan:
    def test_grid_order_and_seeding_match_figure_convention(self):
        spec = ExperimentSpec(
            scenario="case-1", mode="both", cluster_counts=(2, 4),
            message_sizes=(512, 1024), simulation_messages=100, seed=9,
            replications=2,
        )
        plan = build_plan(spec)
        grid = [(p.message_bytes, p.num_clusters) for p in plan.points]
        assert grid == [(512, 2), (512, 4), (1024, 2), (1024, 4)]
        # Point master seeds are SeedSequence-spawned from the spec seed in
        # grid order — the exact convention of the historical figure driver.
        point_seeds = spawn_seeds(9, len(plan.points))
        from repro.simulation.runner import replication_configs
        from repro.simulation.simulator import SimulationConfig

        expected = []
        for point, seed in zip(plan.points, point_seeds):
            master = SimulationConfig(
                architecture="non-blocking", message_bytes=float(point.message_bytes),
                generation_rate=0.25, num_messages=100, seed=seed,
            )
            expected.extend(c.seed for c in replication_configs(master, 2))
        assert [t.args[1].seed for t in plan.simulation.tasks] == expected

    def test_analysis_requested_for_simulate_only_scenario_fails(self):
        with pytest.raises(ExperimentError, match="does not support"):
            build_plan(ExperimentSpec(scenario="hotspot", mode="both"))

    def test_switch_overrides_apply(self):
        spec = ExperimentSpec(
            scenario="case-1", mode="analysis", cluster_counts=(4,),
            message_sizes=(1024,), switch_ports=48, switch_latency_us=20.0,
        )
        plan = build_plan(spec)
        system = plan.systems[4]
        assert system.switch.ports == 48
        assert system.switch.latency_s == pytest.approx(20e-6)

    def test_scenario_workload_reaches_the_tasks(self):
        spec = ExperimentSpec(
            scenario="hotspot", mode="simulate", cluster_counts=(2,),
            message_sizes=(512,), simulation_messages=50,
        )
        plan = build_plan(spec)
        from repro.workload.destinations import HotspotDestinations

        for task in plan.simulation.tasks:
            assert isinstance(task.args[2], HotspotDestinations)

    def test_arrival_factory_reaches_the_tasks(self):
        spec = ExperimentSpec(
            scenario="bursty-erlang", mode="simulate", cluster_counts=(2,),
            message_sizes=(512,), simulation_messages=50,
        )
        plan = build_plan(spec)
        from repro.workload.arrivals import ErlangArrivals

        for task in plan.simulation.tasks:
            factory = task.args[3]
            assert isinstance(factory(0.25), ErlangArrivals)


class TestEngineMode:
    """engine_mode routing: auto picks the vectorized task only when safe."""

    @staticmethod
    def _spec(scenario, **overrides):
        return ExperimentSpec(
            scenario=scenario, mode="simulate", cluster_counts=(2,),
            message_sizes=(512,), simulation_messages=50, **overrides,
        )

    def test_auto_routes_eligible_scenarios_to_vectorized_task(self):
        from repro.simulation.vectorized_replay import run_vectorized_simulation_task

        for scenario in ("case-1", "bursty-hyper"):
            plan = build_plan(self._spec(scenario))
            assert all(
                task.fn is run_vectorized_simulation_task
                for task in plan.simulation.tasks
            ), scenario

    def test_auto_falls_back_to_des_for_stateful_workloads(self):
        from repro.simulation.runner import run_simulation_task

        # localized-linear declares a destination policy; das2-churn injects
        # failures — both are exactly what the fast path must refuse.
        for scenario in ("localized-linear", "das2-churn"):
            plan = build_plan(self._spec(scenario))
            assert all(
                task.fn is run_simulation_task for task in plan.simulation.tasks
            ), scenario

    def test_des_mode_forces_the_event_loop(self):
        from repro.simulation.runner import run_simulation_task

        plan = build_plan(self._spec("case-1", engine_mode="des"))
        assert all(task.fn is run_simulation_task for task in plan.simulation.tasks)

    def test_forced_vectorized_on_ineligible_scenario_is_clean_error(self):
        with pytest.raises(ExperimentError, match="cannot be vectorized"):
            build_plan(self._spec("localized-linear", engine_mode="vectorized"))

    def test_auto_and_des_results_identical(self):
        """Routing is an implementation detail: both engines, same numbers."""
        auto = ExperimentRunner().run(build_plan(self._spec("case-1", seed=11)))
        des = ExperimentRunner().run(
            build_plan(self._spec("case-1", seed=11, engine_mode="des"))
        )
        assert [p.simulation_latency_ms for p in auto.points] == [
            p.simulation_latency_ms for p in des.points
        ]

    def test_invalid_engine_mode_rejected(self):
        with pytest.raises(ExperimentError, match="engine_mode"):
            ExperimentSpec(scenario="case-1", engine_mode="warp")

    def test_json_round_trip(self):
        assert "engine_mode" not in ExperimentSpec(scenario="case-1").to_json()
        spec = ExperimentSpec.from_json({"scenario": "case-1", "engine_mode": "des"})
        assert spec.engine_mode == "des"
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_cli_engine_mode_override(self, tmp_path):
        csvs = {}
        for mode in ("auto", "des"):
            path = tmp_path / f"{mode}.csv"
            code, _ = cli(
                "run", "case-1", "--mode", "simulate", "--clusters", "2",
                "--sizes", "512", "--messages", "50", "--seed", "11",
                "--engine-mode", mode, "--csv", str(path),
            )
            assert code == 0
            csvs[mode] = path.read_text()
        assert csvs["auto"] == csvs["des"]

    def test_cli_forced_vectorized_on_ineligible_scenario_is_clean_error(self):
        with pytest.raises(SystemExit, match="cannot be vectorized"):
            cli(
                "run", "localized-linear", "--smoke", "--messages", "50",
                "--engine-mode", "vectorized",
            )


class TestRunnerEndToEnd:
    def test_analysis_matches_scalar_model(self):
        from repro.core.model import AnalyticalModel, ModelConfig
        from repro.experiments.scenarios import CASE_2

        spec = ExperimentSpec(
            scenario="case-2", mode="analysis", architecture="blocking",
            cluster_counts=(2, 8), message_sizes=(1024,),
        )
        result = ExperimentRunner().run(build_plan(spec))
        for point in result.points:
            system = build_scenario_system(CASE_2, point.num_clusters, PAPER_PARAMETERS)
            report = AnalyticalModel(
                system,
                ModelConfig(architecture="blocking", message_bytes=1024.0,
                            generation_rate=0.25),
            ).evaluate()
            assert point.analysis_latency_ms == report.mean_latency_ms

    def test_serial_and_pool_are_bit_identical(self):
        spec = smoke_spec("bursty-hyper", messages=150)
        serial = ExperimentRunner().run(build_plan(spec))
        pooled = ExperimentRunner(jobs=2).run(build_plan(spec))
        assert [p.simulation_latency_ms for p in serial.points] == [
            p.simulation_latency_ms for p in pooled.points
        ]

    @pytest.mark.parametrize(
        "name", [s.name for s in SCENARIO_REGISTRY.values() if not s.paper]
    )
    def test_every_non_paper_scenario_runs_end_to_end(self, name):
        result = ExperimentRunner().run(build_plan(smoke_spec(name, messages=60)))
        assert result.points
        for point in result.points:
            assert point.simulation_latency_ms is None or point.simulation_latency_ms > 0
            if get_scenario(name).supports_analysis:
                assert point.analysis_latency_ms > 0


class TestRunCliVerb:
    def test_run_spec_json_file(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        smoke_spec("localized-linear", messages=60).to_file(spec_path)
        code, out = cli("run", str(spec_path), "--csv", str(tmp_path / "points.csv"))
        assert code == 0
        assert "localized-linear" in out
        assert "simulation_ms" in (tmp_path / "points.csv").read_text()

    def test_run_scenario_name_with_overrides(self, tmp_path):
        code, out = cli(
            "run", "case-1", "--mode", "analysis", "--clusters", "2", "4",
            "--sizes", "512",
        )
        assert code == 0
        assert "analysis_ms" in out

    def test_run_smoke_flag(self):
        code, out = cli("run", "het-nics", "--smoke", "--messages", "60")
        assert code == 0
        assert "simulation_ms" in out

    def test_run_unknown_target_is_clean_error(self):
        with pytest.raises(SystemExit, match="neither a spec file"):
            cli("run", "definitely-not-a-scenario")

    def test_run_analysis_mode_on_simulate_only_scenario_is_clean_error(self):
        with pytest.raises(SystemExit, match="does not support"):
            cli("run", "hotspot", "--mode", "both")

    def test_run_spec_results_identical_across_backends(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        smoke_spec("hotspot", messages=80).to_file(spec_path)
        results = {}
        for label, extra in (
            ("serial", []),
            ("pool", ["--backend", "pool", "--jobs", "2"]),
            ("socket", ["--backend", "socket", "--workers", "2"]),
        ):
            csv_path = tmp_path / f"{label}.csv"
            code, _ = cli("run", str(spec_path), "--csv", str(csv_path), *extra)
            assert code == 0
            results[label] = csv_path.read_text()
        assert results["serial"] == results["pool"] == results["socket"]


class TestScenariosCliVerb:
    def test_listing_contains_every_scenario(self):
        code, out = cli("scenarios")
        assert code == 0
        for name in scenario_names():
            assert name in out

    def test_names_mode_is_machine_friendly(self):
        code, out = cli("scenarios", "--names")
        assert code == 0
        assert out.split() == list(scenario_names())

    def test_json_mode(self):
        code, out = cli("scenarios", "--json")
        assert code == 0
        listing = json.loads(out)
        assert {entry["name"] for entry in listing} == set(scenario_names())

    def test_write_smoke_specs(self, tmp_path):
        target = tmp_path / "specs"
        code, _ = cli("scenarios", "--write-smoke-specs", str(target))
        assert code == 0
        written = sorted(p.stem for p in target.glob("*.json"))
        assert written == sorted(scenario_names())
        # Every emitted spec loads and plans cleanly.
        for path in target.glob("*.json"):
            build_plan(ExperimentSpec.from_file(path))


class TestScenarioSystemValidation:
    def test_zero_clusters_is_a_clean_experiment_error(self):
        from repro.experiments.scenarios import CASE_1

        # Regression: the old guard evaluated 256 % 0 first (ZeroDivisionError).
        with pytest.raises(ExperimentError, match=">= 1"):
            build_scenario_system(CASE_1, 0)
        with pytest.raises(ExperimentError, match=">= 1"):
            build_scenario_system(CASE_1, -4)

    def test_divisibility_error_names_the_failure(self):
        from repro.experiments.scenarios import CASE_1

        with pytest.raises(ExperimentError, match="does not divide"):
            build_scenario_system(CASE_1, 7)

    def test_paper_sweep_membership_no_longer_bypasses_divisibility(self):
        """Regression: `64 in cluster_counts` used to short-circuit the guard
        even when 64 does not divide a custom total, deferring the failure
        to a confusing downstream ValueError."""
        from repro.experiments.scenarios import CASE_1, PaperParameters

        params = PaperParameters(total_processors=96)
        with pytest.raises(ExperimentError, match="does not divide N=96"):
            build_scenario_system(CASE_1, 64, params)

    def test_any_divisor_is_accepted(self):
        from repro.experiments.scenarios import CASE_1, PaperParameters

        params = PaperParameters(total_processors=96)
        assert build_scenario_system(CASE_1, 3, params).num_clusters == 3


class TestSpecIntegerFields:
    """JSON-borne float values in integer spec fields (review finding)."""

    def test_fractional_integer_fields_rejected(self):
        for kwargs in (
            {"replications": 2.5},
            {"simulation_messages": 100.7},
            {"seed": 1.5},
            {"switch_ports": 24.5},
            {"cluster_counts": (2.5,)},
        ):
            with pytest.raises(ExperimentError, match="must be an integer"):
                ExperimentSpec(scenario="case-1", **kwargs)

    def test_integral_floats_are_coerced(self):
        spec = ExperimentSpec(
            scenario="case-1", replications=2.0, simulation_messages=100.0,
            seed=4.0, cluster_counts=(2.0, 4.0),
        )
        assert spec.replications == 2 and isinstance(spec.replications, int)
        assert spec.seed == 4 and isinstance(spec.seed, int)
        assert spec.cluster_counts == (2, 4)
        assert all(isinstance(c, int) for c in spec.cluster_counts)

    def test_bool_and_string_rejected(self):
        with pytest.raises(ExperimentError, match="must be an integer"):
            ExperimentSpec(scenario="case-1", seed=True)
        with pytest.raises(ExperimentError, match="must be an integer"):
            ExperimentSpec.from_json({"scenario": "case-1", "replications": "3"})

    def test_fractional_spec_file_is_a_clean_cli_error(self, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text(
            '{"scenario": "case-1", "mode": "analysis", "replications": 2.5}'
        )
        with pytest.raises(SystemExit, match="must be an integer"):
            cli("run", str(spec_path))

    def test_negative_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed"):
            ExperimentSpec(scenario="case-1", seed=-1)


class TestForeignJournalOnVectorizedCommands:
    """--resume with a foreign journal must fail on task-less commands too
    (pre-pipeline, the per-point ratio tasks tripped the fingerprint check;
    the vectorized passes start no engine runs, so the CLI checks instead)."""

    def _figure_journal(self, tmp_path):
        journal = str(tmp_path / "fig.journal")
        code, _ = cli(
            "figure", "4", "--simulate", "--clusters", "2", "--sizes", "512",
            "--messages", "60", "--checkpoint", journal,
        )
        assert code == 0
        return journal

    def test_ratio_rejects_foreign_journal(self, tmp_path):
        journal = self._figure_journal(tmp_path)
        with pytest.raises(SystemExit, match="checkpoint error"):
            cli("ratio", "--resume", journal)

    def test_analysis_ablation_rejects_foreign_journal(self, tmp_path):
        journal = self._figure_journal(tmp_path)
        with pytest.raises(SystemExit, match="checkpoint error"):
            cli("ablation", "message-size", "--resume", journal)

    def test_analysis_only_run_rejects_foreign_journal(self, tmp_path):
        journal = self._figure_journal(tmp_path)
        with pytest.raises(SystemExit, match="checkpoint error"):
            cli("run", "case-1", "--mode", "analysis", "--clusters", "2",
                "--sizes", "512", "--resume", journal)

    def test_own_empty_journal_still_resumes(self, tmp_path):
        journal = str(tmp_path / "ratio.journal")
        code, first = cli("ratio", "--checkpoint", journal)
        assert code == 0
        code, resumed = cli("ratio", "--resume", journal)
        assert code == 0
        assert resumed == first

    def test_simulating_resume_still_works(self, tmp_path):
        journal = self._figure_journal(tmp_path)
        code, _ = cli(
            "figure", "4", "--simulate", "--clusters", "2", "--sizes", "512",
            "--messages", "60", "--resume", journal,
        )
        assert code == 0
