"""Unit tests for the auto-generated reproduction report."""

from __future__ import annotations

import pytest

from repro.experiments.report import ReproductionReport, ShapeChecks, generate_report


class TestShapeChecks:
    def test_all_pass_property(self):
        assert ShapeChecks(True, True, True).all_pass
        assert not ShapeChecks(True, False, True).all_pass

    def test_as_dict_keys(self):
        d = ShapeChecks(True, True, False).as_dict()
        assert set(d) == {"latency grows with C", "dip at C=16", "M=1024 above M=512"}


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def analysis_report(self) -> ReproductionReport:
        # Analysis-only over the full grid: fast enough for a class fixture.
        return generate_report(include_simulation=False)

    def test_contains_all_figures(self, analysis_report):
        assert set(analysis_report.figures) == {4, 5, 6, 7}
        for result in analysis_report.figures.values():
            assert len(result.points) == 18

    def test_shape_checks_hold_for_nonblocking_figures(self, analysis_report):
        for figure in (4, 5):
            checks = analysis_report.shape_checks(figure)
            assert checks.grows_with_cluster_count
            assert checks.dip_at_c16
            assert checks.larger_messages_slower

    def test_ratio_study_included(self, analysis_report):
        assert analysis_report.ratio_study.blocking_always_slower()

    def test_markdown_rendering(self, analysis_report):
        text = analysis_report.to_markdown()
        assert "# Reproduction report" in text
        assert "## Figure 4" in text
        assert "## Figure 7" in text
        assert "Blocking vs non-blocking ratio" in text
        assert "dip at C=16" in text

    def test_write_to_file(self, analysis_report, tmp_path):
        path = tmp_path / "report.md"
        analysis_report.write(str(path))
        assert path.exists()
        assert "Reproduction report" in path.read_text()

    def test_subset_of_figures(self):
        report = generate_report(
            include_simulation=False, figures=[4], cluster_counts=[1, 8, 16, 32, 256]
        )
        assert set(report.figures) == {4}
        assert report.shape_checks(4).dip_at_c16

    def test_dip_check_requires_relevant_counts(self):
        report = generate_report(include_simulation=False, figures=[4],
                                 cluster_counts=[1, 256])
        assert not report.shape_checks(4).dip_at_c16

    def test_report_with_simulation_small(self):
        report = generate_report(
            include_simulation=True,
            figures=[4],
            cluster_counts=[4],
            simulation_messages=800,
        )
        result = report.figures[4]
        assert all(p.simulation_latency_ms is not None for p in result.points)
        assert "Analysis vs simulation" in report.to_markdown()
