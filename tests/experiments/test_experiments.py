"""Unit tests for scenarios (Tables 1-2), figure drivers, ratio study and ablations."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    fixed_point_vs_exact_mva,
    service_distribution_ablation,
    sweep_generation_rate,
    sweep_message_size,
    sweep_switch_latency,
    sweep_switch_ports,
)
from repro.experiments.blocking_ratio import run_blocking_ratio_study
from repro.experiments.figures import FIGURE_SPECS, run_figure
from repro.experiments.scenarios import (
    CASE_1,
    CASE_2,
    PAPER_PARAMETERS,
    SCENARIOS,
    build_scenario_system,
)
from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET


class TestScenarios:
    def test_table1_case1(self):
        """Table 1, Case 1: ICN1 = GE, ECN1/ICN2 = FE."""
        assert CASE_1.icn1_technology is GIGABIT_ETHERNET
        assert CASE_1.ecn_technology is FAST_ETHERNET
        assert CASE_1.icn2_technology is FAST_ETHERNET

    def test_table1_case2(self):
        """Table 1, Case 2: ICN1 = FE, ECN1/ICN2 = GE."""
        assert CASE_2.icn1_technology is FAST_ETHERNET
        assert CASE_2.ecn_technology is GIGABIT_ETHERNET

    def test_table2_parameters(self):
        """Table 2: Pr = 24, α_sw = 10 µs, λ = 0.25/s; platform N = 256."""
        assert PAPER_PARAMETERS.switch_ports == 24
        assert PAPER_PARAMETERS.switch_latency_s == pytest.approx(10e-6)
        assert PAPER_PARAMETERS.generation_rate == 0.25
        assert PAPER_PARAMETERS.total_processors == 256
        assert PAPER_PARAMETERS.simulation_messages == 10_000
        assert PAPER_PARAMETERS.cluster_counts == (1, 2, 4, 8, 16, 32, 64, 128, 256)
        assert PAPER_PARAMETERS.message_sizes == (512, 1024)

    def test_scenarios_registry(self):
        assert set(SCENARIOS) == {"case-1", "case-2"}
        assert "case-1" in CASE_1.describe()

    def test_build_scenario_system(self):
        system = build_scenario_system(CASE_1, 8)
        assert system.num_clusters == 8
        assert system.total_processors == 256
        assert system.clusters[0].icn_technology is GIGABIT_ETHERNET
        assert system.icn2_technology is FAST_ETHERNET

    def test_build_scenario_system_bad_count(self):
        with pytest.raises(ExperimentError):
            build_scenario_system(CASE_1, 7)


class TestFigureDriver:
    def test_figure_specs_cover_4_to_7(self):
        assert set(FIGURE_SPECS) == {4, 5, 6, 7}
        assert FIGURE_SPECS[4].architecture == "non-blocking"
        assert FIGURE_SPECS[6].architecture == "blocking"
        assert FIGURE_SPECS[5].scenario is CASE_2
        assert "Figure 6" in FIGURE_SPECS[6].title

    def test_unknown_figure_rejected(self):
        with pytest.raises(ExperimentError):
            run_figure(3)

    def test_analysis_only_figure4_reduced_grid(self):
        result = run_figure(
            4,
            include_simulation=False,
            cluster_counts=[1, 4, 16, 64, 256],
            message_sizes=[512, 1024],
        )
        assert len(result.points) == 10
        assert result.cluster_counts == [1, 4, 16, 64, 256]
        assert result.message_sizes == [512, 1024]
        # Larger messages give larger latency at every cluster count.
        for c in result.cluster_counts:
            p512 = next(p for p in result.points if p.num_clusters == c and p.message_bytes == 512)
            p1024 = next(p for p in result.points if p.num_clusters == c and p.message_bytes == 1024)
            assert p1024.analysis_latency_ms > p512.analysis_latency_ms

    def test_series_keys_match_paper_legend(self):
        result = run_figure(5, include_simulation=False,
                            cluster_counts=[1, 16], message_sizes=[1024])
        series = result.series()
        assert "Analysis,M=1024" in series
        assert "Simulation,M=1024" not in series

    def test_figure_with_simulation_small(self):
        result = run_figure(
            4,
            include_simulation=True,
            cluster_counts=[4],
            message_sizes=[1024],
            simulation_messages=1500,
            seed=5,
        )
        point = result.points[0]
        assert point.simulation_latency_ms is not None
        assert point.relative_error is not None
        assert point.relative_error < 0.15
        summary = result.accuracy_summary()
        assert summary is not None
        assert summary.n_points == 1

    def test_rendering_helpers(self):
        result = run_figure(4, include_simulation=False,
                            cluster_counts=[1, 16, 256], message_sizes=[1024])
        assert "clusters" in result.to_markdown()
        assert "analysis_ms" in result.to_text_table()
        chart = result.to_chart(width=40, height=10)
        assert "Figure 4" in chart
        assert "legend" in chart
        assert result.accuracy_summary() is None

    def test_blocking_figures_slower_than_nonblocking(self):
        counts = [4, 16, 64]
        fig4 = run_figure(4, include_simulation=False, cluster_counts=counts,
                          message_sizes=[1024])
        fig6 = run_figure(6, include_simulation=False, cluster_counts=counts,
                          message_sizes=[1024])
        for p_nb, p_b in zip(fig4.points, fig6.points):
            assert p_b.analysis_latency_ms > p_nb.analysis_latency_ms


class TestBlockingRatioStudy:
    def test_blocking_always_slower(self):
        study = run_blocking_ratio_study(
            cluster_counts=[1, 4, 16, 64, 256], message_sizes=[512, 1024]
        )
        assert study.blocking_always_slower()
        assert study.min_ratio > 1.0
        assert study.max_ratio >= study.mean_ratio >= study.min_ratio
        assert study.paper_band == (1.4, 3.1)

    def test_rows_and_markdown(self):
        study = run_blocking_ratio_study(cluster_counts=[4], message_sizes=[1024])
        rows = study.to_rows()
        assert len(rows) == 2  # two scenarios
        assert {"scenario", "clusters", "ratio"} <= set(rows[0])
        assert "Observed ratio band" in study.to_markdown()


class TestAblations:
    def test_switch_port_sweep_dip_moves(self):
        study = sweep_switch_ports(ports_values=(8, 24, 64), num_clusters=16)
        latencies = study.latencies()
        assert len(latencies) == 3
        # With only 8 ports the 16-node ICN1s need two stages: more latency
        # than with 24- or 64-port switches.
        assert latencies[0] > latencies[1]

    def test_switch_latency_sweep_monotone(self):
        study = sweep_switch_latency(latency_values_us=(0.0, 10.0, 100.0))
        latencies = study.latencies()
        assert latencies == sorted(latencies)

    def test_generation_rate_sweep_monotone_and_reports_utilization(self):
        study = sweep_generation_rate(rate_values=(0.25, 100.0, 1000.0))
        latencies = study.latencies()
        assert latencies == sorted(latencies)
        assert "icn2_utilization" in study.rows[0].extra

    def test_message_size_sweep_monotone(self):
        study = sweep_message_size(size_values=(64, 1024, 16384))
        assert study.latencies() == sorted(study.latencies())

    def test_fixed_point_vs_mva_close_at_light_load(self):
        study = fixed_point_vs_exact_mva()
        fixed_point_ms, mva_ms = study.latencies()
        # At the paper's nearly-idle operating point the two must agree well.
        assert fixed_point_ms == pytest.approx(mva_ms, rel=0.15)

    def test_service_distribution_ablation(self):
        study = service_distribution_ablation(num_messages=800)
        assert len(study.rows) == 2
        exponential_ms, deterministic_ms = study.latencies()
        # Deterministic service removes service-time variance, so the mean
        # latency cannot be larger than the exponential case by much; at the
        # paper's load both are essentially the bare service time.
        assert deterministic_ms == pytest.approx(exponential_ms, rel=0.25)

    def test_markdown_rendering(self):
        study = sweep_message_size(size_values=(64, 1024))
        assert "message-size" in study.to_markdown()
        assert "mean_latency_ms" in study.to_markdown()
