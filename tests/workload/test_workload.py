"""Unit tests for arrival processes, destination policies, message sizes and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.rng import RandomStreams
from repro.errors import ConfigurationError
from repro.workload.arrivals import DeterministicArrivals, MMPPArrivals, PoissonArrivals
from repro.workload.destinations import (
    HotspotDestinations,
    LocalizedDestinations,
    UniformDestinations,
)
from repro.workload.messages import (
    BimodalMessageSize,
    FixedMessageSize,
    UniformMessageSize,
    generate_trace,
)


@pytest.fixture
def rng():
    return RandomStreams(seed=2024).stream("workload")


class TestArrivals:
    def test_poisson_mean_rate(self, rng):
        process = PoissonArrivals(rate=4.0)
        gaps = [process.interarrival(rng) for _ in range(20_000)]
        assert np.mean(gaps) == pytest.approx(0.25, rel=0.05)
        assert process.mean_interarrival() == pytest.approx(0.25)

    def test_poisson_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=0.0)

    def test_deterministic_constant(self, rng):
        process = DeterministicArrivals(rate=2.0)
        assert {process.interarrival(rng) for _ in range(5)} == {0.5}

    def test_mmpp_long_run_rate(self, rng):
        process = MMPPArrivals(
            low_rate=1.0, high_rate=9.0, mean_low_duration=10.0, mean_high_duration=10.0
        )
        assert process.rate == pytest.approx(5.0)
        gaps = [process.interarrival(rng) for _ in range(40_000)]
        assert 1.0 / np.mean(gaps) == pytest.approx(5.0, rel=0.15)

    def test_mmpp_burstier_than_poisson(self, rng):
        mmpp = MMPPArrivals(low_rate=0.5, high_rate=20.0,
                            mean_low_duration=20.0, mean_high_duration=2.0)
        poisson = PoissonArrivals(rate=mmpp.rate)
        mmpp_gaps = [mmpp.interarrival(rng) for _ in range(20_000)]
        poisson_gaps = [poisson.interarrival(rng) for _ in range(20_000)]
        cv2_mmpp = np.var(mmpp_gaps) / np.mean(mmpp_gaps) ** 2
        cv2_poisson = np.var(poisson_gaps) / np.mean(poisson_gaps) ** 2
        assert cv2_mmpp > cv2_poisson

    def test_mmpp_validation(self):
        with pytest.raises(ConfigurationError):
            MMPPArrivals(low_rate=0.0)
        with pytest.raises(ConfigurationError):
            MMPPArrivals(mean_low_duration=0.0)


class TestDestinations:
    def test_uniform_never_selects_self(self, rng):
        policy = UniformDestinations([4, 4, 4])
        source = (1, 2)
        destinations = [policy.choose(source, rng) for _ in range(2000)]
        assert source not in destinations

    def test_uniform_covers_all_other_nodes(self, rng):
        policy = UniformDestinations([2, 2])
        source = (0, 0)
        seen = {policy.choose(source, rng) for _ in range(2000)}
        assert seen == {(0, 1), (1, 0), (1, 1)}

    def test_uniform_remote_fraction_matches_equation_8(self, rng):
        """The empirical remote fraction must match P = (C−1)N0/(CN0−1)."""
        policy = UniformDestinations([8] * 4)
        source = (0, 3)
        remote = sum(policy.choose(source, rng)[0] != 0 for _ in range(20_000))
        expected = (4 - 1) * 8 / (4 * 8 - 1)
        assert remote / 20_000 == pytest.approx(expected, abs=0.02)

    def test_localized_policy_extremes(self, rng):
        all_local = LocalizedDestinations([8, 8], locality=1.0)
        all_remote = LocalizedDestinations([8, 8], locality=0.0)
        source = (0, 0)
        assert all(all_local.choose(source, rng)[0] == 0 for _ in range(200))
        assert all(all_remote.choose(source, rng)[0] == 1 for _ in range(200))

    def test_localized_validation(self):
        with pytest.raises(ConfigurationError):
            LocalizedDestinations([4, 4], locality=1.5)

    def test_localized_single_node_cluster_falls_back(self, rng):
        policy = LocalizedDestinations([1, 4], locality=1.0)
        # The lone node has no local peer, so the choice must still be valid.
        destination = policy.choose((0, 0), rng)
        assert destination != (0, 0)

    def test_hotspot_policy_bias(self, rng):
        hotspot = (1, 0)
        policy = HotspotDestinations([4, 4], hotspot=hotspot, hotspot_fraction=0.5)
        picks = [policy.choose((0, 0), rng) for _ in range(4000)]
        fraction = sum(p == hotspot for p in picks) / len(picks)
        assert fraction > 0.4

    def test_hotspot_never_targets_itself_via_bias(self, rng):
        hotspot = (0, 0)
        policy = HotspotDestinations([2, 2], hotspot=hotspot, hotspot_fraction=1.0)
        assert policy.choose(hotspot, rng) != hotspot

    def test_invalid_cluster_sizes(self):
        with pytest.raises(ConfigurationError):
            UniformDestinations([])
        with pytest.raises(ConfigurationError):
            UniformDestinations([1])
        with pytest.raises(ConfigurationError):
            UniformDestinations([0, 4])

    def test_invalid_source_address(self, rng):
        policy = UniformDestinations([2, 2])
        with pytest.raises(ConfigurationError):
            policy.choose((5, 0), rng)


class TestMessageSizes:
    def test_fixed(self, rng):
        model = FixedMessageSize(1024)
        assert model.sample(rng) == 1024
        assert model.mean == 1024
        with pytest.raises(ConfigurationError):
            FixedMessageSize(0)

    def test_bimodal_mean(self, rng):
        model = BimodalMessageSize(short_bytes=100, long_bytes=1000, long_fraction=0.5)
        assert model.mean == pytest.approx(550)
        samples = {model.sample(rng) for _ in range(200)}
        assert samples == {100, 1000}

    def test_bimodal_validation(self):
        with pytest.raises(ConfigurationError):
            BimodalMessageSize(long_fraction=2.0)

    def test_uniform_size(self, rng):
        model = UniformMessageSize(100, 200)
        assert model.mean == 150
        assert all(100 <= model.sample(rng) <= 200 for _ in range(100))
        with pytest.raises(ConfigurationError):
            UniformMessageSize(200, 100)


class TestTraceGeneration:
    def test_trace_sorted_and_sized(self):
        trace = generate_trace([4, 4], num_messages=500, seed=3)
        assert len(trace) == 500
        times = [e.time for e in trace]
        assert times == sorted(times)
        assert trace.duration == times[-1]

    def test_trace_destinations_valid(self):
        trace = generate_trace([4, 4], num_messages=300, seed=4)
        for entry in trace:
            assert entry.source != entry.destination
            assert 0 <= entry.destination[0] < 2
            assert 0 <= entry.destination[1] < 4

    def test_trace_reproducibility(self):
        a = generate_trace([2, 2], num_messages=100, seed=5)
        b = generate_trace([2, 2], num_messages=100, seed=5)
        assert a.entries == b.entries

    def test_trace_mean_size(self):
        trace = generate_trace([2, 2], num_messages=50, seed=6)
        assert trace.mean_size == pytest.approx(1024.0)

    def test_messages_per_source(self):
        trace = generate_trace([2, 2], num_messages=400, seed=7)
        counts = trace.messages_per_source()
        assert sum(counts.values()) == 400
        assert len(counts) <= 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_trace([2, 2], num_messages=-1)
        with pytest.raises(ConfigurationError):
            generate_trace([1], num_messages=10)


class TestRenewalArrivals:
    """Erlang / hyperexponential arrival processes (scenario building blocks)."""

    def test_erlang_mean_rate(self, rng):
        from repro.workload.arrivals import ErlangArrivals

        process = ErlangArrivals(rate=2.0, shape=4)
        samples = [process.interarrival(rng) for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(0.5, rel=0.1)

    def test_erlang_sampler_bit_identical_to_scalar(self):
        from repro.des.rng import RandomStreams
        from repro.workload.arrivals import ErlangArrivals

        process = ErlangArrivals(rate=0.25, shape=3)
        scalar_rng = RandomStreams(11).stream("erlang")
        batched_rng = RandomStreams(11).stream("erlang")
        sampler = process.sampler(batched_rng)
        scalar = [process.interarrival(scalar_rng) for _ in range(300)]
        batched = [sampler() for _ in range(300)]
        assert scalar == batched

    def test_erlang_smoother_than_poisson(self, rng):
        from repro.workload.arrivals import ErlangArrivals, PoissonArrivals

        def cv2(samples):
            mean = sum(samples) / len(samples)
            var = sum((s - mean) ** 2 for s in samples) / len(samples)
            return var / mean**2

        erlang = [ErlangArrivals(rate=1.0, shape=4).interarrival(rng) for _ in range(4000)]
        poisson = [PoissonArrivals(rate=1.0).interarrival(rng) for _ in range(4000)]
        assert cv2(erlang) < cv2(poisson)

    def test_erlang_validation(self):
        from repro.workload.arrivals import ErlangArrivals

        with pytest.raises(ConfigurationError):
            ErlangArrivals(rate=0.0)
        with pytest.raises(ConfigurationError):
            ErlangArrivals(rate=1.0, shape=0)

    def test_hyperexponential_mean_and_burstiness(self, rng):
        from repro.workload.arrivals import HyperexponentialArrivals

        process = HyperexponentialArrivals(rate=2.0, cv2=4.0)
        samples = [process.interarrival(rng) for _ in range(8000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(0.5, rel=0.1)
        var = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert var / mean**2 > 2.0  # clearly burstier than exponential (CV² = 1)

    def test_hyperexponential_balanced_means_fit(self):
        from repro.workload.arrivals import HyperexponentialArrivals

        process = HyperexponentialArrivals(rate=0.25, cv2=4.0)
        (m1, m2), (p1, p2) = process.phases
        assert p1 + p2 == pytest.approx(1.0)
        assert p1 * m1 == pytest.approx(p2 * m2)  # balanced means
        assert p1 * m1 + p2 * m2 == pytest.approx(4.0)  # overall mean 1/rate

    def test_hyperexponential_validation(self):
        from repro.workload.arrivals import HyperexponentialArrivals

        with pytest.raises(ConfigurationError):
            HyperexponentialArrivals(rate=1.0, cv2=0.5)
        with pytest.raises(ConfigurationError):
            HyperexponentialArrivals(rate=0.0)


class TestTraceBatching:
    """generate_trace's VariateStream batching (PR 5 satellite)."""

    def test_sole_consumer_batched_path_matches_scalar(self):
        """Deterministic arrivals + fixed sizes leave the destination draws
        as the shared stream's sole consumer, so the batched chooser must
        reproduce the scalar trace bit for bit."""
        from repro.des.rng import RandomStreams
        from repro.workload.arrivals import DeterministicArrivals
        from repro.workload.destinations import UniformDestinations

        sizes = [4, 4]
        trace = generate_trace(
            sizes, 48, arrival_process=DeterministicArrivals(rate=2.0), seed=5
        )
        # Scalar reference: replay the historical per-call loop by hand.
        arrival = DeterministicArrivals(rate=2.0)
        dest = UniformDestinations(sizes)
        streams = RandomStreams(5)
        expected = []
        for cluster, size in enumerate(sizes):
            for proc in range(size):
                rng = streams.stream(f"trace-{cluster}-{proc}")
                t = 0.0
                for _ in range(48 // 8 + 1):
                    t += arrival.interarrival(rng)
                    expected.append((t, (cluster, proc), dest.choose((cluster, proc), rng)))
        expected.sort(key=lambda e: e[0])
        for entry, (t, source, destination) in zip(trace, expected[:48]):
            assert entry.time == t
            assert entry.source == source
            assert entry.destination == destination

    def test_per_family_layout_is_deterministic_and_batched(self):
        from repro.workload.destinations import UniformDestinations

        first = generate_trace([4, 4], 64, seed=3, stream_layout="per-family")
        second = generate_trace([4, 4], 64, seed=3, stream_layout="per-family")
        assert [e.time for e in first] == [e.time for e in second]
        assert len(first) == 64
        assert all(e.source != e.destination for e in first)
        # Distinct stream layouts are distinct (deterministic) traces.
        shared = generate_trace([4, 4], 64, seed=3)
        assert [e.time for e in first] != [e.time for e in shared]

    def test_per_family_layout_matches_manual_per_family_scalar(self):
        """Per-family batching consumes each family stream exactly like
        scalar per-call draws on the same named streams."""
        from repro.des.rng import RandomStreams
        from repro.workload.arrivals import PoissonArrivals
        from repro.workload.destinations import UniformDestinations

        sizes = [3, 3]
        trace = generate_trace(sizes, 36, seed=7, stream_layout="per-family")
        arrival = PoissonArrivals(rate=0.25)
        dest = UniformDestinations(sizes)
        streams = RandomStreams(7)
        expected = []
        per_node = 36 // 6 + 1
        for cluster, size in enumerate(sizes):
            for proc in range(size):
                arrival_rng = streams.stream(f"trace-{cluster}-{proc}-arrivals")
                dest_rng = streams.stream(f"trace-{cluster}-{proc}-destinations")
                t = 0.0
                for _ in range(per_node):
                    t += arrival.interarrival(arrival_rng)
                    expected.append(
                        (t, (cluster, proc), dest.choose((cluster, proc), dest_rng))
                    )
        expected.sort(key=lambda e: e[0])
        for entry, (t, source, destination) in zip(trace, expected[:36]):
            assert entry.time == t
            assert entry.source == source
            assert entry.destination == destination

    def test_invalid_stream_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_trace([2, 2], 8, stream_layout="interleaved")

    def test_uniform_size_model_sampler_bit_identical(self):
        from repro.des.rng import RandomStreams
        from repro.workload.messages import UniformMessageSize

        model = UniformMessageSize(64.0, 4096.0)
        scalar_rng = RandomStreams(2).stream("sizes")
        batched_rng = RandomStreams(2).stream("sizes")
        sampler = model.sampler(batched_rng)
        assert [model.sample(scalar_rng) for _ in range(200)] == [
            sampler() for _ in range(200)
        ]

    def test_consumes_rng_flags(self):
        from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
        from repro.workload.destinations import UniformDestinations
        from repro.workload.messages import FixedMessageSize, UniformMessageSize

        assert PoissonArrivals(rate=1.0).consumes_rng
        assert not DeterministicArrivals(rate=1.0).consumes_rng
        assert UniformDestinations([2, 2]).consumes_rng
        assert not FixedMessageSize(512.0).consumes_rng
        assert UniformMessageSize(1.0, 2.0).consumes_rng


class TestSimulatorArrivalFactory:
    """The closed-loop simulator accepts scenario arrival processes."""

    def test_default_factory_is_bit_identical_to_legacy_path(self):
        from repro.cluster.presets import paper_evaluation_system
        from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
        from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig
        from repro.workload.arrivals import PoissonArrivals

        system = paper_evaluation_system(2, GIGABIT_ETHERNET, FAST_ETHERNET,
                                         total_processors=16)
        config = SimulationConfig(num_messages=300, seed=13)
        legacy = MultiClusterSimulator(system, config).run()
        explicit = MultiClusterSimulator(
            system, config, arrival_factory=lambda rate: PoissonArrivals(rate=rate)
        ).run()
        # An explicit Poisson factory reproduces the built-in default
        # exactly: same batched exponential stream, same bit stream.
        assert explicit.mean_latency_s == legacy.mean_latency_s
        assert explicit.simulated_time_s == legacy.simulated_time_s

    def test_bursty_arrivals_change_the_run_deterministically(self):
        from repro.cluster.presets import paper_evaluation_system
        from repro.network.technologies import FAST_ETHERNET, GIGABIT_ETHERNET
        from repro.simulation.simulator import MultiClusterSimulator, SimulationConfig
        from repro.workload.arrivals import HyperexponentialArrivals

        system = paper_evaluation_system(2, GIGABIT_ETHERNET, FAST_ETHERNET,
                                         total_processors=16)
        config = SimulationConfig(num_messages=300, seed=13)

        def factory(rate):
            return HyperexponentialArrivals(rate=rate, cv2=4.0)

        bursty_a = MultiClusterSimulator(system, config, arrival_factory=factory).run()
        bursty_b = MultiClusterSimulator(system, config, arrival_factory=factory).run()
        poisson = MultiClusterSimulator(system, config).run()
        assert bursty_a.mean_latency_s == bursty_b.mean_latency_s  # deterministic
        assert bursty_a.simulated_time_s != poisson.simulated_time_s
